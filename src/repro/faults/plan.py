"""Declarative fault plans: what goes wrong, where, and when.

The paper's delivery system is benign -- it "does not lose messages" and
delivers every message exactly once with an admissible delay.  Real
networks are not: messages vanish, links die, processors crash, clocks
get corrupted, retransmissions duplicate traffic.  A :class:`FaultPlan`
describes a deterministic, seeded schedule of such misbehaviours; the
:class:`~repro.faults.injector.FaultInjector` executes it inside the
simulator's dispatch path, and every downstream layer (pipeline, online
synchronizer, campaign runner) is expected to degrade *gracefully*:
fewer observations and wider (or per-component) precision, never a bare
exception, and -- for faults that violate the delay assumptions --
monitor violations that point at exactly the injected fault.

Fault taxonomy (one frozen dataclass each):

=====================  ================================================
fault                  delivery-system misbehaviour
=====================  ================================================
:class:`MessageLoss`   drop messages at a rate, or by per-edge ordinal
                       pattern ("drop the 2nd probe on this edge")
:class:`LinkDown`      drop everything sent on a link during a real-time
                       interval (both directions)
:class:`ProcessorCrash` fail-silent window: the processor takes no
                       receive or timer steps in ``[at, restart)``
:class:`TimestampCorruption` perturb the sampled delay (systematic
                       offset and/or seeded jitter) -- the fault class
                       that *breaks* the assumptions and must be caught
:class:`DuplicateDelivery` re-deliver a message a second time later
                       (at-least-once delivery)
=====================  ================================================

Plans are plain data: they validate against a system's topology, pickle
across process pools, and round-trip through JSON for the ``--faults
PLAN.json`` CLI surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro._types import INF, Edge, ProcessorId, Time


class FaultPlanError(ValueError):
    """A fault plan is malformed or names unknown links/processors."""


def _check_rate(value: float, label: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{label} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class MessageLoss:
    """Drop messages: independently at ``rate``, or by ordinal ``pattern``.

    ``pattern`` lists 0-based per-directed-edge message ordinals to drop
    deterministically ("the first and third message on each matching
    edge"); ``rate`` drops each message independently with the plan's
    seeded RNG.  ``edge=None`` applies to every directed edge; an edge
    given in either orientation matches that *direction* only.
    """

    rate: float = 0.0
    pattern: Tuple[int, ...] = ()
    edge: Optional[Edge] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate, "MessageLoss.rate")
        if self.rate == 0.0 and not self.pattern:
            raise FaultPlanError(
                "MessageLoss needs a positive rate or a drop pattern"
            )
        if any(n < 0 for n in self.pattern):
            raise FaultPlanError("MessageLoss.pattern ordinals must be >= 0")

    kind = "message-loss"


@dataclass(frozen=True)
class LinkDown:
    """Both directions of ``edge`` drop all traffic in ``[start, end)``."""

    edge: Edge
    start: Time = 0.0
    end: Time = INF

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise FaultPlanError(
                f"LinkDown window [{self.start}, {self.end}) is empty"
            )

    kind = "link-down"

    def covers(self, t: Time) -> bool:
        """Whether the link is down at real time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class ProcessorCrash:
    """Fail-silent window: ``processor`` takes no steps in ``[at, restart)``.

    Receives arriving in the window are dropped (fail-silent, not
    fail-stop-and-buffer); timers due in the window are lost, not
    deferred.  ``restart=None`` means the processor never recovers.
    The start event still fires -- the model requires every history to
    begin with a start -- so a crash scheduled before the start time
    simply silences the processor from its very first interrupt on.
    """

    processor: ProcessorId
    at: Time
    restart: Optional[Time] = None

    def __post_init__(self) -> None:
        if self.restart is not None and not self.restart > self.at:
            raise FaultPlanError(
                f"ProcessorCrash restart {self.restart} must be after "
                f"crash time {self.at}"
            )

    kind = "processor-crash"

    def covers(self, t: Time) -> bool:
        """Whether the processor is down at real time ``t``."""
        if t < self.at:
            return False
        return self.restart is None or t < self.restart


@dataclass(frozen=True)
class TimestampCorruption:
    """Perturb sampled delays: ``delay + offset + uniform(-jitter, jitter)``.

    This is the fault class that can *violate* the link's delay
    assumption -- exactly what the theorem monitors exist to catch
    (Lemma 6.2 soundness, Theorem 5.5 consistency).  Corrupted delays
    are clamped at 0 (the delivery system cannot deliver into the past).
    ``rate`` selects which messages are corrupted (seeded, default all);
    ``edge=None`` matches every directed edge.
    """

    offset: Time = 0.0
    jitter: Time = 0.0
    rate: float = 1.0
    edge: Optional[Edge] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate, "TimestampCorruption.rate")
        if self.jitter < 0:
            raise FaultPlanError("TimestampCorruption.jitter must be >= 0")
        if self.offset == 0.0 and self.jitter == 0.0:
            raise FaultPlanError(
                "TimestampCorruption needs a nonzero offset or jitter"
            )

    kind = "timestamp-corruption"


@dataclass(frozen=True)
class DuplicateDelivery:
    """Deliver matching messages twice; the copy arrives ``extra_delay`` later.

    At-least-once delivery: the receiving automaton sees the message
    again (protocols must tolerate it), and the recorded execution marks
    the second receive as a duplicate -- views and message records
    deduplicate by uid, first delivery wins, so delay statistics stay
    sound (see :meth:`repro.model.execution.Execution.message_records`).
    """

    rate: float = 0.0
    extra_delay: Time = 1.0
    edge: Optional[Edge] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate, "DuplicateDelivery.rate")
        if self.rate == 0.0:
            raise FaultPlanError("DuplicateDelivery needs a positive rate")
        if self.extra_delay <= 0:
            raise FaultPlanError("DuplicateDelivery.extra_delay must be > 0")

    kind = "duplicate-delivery"


Fault = Union[
    MessageLoss, LinkDown, ProcessorCrash, TimestampCorruption,
    DuplicateDelivery,
]

_FAULT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        MessageLoss, LinkDown, ProcessorCrash, TimestampCorruption,
        DuplicateDelivery,
    )
}


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of faults to inject into one run.

    ``seed`` drives every probabilistic choice the plan makes (loss
    coin flips, jitter draws, duplicate selection) through an RNG that
    is *separate* from the simulator's delay RNG, so adding a fault
    plan never perturbs the delays of messages it leaves alone.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0
    name: str = "plan"

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, tuple(_FAULT_KINDS.values())):
                raise FaultPlanError(f"not a fault: {f!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def by_kind(self) -> Dict[str, List[Fault]]:
        """Faults grouped by kind string."""
        grouped: Dict[str, List[Fault]] = {}
        for f in self.faults:
            grouped.setdefault(f.kind, []).append(f)
        return grouped

    # ------------------------------------------------------------------
    # Validation against a concrete system
    # ------------------------------------------------------------------

    def validate_for(self, system) -> None:
        """Raise :class:`FaultPlanError` if the plan references anything
        the system does not have (unknown links or processors)."""
        processors = set(system.processors)
        for f in self.faults:
            edge = getattr(f, "edge", None)
            if edge is not None:
                p, q = edge
                try:
                    system.canonical_link(p, q)
                except KeyError:
                    raise FaultPlanError(
                        f"{f.kind} names ({p!r}, {q!r}), which is not a "
                        f"link of {system.topology.name}"
                    ) from None
            if isinstance(f, ProcessorCrash) and f.processor not in processors:
                raise FaultPlanError(
                    f"processor-crash names {f.processor!r}, which is not "
                    f"a processor of {system.topology.name}"
                )

    # ------------------------------------------------------------------
    # JSON round trip (``--faults PLAN.json``)
    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A JSON-clean rendering; ``inf`` times export as the string 'inf'."""
        records = []
        for f in self.faults:
            record: Dict[str, Any] = {"kind": f.kind}
            for key, value in vars(f).items():
                if isinstance(value, float) and value == INF:
                    value = "inf"
                elif isinstance(value, tuple):
                    value = list(value)
                record[key] = value
            records.append(record)
        return {
            "type": "fault.plan",
            "name": self.name,
            "seed": self.seed,
            "faults": records,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        if data.get("type") != "fault.plan":
            raise FaultPlanError(
                f"not a fault.plan record: type={data.get('type')!r}"
            )
        faults: List[Fault] = []
        for record in data.get("faults", []):
            record = dict(record)
            kind = record.pop("kind", None)
            if kind not in _FAULT_KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r}; "
                    f"known: {sorted(_FAULT_KINDS)}"
                )
            for key, value in list(record.items()):
                if value == "inf":
                    record[key] = INF
                elif isinstance(value, list):
                    record[key] = tuple(value)
            try:
                faults.append(_FAULT_KINDS[kind](**record))
            except TypeError as exc:
                raise FaultPlanError(
                    f"bad arguments for {kind}: {exc}"
                ) from None
        return cls(
            faults=tuple(faults),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "plan")),
        )


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
    return FaultPlan.from_json(data)


def dump_fault_plan(plan: FaultPlan, path: Union[str, Path]) -> Path:
    """Write ``plan`` to a JSON file; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(plan.to_json(), indent=2, sort_keys=True))
    return target


def example_plan() -> FaultPlan:
    """The template plan printed by ``repro faults template``.

    Edges are named for a small ring (``0 - 1 - 2 - ...``); adapt the
    ids to the target topology before use.
    """
    return FaultPlan(
        name="example",
        seed=0,
        faults=(
            MessageLoss(rate=0.2),
            LinkDown(edge=(0, 1), start=10.0, end=25.0),
            ProcessorCrash(processor=2, at=15.0, restart=30.0),
            TimestampCorruption(edge=(1, 2), offset=-1.5, rate=1.0),
            DuplicateDelivery(rate=0.1, extra_delay=2.0),
        ),
    )


__all__ = [
    "DuplicateDelivery",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "LinkDown",
    "MessageLoss",
    "ProcessorCrash",
    "TimestampCorruption",
    "dump_fault_plan",
    "example_plan",
    "load_fault_plan",
]
