"""Chaos helpers: misbehaving campaign cells and fault-plan plumbing.

The campaign runner's robustness (per-cell timeout, bounded retry,
crash quarantine) needs cells that genuinely crash, hang, or fail
transiently -- *in worker processes*, where a test-local closure cannot
reach.  The builders here are module-level (hence picklable under the
``spawn`` start method) and read their misbehaviour schedule from
environment variables, which propagate to pool workers under both
``fork`` and ``spawn``:

=========================  ===========================================
variable                   effect on :func:`chaos_bounded_builder`
=========================  ===========================================
``REPRO_CHAOS_CRASH``      comma-separated seeds whose cell SIGKILLs
                           its own process (worker death)
``REPRO_CHAOS_HANG``       comma-separated seeds whose cell sleeps for
                           ``REPRO_CHAOS_HANG_SECONDS`` (default 60)
``REPRO_CHAOS_FLAKY``      comma-separated seeds whose cell raises
                           once, then succeeds -- attempt state lives
                           in marker files under ``REPRO_CHAOS_DIR``
=========================  ===========================================

With no variables set the builder is exactly the E9c workload
(``bounded_uniform(lb=1, ub=3, probes=2)``), so fault-free control runs
are byte-identical to :func:`repro.experiments.common.bounded_ring_builder`
campaigns cell for cell.

Chaos composes with the streaming runner: when a campaign runs with a
``results_dir``/sink, every quarantined chaos cell is persisted as a
durable ``campaign.cell.failure`` record in the shard's JSONL stream
(see :mod:`repro.runner.sink`), so a resumed shard does not retry a
cell already known to be poisonous, and the merge pipeline can tell a
quarantined cell (known failure) from a gap (missing data).
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from functools import partial
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Set

from repro.faults.plan import FaultPlan
from repro.graphs.topology import Topology
from repro.workloads.scenarios import Scenario, bounded_uniform

CRASH_ENV = "REPRO_CHAOS_CRASH"
HANG_ENV = "REPRO_CHAOS_HANG"
HANG_SECONDS_ENV = "REPRO_CHAOS_HANG_SECONDS"
FLAKY_ENV = "REPRO_CHAOS_FLAKY"
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"


def _env_seeds(name: str) -> Set[int]:
    raw = os.environ.get(name, "")
    return {int(part) for part in raw.split(",") if part.strip()}


class FlakyCellError(RuntimeError):
    """Raised by a flaky chaos cell on its first attempt."""


def chaos_bounded_builder(topology: Topology, seed: int) -> Scenario:
    """The E9c bounded workload, with env-scheduled misbehaviour.

    Crash/hang/flaky behaviour triggers *before* the scenario is built,
    so it hits whichever process executes the cell (a pool worker under
    the process executor).
    """
    if seed in _env_seeds(CRASH_ENV):
        os.kill(os.getpid(), signal.SIGKILL)
    if seed in _env_seeds(HANG_ENV):
        time.sleep(float(os.environ.get(HANG_SECONDS_ENV, "60")))
    if seed in _env_seeds(FLAKY_ENV):
        chaos_dir = os.environ.get(CHAOS_DIR_ENV)
        if chaos_dir is None:
            raise FlakyCellError(
                f"flaky cell (topology={topology.name}, seed={seed}) "
                f"with no {CHAOS_DIR_ENV} to record the attempt"
            )
        marker = Path(chaos_dir) / f"flaky-{topology.name}-{seed}"
        if not marker.exists():
            marker.write_text("attempt 1 failed\n")
            raise FlakyCellError(
                f"transient failure (topology={topology.name}, seed={seed})"
            )
    return bounded_uniform(topology, lb=1.0, ub=3.0, probes=2, seed=seed)


@contextmanager
def scheduled_chaos(
    crash: Optional[Set[int]] = None,
    hang: Optional[Set[int]] = None,
    flaky: Optional[Set[int]] = None,
    chaos_dir: Optional[str] = None,
    hang_seconds: Optional[float] = None,
) -> Iterator[None]:
    """Scoped chaos schedule: sets the env variables, restores on exit.

    Sugar over the raw environment protocol so tests and CI scripts
    stop hand-rolling ``monkeypatch.setenv`` ladders::

        with scheduled_chaos(crash={3}, flaky={5}, chaos_dir=tmp):
            outcome = campaign.run_results(..., retries=1)

    Seeds land in worker processes under both ``fork`` and ``spawn``
    because the schedule travels via ``os.environ``.
    """
    values: Dict[str, Optional[str]] = {
        CRASH_ENV: ",".join(str(s) for s in sorted(crash)) if crash else None,
        HANG_ENV: ",".join(str(s) for s in sorted(hang)) if hang else None,
        FLAKY_ENV: ",".join(str(s) for s in sorted(flaky)) if flaky else None,
        CHAOS_DIR_ENV: chaos_dir,
        HANG_SECONDS_ENV: (
            None if hang_seconds is None else repr(float(hang_seconds))
        ),
    }
    previous = {name: os.environ.get(name) for name in values}
    try:
        for name, value in values.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _faulted_build(
    builder: Callable[[Topology, int], Scenario],
    plan: FaultPlan,
    topology: Topology,
    seed: int,
) -> Scenario:
    """Module-level target for :func:`with_fault_plan` (picklable)."""
    return builder(topology, seed).with_faults(plan)


def with_fault_plan(
    builder: Callable[[Topology, int], Scenario], plan: FaultPlan
) -> Callable[[Topology, int], Scenario]:
    """Wrap a scenario builder so every built scenario carries ``plan``.

    The wrapper is a :func:`functools.partial` over a module-level
    function, so it stays picklable whenever the wrapped builder is --
    campaigns can fan faulted cells out over process pools, and the
    content-addressed cache keys the plan (the scenario name and fault
    field change), so faulted and fault-free results never collide.
    """
    return partial(_faulted_build, builder, plan)


__all__ = [
    "CHAOS_DIR_ENV",
    "CRASH_ENV",
    "FLAKY_ENV",
    "FlakyCellError",
    "HANG_ENV",
    "HANG_SECONDS_ENV",
    "chaos_bounded_builder",
    "scheduled_chaos",
    "with_fault_plan",
]
