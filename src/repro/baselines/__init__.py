"""Baselines and oracles the optimal algorithm is evaluated against.

* :mod:`repro.baselines.ntp_like` -- minimum-filter offset estimation on a
  spanning tree, the practitioner's default (NTP, reference [12]).
* :mod:`repro.baselines.cristian` -- best-round-trip estimation
  (Cristian's probabilistic synchronization, reference [1]).
* :mod:`repro.baselines.lp` -- linear-programming oracles in the style of
  Halpern--Megiddo--Munshi [3]; not a competitor but an independent
  recomputation of ``ms~`` and of the optimal precision, used to certify
  the combinatorial pipeline.

Baselines emit plain correction vectors; the common scoring function is
:func:`repro.core.precision.rho_bar`, so every method is ranked by the
paper's own optimality measure.
"""

from repro.baselines.cristian import (
    best_round_trip_offset,
    cristian_corrections,
    cristian_error_bound,
)
from repro.baselines.lp import (
    DifferenceConstraint,
    LPError,
    assumption_constraints,
    lp_ms_tilde,
    lp_optimal_corrections,
    system_constraints,
)
from repro.baselines.ntp_like import (
    BaselineError,
    bfs_tree,
    link_offset_estimate,
    ntp_corrections,
)

__all__ = [
    "best_round_trip_offset",
    "cristian_corrections",
    "cristian_error_bound",
    "DifferenceConstraint",
    "LPError",
    "assumption_constraints",
    "lp_ms_tilde",
    "lp_optimal_corrections",
    "system_constraints",
    "BaselineError",
    "bfs_tree",
    "link_offset_estimate",
    "ntp_corrections",
]
