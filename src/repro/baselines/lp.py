"""Linear-programming oracles (Halpern--Megiddo--Munshi style).

The paper positions its combinatorial pipeline as a replacement for the
linear-programming techniques of Halpern, Megiddo and Munshi [3] ("their
results become a special case").  These LPs are the independent oracle
the reproduction uses to *prove* that claim numerically:

* :func:`lp_optimal_corrections` -- minimise the guaranteed precision
  ``max_{p,q} (ms~(p,q) - x_p + x_q)`` directly as an LP.  Its optimum
  must equal SHIFTS' ``A^max`` (LP duality of the maximum cycle mean) and
  its argmin must tie SHIFTS under ``rho_bar``.

* :func:`lp_ms_tilde` -- recompute every ``ms~(p, q)`` from first
  principles: maximise ``y_q - y_p`` over shift potentials ``y`` subject
  to one difference constraint per message (and per opposite-direction
  extreme pair for bias links).  Must equal GLOBAL ESTIMATES' shortest
  paths.  Unboundedness maps to ``ms~ = inf``.

Both use :func:`scipy.optimize.linprog` (HiGHS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro._types import INF, NEG_INF, ProcessorId, Time
from repro.core.estimates import estimated_delays
from repro.engine import ProcessorIndex
from repro.delays.base import DelayAssumption
from repro.delays.bias import RoundTripBias, RoundTripBiasUnsigned
from repro.delays.bounds import BoundedDelay
from repro.delays.composite import Composite
from repro.delays.system import System
from repro.model.views import View


class LPError(RuntimeError):
    """The LP solver failed or reported an infeasible instance."""


@dataclass(frozen=True)
class DifferenceConstraint:
    """``low <= y_u - y_v <= high`` (either bound may be infinite)."""

    u: ProcessorId
    v: ProcessorId
    low: Time
    high: Time


def assumption_constraints(
    assumption: DelayAssumption,
    p: ProcessorId,
    q: ProcessorId,
    fwd: Sequence[Time],
    rev: Sequence[Time],
) -> List[DifferenceConstraint]:
    """Difference constraints on shift potentials implied by one link.

    A shift vector ``y`` keeps the execution admissible iff the shifted
    estimated delay ``d~(m) + y_u - y_v`` of every message ``m: u -> v``
    satisfies the link's restriction.  Per Lemmas 6.2/6.5 only the extreme
    delays bind, so each restriction compiles to a constant number of
    difference constraints on ``y_p - y_q``.
    """
    constraints: List[DifferenceConstraint] = []
    if isinstance(assumption, Composite):
        for component in assumption.components:
            constraints.extend(assumption_constraints(component, p, q, fwd, rev))
        return constraints

    if isinstance(assumption, BoundedDelay):
        # lb <= d~ + y_p - y_q <= ub for every forward message.
        if fwd:
            constraints.append(
                DifferenceConstraint(
                    u=p,
                    v=q,
                    low=assumption.lb_forward - min(fwd),
                    high=assumption.ub_forward - max(fwd),
                )
            )
        if rev:
            constraints.append(
                DifferenceConstraint(
                    u=q,
                    v=p,
                    low=assumption.lb_reverse - min(rev),
                    high=assumption.ub_reverse - max(rev),
                )
            )
        return constraints

    if isinstance(assumption, (RoundTripBias, RoundTripBiasUnsigned)):
        b = assumption.bias
        if fwd and rev:
            # |(d~(m1) + y_p - y_q) - (d~(m2) + y_q - y_p)| <= b, extremes.
            constraints.append(
                DifferenceConstraint(
                    u=p,
                    v=q,
                    low=(-b - min(fwd) + max(rev)) / 2.0,
                    high=(b - max(fwd) + min(rev)) / 2.0,
                )
            )
        if isinstance(assumption, RoundTripBias):
            # Non-negativity of all shifted delays.
            if fwd:
                constraints.append(
                    DifferenceConstraint(u=p, v=q, low=-min(fwd), high=INF)
                )
            if rev:
                constraints.append(
                    DifferenceConstraint(u=q, v=p, low=-min(rev), high=INF)
                )
        return constraints

    raise LPError(
        f"no LP compilation known for assumption type {type(assumption).__name__}"
    )


def system_constraints(
    system: System, views: Mapping[ProcessorId, View]
) -> List[DifferenceConstraint]:
    """All difference constraints of the system for one execution's views."""
    est = estimated_delays(views)
    constraints: List[DifferenceConstraint] = []
    for (p, q), assumption in system.assumptions.items():
        fwd = est.get((p, q), [])
        rev = est.get((q, p), [])
        constraints.extend(assumption_constraints(assumption, p, q, fwd, rev))
    return constraints


def _solve_max_difference(
    index: ProcessorIndex,
    constraints: Sequence[DifferenceConstraint],
    p: ProcessorId,
    q: ProcessorId,
) -> Time:
    """``max (y_q - y_p)`` subject to the difference constraints."""
    n = len(index)
    c = np.zeros(n)
    c[index.row(q)] = -1.0  # linprog minimises; we want max y_q - y_p
    c[index.row(p)] = 1.0

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    for con in constraints:
        iu, iv = index.row(con.u), index.row(con.v)
        if con.high != INF:
            row = np.zeros(n)
            row[iu] = 1.0
            row[iv] = -1.0
            rows.append(row)
            rhs.append(con.high)
        if con.low != NEG_INF:
            row = np.zeros(n)
            row[iu] = -1.0
            row[iv] = 1.0
            rows.append(row)
            rhs.append(-con.low)
    # Pin y_p = 0 to remove the translation degree of freedom.
    a_eq = np.zeros((1, n))
    a_eq[0, index.row(p)] = 1.0

    result = linprog(
        c,
        A_ub=np.array(rows) if rows else None,
        b_ub=np.array(rhs) if rhs else None,
        A_eq=a_eq,
        b_eq=np.zeros(1),
        bounds=[(None, None)] * n,
        method="highs",
    )
    if result.status == 3:  # unbounded
        return INF
    if result.status == 2:
        raise LPError("infeasible shift LP: views violate the assumptions")
    if result.status != 0:
        raise LPError(f"LP solver failed: {result.message}")
    return -result.fun


def lp_ms_tilde(
    system: System, views: Mapping[ProcessorId, View]
) -> Dict[Tuple[ProcessorId, ProcessorId], Time]:
    """Every ``ms~(p, q)`` recomputed as a per-pair LP (oracle for Thm 5.5)."""
    index = ProcessorIndex(system.processors)
    constraints = system_constraints(system, views)
    out: Dict[Tuple[ProcessorId, ProcessorId], Time] = {}
    for p in index:
        for q in index:
            if p == q:
                out[(p, q)] = 0.0
            else:
                out[(p, q)] = _solve_max_difference(index, constraints, p, q)
    return out


def lp_optimal_corrections(
    processors: Sequence[ProcessorId],
    ms_tilde: Mapping[Tuple[ProcessorId, ProcessorId], Time],
    root: Optional[ProcessorId] = None,
) -> Tuple[Dict[ProcessorId, Time], Time]:
    """Minimise ``rho_bar`` directly: LP oracle for SHIFTS (Thms 4.4/4.6).

    Returns ``(corrections, epsilon)`` with ``x_root = 0``.  ``epsilon``
    must equal ``A^max`` by LP duality of the maximum cycle mean.

    The constraint matrix (one row ``ms~(p,q) - x_p + x_q <= eps`` per
    ordered pair) is assembled from the dense ``ms~`` matrix with array
    indexing rather than a per-pair Python loop.
    """
    index = ProcessorIndex(processors)
    n = len(index)
    if root is None:
        root = index.processor(0)
    ms_matrix = index.matrix(dict(ms_tilde))
    off_diagonal = ~np.eye(n, dtype=bool)
    p_rows, q_rows = np.nonzero(off_diagonal & np.isinf(ms_matrix))
    if len(p_rows):
        p, q = index.processor(int(p_rows[0])), index.processor(int(q_rows[0]))
        raise LPError(
            f"ms~({p!r}, {q!r}) is infinite; no finite precision exists"
        )

    # Variables: x_0 .. x_{n-1}, epsilon.
    c = np.zeros(n + 1)
    c[n] = 1.0

    p_rows, q_rows = np.nonzero(off_diagonal)
    n_rows = len(p_rows)
    a_ub = np.zeros((n_rows, n + 1))
    arange = np.arange(n_rows)
    a_ub[arange, p_rows] = -1.0
    a_ub[arange, q_rows] = 1.0
    a_ub[:, n] = -1.0
    b_ub = -ms_matrix[p_rows, q_rows]

    a_eq = np.zeros((1, n + 1))
    a_eq[0, index.row(root)] = 1.0

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=np.zeros(1),
        bounds=[(None, None)] * (n + 1),
        method="highs",
    )
    if result.status != 0:
        raise LPError(f"LP solver failed: {result.message}")
    corrections = {
        proc: float(result.x[index.row(proc)]) for proc in index
    }
    return corrections, float(result.fun)


__all__ = [
    "LPError",
    "DifferenceConstraint",
    "assumption_constraints",
    "system_constraints",
    "lp_ms_tilde",
    "lp_optimal_corrections",
]
