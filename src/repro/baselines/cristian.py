"""Cristian-style baseline: best-round-trip offset estimation.

Cristian's probabilistic clock synchronization (reference [1] of the
paper) estimates a remote clock by timing a full round trip and assuming
the reply travelled for half of it.  Smaller round trips give tighter
estimates, so the estimator keeps the *best pair* of opposite-direction
messages.

In our views-only formulation: for a forward message ``m1`` (``u -> v``)
and a reverse message ``m2`` (``v -> u``),

    d~(m1) + d~(m2) = d(m1) + d(m2)   (the start-time terms cancel),

i.e. the apparent round-trip time is real.  Cristian's estimate of
``S_u - S_v`` from the pair is ``(d~(m1) - d~(m2)) / 2``, with worst-case
error ``(d(m1) + d(m2)) / 2 - dmin`` -- so the pair minimising the round
trip minimises the error bound.  Offsets propagate along a BFS tree like
the NTP baseline; the two differ in pairing (joint best round trip vs.
independent per-direction minima), which matters under asymmetric load.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro._types import Edge, ProcessorId, Time
from repro.baselines.ntp_like import BaselineError, bfs_tree
from repro.core.estimates import estimated_delays
from repro.graphs.topology import Topology
from repro.model.views import View


def best_round_trip_offset(
    est_delays: Mapping[Edge, List[Time]],
    p: ProcessorId,
    q: ProcessorId,
) -> Optional[Tuple[Time, Time]]:
    """Best-pair estimate of ``S_p - S_q`` and its round-trip time.

    Returns ``(offset_estimate, round_trip)`` for the opposite-direction
    message pair with the smallest apparent round trip, or ``None`` when
    either direction is silent (Cristian needs a full round trip).
    """
    fwd = est_delays.get((p, q), [])
    rev = est_delays.get((q, p), [])
    if not fwd or not rev:
        return None
    # The best pair combines the minimum of each direction: round trip is
    # additive, so the jointly minimal pair is the per-direction minima.
    best_fwd = min(fwd)
    best_rev = min(rev)
    round_trip = best_fwd + best_rev
    offset = (best_fwd - best_rev) / 2.0
    return offset, round_trip


def cristian_corrections(
    topology: Topology,
    views: Mapping[ProcessorId, View],
    root: Optional[ProcessorId] = None,
) -> Dict[ProcessorId, Time]:
    """Corrections via best-round-trip estimates on a BFS tree."""
    if root is None:
        root = topology.nodes[0]
    est = estimated_delays(views)
    corrections: Dict[ProcessorId, Time] = {root: 0.0}
    for u, v in bfs_tree(topology, root):
        pair = best_round_trip_offset(est, u, v)
        if pair is None:
            raise BaselineError(
                f"link ({u!r}, {v!r}) lacks a round trip; Cristian baseline "
                f"cannot bridge it"
            )
        offset, _ = pair
        corrections[v] = corrections[u] - offset
    return corrections


def cristian_error_bound(
    est_delays: Mapping[Edge, List[Time]],
    p: ProcessorId,
    q: ProcessorId,
    min_delay: Time = 0.0,
) -> Optional[Time]:
    """Cristian's own error bound for the link estimate.

    ``round_trip / 2 - min_delay``: the remote clock reading can sit
    anywhere inside the round trip window beyond the minimal wire delays.
    Reported by the experiments to compare claimed vs. guaranteed error.
    """
    pair = best_round_trip_offset(est_delays, p, q)
    if pair is None:
        return None
    _, round_trip = pair
    return round_trip / 2.0 - min_delay


__all__ = [
    "best_round_trip_offset",
    "cristian_corrections",
    "cristian_error_bound",
]
