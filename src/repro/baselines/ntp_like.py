"""NTP-style baseline: per-link offset estimation + spanning-tree spread.

This is the practitioner's classic recipe (Mills' NTP, reference [12] of
the paper): estimate each link's clock offset as half the difference of
the minimum observed one-way delays, then propagate offsets along a
spanning tree from a reference root.

Relation to the paper's quantities: the estimated delay of a message from
``p`` to ``q`` is ``d~ = d + S_p - S_q``, so

    (d~min(p,q) - d~min(q,p)) / 2 = (S_p - S_q) + (dmin(p,q) - dmin(q,p)) / 2.

When the extreme delays in the two directions happen to be equal the
estimator recovers ``S_p - S_q`` exactly; any asymmetry becomes error that
*accumulates along the tree* -- which is exactly why the paper's
shortest-path/cycle-mean machinery wins on general graphs.  The baseline
also ignores the delay assumptions entirely (it never looks at ``lb``,
``ub`` or ``b``), so it cannot exploit favourable bounds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro._types import Edge, ProcessorId, Time
from repro.core.estimates import estimated_delays
from repro.graphs.topology import Topology
from repro.model.views import View


class BaselineError(ValueError):
    """The baseline cannot produce corrections from these views."""


def link_offset_estimate(
    est_delays: Mapping[Edge, List[Time]],
    p: ProcessorId,
    q: ProcessorId,
) -> Optional[Time]:
    """NTP-style estimate of ``S_p - S_q`` from traffic on link ``{p, q}``.

    Uses the minimum-filter: the smallest estimated delay in each
    direction, assumed symmetric.  Falls back to a one-directional
    estimate (biased by the unknown one-way delay) when only one
    direction carried traffic; returns ``None`` when neither did.
    """
    fwd = est_delays.get((p, q), [])
    rev = est_delays.get((q, p), [])
    if fwd and rev:
        return (min(fwd) - min(rev)) / 2.0
    if fwd:
        # Only p -> q traffic: d~min = dmin + S_p - S_q >= S_p - S_q.
        return min(fwd)
    if rev:
        return -min(rev)
    return None


def bfs_tree(
    topology: Topology, root: ProcessorId
) -> List[Tuple[ProcessorId, ProcessorId]]:
    """Edges ``(parent, child)`` of a BFS spanning tree from ``root``."""
    if root not in topology.nodes:
        raise BaselineError(f"root {root!r} not in topology")
    tree: List[Tuple[ProcessorId, ProcessorId]] = []
    seen = {root}
    frontier = [root]
    while frontier:
        next_frontier: List[ProcessorId] = []
        for u in frontier:
            for v in topology.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    tree.append((u, v))
                    next_frontier.append(v)
        frontier = next_frontier
    if len(seen) != len(topology.nodes):
        raise BaselineError("topology is not connected; no spanning tree")
    return tree


def ntp_corrections(
    topology: Topology,
    views: Mapping[ProcessorId, View],
    root: Optional[ProcessorId] = None,
) -> Dict[ProcessorId, Time]:
    """Corrections by NTP-style tree propagation.

    ``x_root = 0``; along each tree edge ``(u, v)``,
    ``x_v = x_u - offset_estimate(u, v)`` so that the corrected starts
    ``S - x`` line up when the symmetry assumption holds.
    """
    if root is None:
        root = topology.nodes[0]
    est = estimated_delays(views)
    corrections: Dict[ProcessorId, Time] = {root: 0.0}
    for u, v in bfs_tree(topology, root):
        offset = link_offset_estimate(est, u, v)
        if offset is None:
            raise BaselineError(
                f"no traffic on tree link ({u!r}, {v!r}); "
                f"NTP baseline cannot bridge it"
            )
        # Want S_u - x_u == S_v - x_v, i.e. x_v = x_u - (S_u - S_v).
        corrections[v] = corrections[u] - offset
    return corrections


__all__ = ["BaselineError", "link_offset_estimate", "bfs_tree", "ntp_corrections"]
