"""repro: optimal clock synchronization under different delay assumptions.

A complete, executable reproduction of Attiya, Herzberg & Rajsbaum,
*Optimal Clock Synchronization under Different Delay Assumptions*
(PODC 1993): the formal model, the per-instance-optimal synchronization
pipeline (estimated delays -> local shifts -> GLOBAL ESTIMATES -> SHIFTS),
the four delay models of the paper plus arbitrary compositions, a
discrete-event network simulator to generate admissible executions,
baselines (NTP-style, Cristian-style, and the Halpern--Megiddo--Munshi
linear program), and an evaluation harness implementing the paper's
``rho_bar`` optimality measure exactly.

Quickstart -- the two documented entry points are :func:`repro.run`
(one execution -> certified-optimal corrections) and :func:`repro.sweep`
(a whole builders x topologies x seeds grid -> one summary table, with
optional ``workers=``/``shard=``/``cache_dir=`` for parallel, sharded
and cached sweeps)::

    import repro
    from repro import (
        BoundedDelay, NetworkSimulator, System, UniformDelay,
        draw_start_times, probe_automata, probe_schedule, ring,
    )

    topo = ring(5)
    system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
    starts = draw_start_times(topo.nodes, max_skew=10.0, seed=7)
    sim = NetworkSimulator(system, samplers, starts, seed=7)
    alpha = sim.run(probe_automata(topo, probe_schedule(3, 20.0, 5.0)))

    result = repro.run(system, alpha)      # certified optimal by default
    print(result.precision, result.corrections)

    from repro.workloads import bounded_uniform
    table = repro.sweep(
        {"bounded": lambda t, s: bounded_uniform(t, 1.0, 3.0, seed=s)},
        [ring(4), ring(6)],
        seeds=range(3),
        workers=4,                         # parallel across processes
    )
    table.show()

The pieces behind the facade (:class:`ClockSynchronizer`, the
:class:`~repro.workloads.Campaign` sweep API, the simulator, the delay
models) remain importable for callers that need intermediate artifacts.
"""

from repro.api import run, sweep
from repro.session import ObsOptions, Session, resolve_source
from repro.core import (
    Certificate,
    CertificateError,
    ClockSynchronizer,
    ComponentResult,
    DegradedResult,
    IncompleteViewsError,
    InconsistentViewsError,
    ShiftsOutcome,
    SyncResult,
    UnboundedPrecisionError,
    beats_or_ties,
    corrected_starts,
    cycle_mean_under,
    estimated_delays,
    global_shift_estimates,
    local_shift_estimates,
    realized_spread,
    rho_bar,
    rho_bar_true,
    shifts,
    true_local_shifts,
    verify_certificate,
)
from repro.delays import (
    AsymmetricUniform,
    Bimodal,
    BoundedDelay,
    Composite,
    Constant,
    CorrelatedLoad,
    DelayAssumption,
    DelaySampler,
    Direction,
    DirectionStats,
    PairTiming,
    RoundTripBias,
    RoundTripBiasUnsigned,
    ShiftedExponential,
    System,
    TruncatedNormal,
    UniformDelay,
    lower_bounds_only,
    no_bounds,
)
from repro.graphs import (
    Topology,
    binary_tree,
    complete,
    grid,
    hypercube,
    line,
    random_connected,
    ring,
    star,
)
from repro.model import (
    Execution,
    History,
    Message,
    Step,
    View,
    executions_equivalent,
    shift_execution,
    shift_history,
)
from repro.sim import (
    Automaton,
    NetworkSimulator,
    SimulationConfig,
    SimulationError,
    draw_start_times,
    echo_automata,
    flood_automata,
    probe_automata,
    probe_schedule,
)

__version__ = "1.1.0"

__all__ = [
    # facade
    "run",
    "sweep",
    # session / config
    "ObsOptions",
    "Session",
    "resolve_source",
    # core
    "Certificate",
    "CertificateError",
    "ClockSynchronizer",
    "ComponentResult",
    "DegradedResult",
    "IncompleteViewsError",
    "InconsistentViewsError",
    "ShiftsOutcome",
    "SyncResult",
    "UnboundedPrecisionError",
    "beats_or_ties",
    "corrected_starts",
    "cycle_mean_under",
    "estimated_delays",
    "global_shift_estimates",
    "local_shift_estimates",
    "realized_spread",
    "rho_bar",
    "rho_bar_true",
    "shifts",
    "true_local_shifts",
    "verify_certificate",
    # delays
    "AsymmetricUniform",
    "Bimodal",
    "BoundedDelay",
    "Composite",
    "Constant",
    "CorrelatedLoad",
    "DelayAssumption",
    "DelaySampler",
    "Direction",
    "DirectionStats",
    "PairTiming",
    "RoundTripBias",
    "RoundTripBiasUnsigned",
    "ShiftedExponential",
    "System",
    "TruncatedNormal",
    "UniformDelay",
    "lower_bounds_only",
    "no_bounds",
    # graphs / topologies
    "Topology",
    "binary_tree",
    "complete",
    "grid",
    "hypercube",
    "line",
    "random_connected",
    "ring",
    "star",
    # model
    "Execution",
    "History",
    "Message",
    "Step",
    "View",
    "executions_equivalent",
    "shift_execution",
    "shift_history",
    # sim
    "Automaton",
    "NetworkSimulator",
    "SimulationConfig",
    "SimulationError",
    "draw_start_times",
    "echo_automata",
    "flood_automata",
    "probe_automata",
    "probe_schedule",
    "__version__",
]
