"""repro: optimal clock synchronization under different delay assumptions.

A complete, executable reproduction of Attiya, Herzberg & Rajsbaum,
*Optimal Clock Synchronization under Different Delay Assumptions*
(PODC 1993): the formal model, the per-instance-optimal synchronization
pipeline (estimated delays -> local shifts -> GLOBAL ESTIMATES -> SHIFTS),
the four delay models of the paper plus arbitrary compositions, a
discrete-event network simulator to generate admissible executions,
baselines (NTP-style, Cristian-style, and the Halpern--Megiddo--Munshi
linear program), and an evaluation harness implementing the paper's
``rho_bar`` optimality measure exactly.

Quickstart::

    from repro import (
        BoundedDelay, ClockSynchronizer, NetworkSimulator, System,
        UniformDelay, draw_start_times, probe_automata, probe_schedule, ring,
    )

    topo = ring(5)
    system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
    starts = draw_start_times(topo.nodes, max_skew=10.0, seed=7)
    sim = NetworkSimulator(system, samplers, starts, seed=7)
    alpha = sim.run(probe_automata(topo, probe_schedule(3, 20.0, 5.0)))

    result = ClockSynchronizer(system).from_execution(alpha)
    print(result.precision, result.corrections)
"""

from repro.core import (
    Certificate,
    CertificateError,
    ClockSynchronizer,
    ComponentResult,
    IncompleteViewsError,
    InconsistentViewsError,
    ShiftsOutcome,
    SyncResult,
    UnboundedPrecisionError,
    beats_or_ties,
    corrected_starts,
    cycle_mean_under,
    estimated_delays,
    global_shift_estimates,
    local_shift_estimates,
    realized_spread,
    rho_bar,
    rho_bar_true,
    shifts,
    true_local_shifts,
    verify_certificate,
)
from repro.delays import (
    AsymmetricUniform,
    Bimodal,
    BoundedDelay,
    Composite,
    Constant,
    CorrelatedLoad,
    DelayAssumption,
    DelaySampler,
    Direction,
    DirectionStats,
    PairTiming,
    RoundTripBias,
    RoundTripBiasUnsigned,
    ShiftedExponential,
    System,
    TruncatedNormal,
    UniformDelay,
    lower_bounds_only,
    no_bounds,
)
from repro.graphs import (
    Topology,
    binary_tree,
    complete,
    grid,
    hypercube,
    line,
    random_connected,
    ring,
    star,
)
from repro.model import (
    Execution,
    History,
    Message,
    Step,
    View,
    executions_equivalent,
    shift_execution,
    shift_history,
)
from repro.sim import (
    Automaton,
    NetworkSimulator,
    SimulationConfig,
    SimulationError,
    draw_start_times,
    echo_automata,
    flood_automata,
    probe_automata,
    probe_schedule,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "Certificate",
    "CertificateError",
    "ClockSynchronizer",
    "ComponentResult",
    "IncompleteViewsError",
    "InconsistentViewsError",
    "ShiftsOutcome",
    "SyncResult",
    "UnboundedPrecisionError",
    "beats_or_ties",
    "corrected_starts",
    "cycle_mean_under",
    "estimated_delays",
    "global_shift_estimates",
    "local_shift_estimates",
    "realized_spread",
    "rho_bar",
    "rho_bar_true",
    "shifts",
    "true_local_shifts",
    "verify_certificate",
    # delays
    "AsymmetricUniform",
    "Bimodal",
    "BoundedDelay",
    "Composite",
    "Constant",
    "CorrelatedLoad",
    "DelayAssumption",
    "DelaySampler",
    "Direction",
    "DirectionStats",
    "PairTiming",
    "RoundTripBias",
    "RoundTripBiasUnsigned",
    "ShiftedExponential",
    "System",
    "TruncatedNormal",
    "UniformDelay",
    "lower_bounds_only",
    "no_bounds",
    # graphs / topologies
    "Topology",
    "binary_tree",
    "complete",
    "grid",
    "hypercube",
    "line",
    "random_connected",
    "ring",
    "star",
    # model
    "Execution",
    "History",
    "Message",
    "Step",
    "View",
    "executions_equivalent",
    "shift_execution",
    "shift_history",
    # sim
    "Automaton",
    "NetworkSimulator",
    "SimulationConfig",
    "SimulationError",
    "draw_start_times",
    "echo_automata",
    "flood_automata",
    "probe_automata",
    "probe_schedule",
    "__version__",
]
