"""Peak-memory observability: tracemalloc + process RSS high-water.

Two complementary views of memory, surfaced as gauges so they travel
through the same registry/export pipeline as every other metric:

* :class:`TracemallocPeak` -- peak *python allocation* bytes inside a
  ``with`` block, measured by :mod:`tracemalloc`.  Precise and scoped
  (per benchmark, per profiled run), but only sees allocations the
  python allocator makes; numpy buffers allocated through it are
  counted, raw C mallocs are not.  Tracing costs real time, so callers
  keep it OUT of timed regions (the bench runner does a separate
  memory pass).
* :func:`process_peak_rss_bytes` -- the OS-reported resident-set
  high-water mark (``ru_maxrss``).  Whole-process and monotone (it
  never decreases), so it bounds everything including C allocations,
  but cannot be scoped to a block.

:func:`record_memory_gauges` writes both readings into a registry as
the ``process.peak_rss_bytes`` / ``process.tracemalloc_peak_bytes``
gauges; the ``profile`` CLI and the bench runner both report through
it (DESIGN.md section 13).
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Dict, Optional

#: Gauge names (``process.*`` prefix, per the obs naming conventions).
PEAK_RSS_GAUGE = "process.peak_rss_bytes"
TRACEMALLOC_PEAK_GAUGE = "process.tracemalloc_peak_bytes"


def process_peak_rss_bytes() -> Optional[int]:
    """Process lifetime RSS high-water mark in bytes (``None`` if unknown).

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux and in
    bytes on macOS; both are normalized to bytes here.  Platforms
    without :mod:`resource` (Windows) return ``None`` rather than
    guessing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


class TracemallocPeak:
    """Context manager measuring peak traced allocation inside the block.

    Nesting-safe: when tracemalloc is already tracing (an outer profile,
    another tracker), the existing trace is reused -- the peak counter is
    reset on entry and read on exit, and tracing is stopped only if this
    tracker started it.  ``peak_bytes`` is valid after exit (and reads 0
    until then).
    """

    def __init__(self) -> None:
        self.peak_bytes = 0
        self._started = False

    def __enter__(self) -> "TracemallocPeak":
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            self._started = True
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        _, self.peak_bytes = tracemalloc.get_traced_memory()
        if self._started:
            tracemalloc.stop()
            self._started = False
        return False


def record_memory_gauges(
    recorder=None, tracemalloc_peak: Optional[int] = None
) -> Dict[str, Optional[int]]:
    """Set the ``process.*`` memory gauges; returns the readings.

    ``recorder`` defaults to the ambient one (a no-op recorder accepts
    the sets silently, so call sites need no guard).  ``tracemalloc_peak``
    is typically a :class:`TracemallocPeak` reading taken around the
    region of interest; omit it to record only the RSS high-water mark.
    """
    if recorder is None:
        from repro.obs.recorder import get_recorder

        recorder = get_recorder()
    readings: Dict[str, Optional[int]] = {
        PEAK_RSS_GAUGE: process_peak_rss_bytes(),
        TRACEMALLOC_PEAK_GAUGE: tracemalloc_peak,
    }
    for name, value in readings.items():
        if value is not None:
            recorder.gauge(
                name, "peak memory (bytes); see repro.obs.memory"
            ).set(float(value))
    return readings


def format_bytes(value: Optional[float]) -> str:
    """Human-readable byte count (``"-"`` for unknown)."""
    if value is None:
        return "-"
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(size) < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{size:.1f} GiB"  # pragma: no cover - loop always returns


__all__ = [
    "PEAK_RSS_GAUGE",
    "TRACEMALLOC_PEAK_GAUGE",
    "TracemallocPeak",
    "format_bytes",
    "process_peak_rss_bytes",
    "record_memory_gauges",
]
