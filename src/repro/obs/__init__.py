"""Unified observability: spans, metrics, and exportable run telemetry.

One measurement plane for the whole reproduction -- simulator, the
GLOBAL ESTIMATES -> SHIFTS pipeline, the online synchronizer and the
matrix engines all report into the same recorder:

* :mod:`repro.obs.spans` -- nested timed regions with attributes,
  thread-safe and contextvar-propagated;
* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket
  histograms (no wall-clock or RNG in the data path);
* :mod:`repro.obs.recorder` -- the facade instrumented code talks to;
  the module-level default is a no-op whose disabled path costs one
  attribute lookup;
* :mod:`repro.obs.export` -- JSONL event logs, Chrome trace-event JSON
  (loads in Perfetto / ``chrome://tracing``) and Prometheus text
  exposition, plus validators CI runs against emitted artifacts;
* :mod:`repro.obs.report` -- span-tree / top-stages reports backing
  ``repro-clocksync profile``.

Quickstart::

    from repro.obs import recording, write_chrome_trace

    with recording() as rec:
        result = ClockSynchronizer(system).from_execution(alpha)
    write_chrome_trace("trace.json", rec.tracer.finished())

See DESIGN.md section 7 for the architecture and recorder lifecycle.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    validate_metrics_file,
    validate_prometheus_text,
    validate_trace_file,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_all,
)
from repro.obs.recorder import (
    NOOP,
    NoopRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.report import (
    aggregate_spans,
    format_span_tree,
    key_metrics_table,
    top_stages_table,
)
from repro.obs.spans import Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_all",
    "NOOP",
    "NoopRecorder",
    "Recorder",
    "get_recorder",
    "recording",
    "set_recorder",
    "Span",
    "Tracer",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_jsonl",
    "write_prometheus",
    "validate_metrics_file",
    "validate_prometheus_text",
    "validate_trace_file",
    "aggregate_spans",
    "format_span_tree",
    "key_metrics_table",
    "top_stages_table",
]
