"""Unified observability: spans, metrics, and exportable run telemetry.

One measurement plane for the whole reproduction -- simulator, the
GLOBAL ESTIMATES -> SHIFTS pipeline, the online synchronizer and the
matrix engines all report into the same recorder:

* :mod:`repro.obs.spans` -- nested timed regions with attributes,
  thread-safe and contextvar-propagated;
* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket
  histograms (no wall-clock or RNG in the data path);
* :mod:`repro.obs.recorder` -- the facade instrumented code talks to;
  the module-level default is a no-op whose disabled path costs one
  attribute lookup;
* :mod:`repro.obs.export` -- JSONL event logs, Chrome trace-event JSON
  (loads in Perfetto / ``chrome://tracing``) and Prometheus text
  exposition, plus validators CI runs against emitted artifacts;
* :mod:`repro.obs.report` -- span-tree / top-stages reports backing
  ``repro-clocksync profile``;
* :mod:`repro.obs.flow` -- message causality tracing: per-message
  lifecycle records with real vs estimated delay, Chrome *flow* events
  and a causal-DAG JSONL;
* :mod:`repro.obs.timeline` -- series sampled against *simulated* time
  (online convergence, per-processor corrections);
* :mod:`repro.obs.monitor` -- passive invariant monitors checking every
  synchronization result against the paper's theorems;
* :mod:`repro.obs.http` -- a stdlib HTTP sidecar serving ``/metrics``
  (Prometheus 0.0.4) and ``/healthz`` from the live registry;
* :mod:`repro.obs.log` -- structured JSONL logging with span/sim-time
  correlation, replacing ad-hoc warnings in the runner/faults paths;
* :mod:`repro.obs.memory` -- peak-memory observability: scoped
  tracemalloc peaks + the process RSS high-water mark, surfaced as
  ``process.*`` gauges by ``profile`` and the bench harness.

Quickstart::

    from repro.obs import recording, write_chrome_trace

    with recording() as rec:
        result = ClockSynchronizer(system).from_execution(alpha)
    write_chrome_trace("trace.json", rec.tracer.finished())

See DESIGN.md sections 7 (spans/metrics) and 8 (protocol telemetry).
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    validate_metrics_file,
    validate_prometheus_text,
    validate_trace_file,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_all,
    registry_from_snapshot,
)
from repro.obs.memory import (
    PEAK_RSS_GAUGE,
    TRACEMALLOC_PEAK_GAUGE,
    TracemallocPeak,
    format_bytes,
    process_peak_rss_bytes,
    record_memory_gauges,
)
from repro.obs.recorder import (
    NOOP,
    NoopRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.report import (
    aggregate_spans,
    format_span_tree,
    histogram_quantiles_table,
    key_metrics_table,
    quantile,
    top_stages_table,
)
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryServer,
    serve_telemetry,
)
from repro.obs.log import (
    LOG_LEVELS,
    LOG_RECORD_TYPE,
    LogSink,
    StructuredLogger,
    add_log_sink,
    get_logger,
    jsonl_logging,
    log_event,
    validate_log_file,
)
from repro.obs.flow import (
    EdgeErrorStats,
    FlowLog,
    FlowRecord,
    chrome_flow_events,
    validate_flow_trace_file,
    write_causal_dag,
    write_flow_trace,
)
from repro.obs.spans import Span, Tracer

# timeline / monitor are exposed lazily (PEP 562): they reach into
# repro.core, which imports the engine, which imports this package for
# the metrics registry -- an eager import here would be circular.
_LAZY = {
    "ConvergenceSample": "repro.obs.timeline",
    "ReplayResult": "repro.obs.timeline",
    "Series": "repro.obs.timeline",
    "Timeline": "repro.obs.timeline",
    "replay_online": "repro.obs.timeline",
    "timeline_jsonl_lines": "repro.obs.timeline",
    "validate_timeline_file": "repro.obs.timeline",
    "write_timeline_jsonl": "repro.obs.timeline",
    "MonitorSuite": "repro.obs.monitor",
    "MonitorViolationError": "repro.obs.monitor",
    "Violation": "repro.obs.monitor",
    "default_monitors": "repro.obs.monitor",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_all",
    "registry_from_snapshot",
    "NOOP",
    "NoopRecorder",
    "Recorder",
    "get_recorder",
    "recording",
    "set_recorder",
    "Span",
    "Tracer",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_jsonl",
    "write_prometheus",
    "validate_metrics_file",
    "validate_prometheus_text",
    "validate_trace_file",
    "aggregate_spans",
    "format_span_tree",
    "histogram_quantiles_table",
    "key_metrics_table",
    "quantile",
    "top_stages_table",
    "EdgeErrorStats",
    "FlowLog",
    "FlowRecord",
    "chrome_flow_events",
    "validate_flow_trace_file",
    "write_causal_dag",
    "write_flow_trace",
    "PROMETHEUS_CONTENT_TYPE",
    "TelemetryServer",
    "serve_telemetry",
    "PEAK_RSS_GAUGE",
    "TRACEMALLOC_PEAK_GAUGE",
    "TracemallocPeak",
    "format_bytes",
    "process_peak_rss_bytes",
    "record_memory_gauges",
    "LOG_LEVELS",
    "LOG_RECORD_TYPE",
    "LogSink",
    "StructuredLogger",
    "add_log_sink",
    "get_logger",
    "jsonl_logging",
    "log_event",
    "validate_log_file",
    *sorted(_LAZY),
]
