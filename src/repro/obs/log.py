"""Structured JSONL logging, correlated with spans and simulated time.

The runner and faults paths used to report operational events through
ad-hoc ``logging.warning`` strings -- unparseable by the same tooling
that consumes every other telemetry stream in :mod:`repro.obs`.  This
module gives those paths one structured emitter:

* :func:`log_event` builds a JSON record ``{"record": "log", "ts":
  ..., "level": ..., "logger": ..., "event": ...}`` plus arbitrary
  structured fields, enriches it with the ambient recorder's
  correlation context when one is installed (``span`` id + name,
  parent span, ``sim_time``), writes it to every installed JSONL sink,
  and mirrors a human-readable line to stdlib :mod:`logging` so
  ``--log-level`` style configuration keeps working unchanged.
* :func:`add_log_sink` / :func:`jsonl_logging` install file sinks
  (the CLI's ``--log-jsonl PATH`` flag is a thin wrapper).
* :func:`validate_log_file` is the matching validator, same contract
  as ``validate_metrics_file`` and friends: returns the record count,
  raises ``ValueError`` on the first malformed line.

Events are named ``<area>.<what_happened>`` (``cache.corrupt_entry``,
``sink.recovered_torn_tail``, ``campaign.cell.quarantined``): stable
identifiers for filtering, with the variable detail in fields, never
interpolated into the event name.

With no sinks installed and no recorder active the cost is one
``isEnabledFor`` check per call -- operational events are rare
(corruption, quarantine, recovery), so this sits nowhere near the
no-op overhead budget.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Union

from repro.obs.http import json_ready
from repro.obs.recorder import get_recorder

#: Record discriminator, alongside "metric" etc. in mixed JSONL files.
LOG_RECORD_TYPE = "log"

#: Levels a structured record may carry, with their stdlib equivalents.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_sinks_lock = threading.Lock()
_sinks: List["LogSink"] = []


class LogSink:
    """One open JSONL destination; closing it deregisters it."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: io.TextIOWrapper = open(
            self._path, "a", encoding="utf-8"
        )
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self._path

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with _sinks_lock:
            if self in _sinks:
                _sinks.remove(self)
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "LogSink":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False


def add_log_sink(path: Union[str, Path]) -> LogSink:
    """Install a JSONL sink receiving every subsequent log record."""
    sink = LogSink(path)
    with _sinks_lock:
        _sinks.append(sink)
    return sink


@contextmanager
def jsonl_logging(path: Union[str, Path]) -> Iterator[LogSink]:
    """Scoped :func:`add_log_sink`: installed inside, closed on exit."""
    sink = add_log_sink(path)
    try:
        yield sink
    finally:
        sink.close()


def log_event(level: str, event: str, *, logger: str = "repro", **fields) -> dict:
    """Emit one structured record; returns it (tests assert on this).

    ``level`` must be one of :data:`LOG_LEVELS`; ``event`` is the
    stable ``<area>.<what>`` identifier; ``fields`` carry the
    structured detail (made JSON-safe, so non-finite floats survive
    the round trip the same way metric records do).
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(LOG_LEVELS)}"
        )
    record = {
        "record": LOG_RECORD_TYPE,
        "ts": time.time(),
        "level": level,
        "logger": logger,
        "event": event,
    }
    recorder = get_recorder()
    if recorder.enabled:
        if recorder.sim_time is not None:
            record["sim_time"] = recorder.sim_time
        span = recorder.current_span()
        if span is not None:
            record["span"] = span.span_id
            record["span_name"] = span.name
            if span.parent_id is not None:
                record["parent_span"] = span.parent_id
    for key, value in fields.items():
        record[key] = json_ready(value)

    with _sinks_lock:
        sinks = list(_sinks)
    for sink in sinks:
        sink.write(record)

    std = logging.getLogger(logger)
    if std.isEnabledFor(LOG_LEVELS[level]):
        detail = " ".join(
            f"{key}={record[key]!r}" for key in fields if key in record
        )
        std.log(
            LOG_LEVELS[level], "%s", f"{event} {detail}".rstrip()
        )
    return record


class StructuredLogger:
    """A logger-name-bound convenience facade over :func:`log_event`."""

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def debug(self, event: str, **fields) -> dict:
        return log_event("debug", event, logger=self._name, **fields)

    def info(self, event: str, **fields) -> dict:
        return log_event("info", event, logger=self._name, **fields)

    def warning(self, event: str, **fields) -> dict:
        return log_event("warning", event, logger=self._name, **fields)

    def error(self, event: str, **fields) -> dict:
        return log_event("error", event, logger=self._name, **fields)


def get_logger(name: str) -> StructuredLogger:
    """The structured counterpart of ``logging.getLogger(name)``."""
    return StructuredLogger(name)


def validate_log_file(path: Union[str, Path]) -> int:
    """Validate a JSONL log file; returns the record count.

    Same contract as the other ``validate_*_file`` exporter checks:
    every line must be a JSON object with ``record == "log"``, a known
    ``level``, and non-empty ``logger``/``event`` strings plus a
    numeric ``ts``.  Raises :class:`ValueError` on the first violation
    or if the file holds no records at all.
    """
    target = Path(path)
    count = 0
    with open(target, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{target}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{target}:{lineno}: log record must be an object"
                )
            if record.get("record") != LOG_RECORD_TYPE:
                raise ValueError(
                    f"{target}:{lineno}: record type "
                    f"{record.get('record')!r}, expected {LOG_RECORD_TYPE!r}"
                )
            if record.get("level") not in LOG_LEVELS:
                raise ValueError(
                    f"{target}:{lineno}: unknown level "
                    f"{record.get('level')!r}"
                )
            for key in ("logger", "event"):
                value = record.get(key)
                if not isinstance(value, str) or not value:
                    raise ValueError(
                        f"{target}:{lineno}: missing or empty {key!r}"
                    )
            if not isinstance(record.get("ts"), (int, float)):
                raise ValueError(f"{target}:{lineno}: missing numeric 'ts'")
            count += 1
    if count == 0:
        raise ValueError(f"{target}: no log records")
    return count


__all__ = [
    "LOG_LEVELS",
    "LOG_RECORD_TYPE",
    "LogSink",
    "StructuredLogger",
    "add_log_sink",
    "get_logger",
    "jsonl_logging",
    "log_event",
    "validate_log_file",
]
