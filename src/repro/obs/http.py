"""A stdlib HTTP sidecar serving ``/metrics`` and ``/healthz``.

The first real-socket surface in the repo: a daemon-thread
``http.server`` that exposes the live observability plane to anything
that can speak HTTP -- a Prometheus scraper, ``curl`` in CI, or the
``campaign run --serve-metrics PORT`` flag watching a fleet shard.

* ``GET /metrics`` renders the registry through the existing
  Prometheus 0.0.4 text exporter (:func:`repro.obs.export
  .prometheus_text`), so whatever a scrape returns always passes
  :func:`~repro.obs.export.validate_prometheus_text`.  The registry is
  snapshotted per request against live concurrent updates -- the
  registry's own locks make that race-safe, and a dedicated test
  hammers it from writer threads while scraping.
* ``GET /healthz`` serves a JSON health payload from an injectable
  ``health`` callable (``campaign run`` wires in the fleet heartbeat
  summary from :mod:`repro.runner.status`).  HTTP 200 while the
  payload says ``healthy``, 503 once it does not -- so a load balancer
  or CI assertion needs no JSON parsing for the basic verdict.

No third-party dependencies, no background work between requests, and
``close()`` is idempotent: this is deliberately the smallest thing the
ROADMAP item 1 live runtime can inherit as its ops surface.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Union

from repro.obs.export import _json_safe, prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import get_recorder

#: The content type Prometheus expects for the 0.0.4 text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def json_ready(value):
    """Recursive :func:`~repro.obs.export._json_safe`: structures keep
    their shape, leaves get the scalar coercion (non-finite floats to
    strings, unknown objects to ``repr``)."""
    if isinstance(value, dict):
        return {str(key): json_ready(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(item) for item in value]
    return _json_safe(value)

RegistrySource = Union[MetricsRegistry, Callable[[], Optional[MetricsRegistry]]]

#: Anything :func:`resolve_health_provider` understands.
HealthSource = Union[dict, Callable[[], dict], object, None]


def _default_health() -> dict:
    return {"status": "ok", "healthy": True}


def resolve_health_provider(health: HealthSource) -> Callable[[], dict]:
    """Normalize any health source into the zero-arg callable the
    ``/healthz`` handler consumes.

    Accepted shapes: ``None`` (always-healthy default), a static
    ``dict`` payload, a zero-arg callable returning the payload, or any
    object with a ``health_json()`` method (e.g. the live
    :class:`~repro.live.server.CorrectionServer` or the fleet
    :class:`~repro.runner.status.FleetStatus`) -- so surfaces can hand
    themselves to :func:`serve_telemetry` directly instead of this
    module hard-wiring any one provider's internals.
    """
    if health is None:
        return _default_health
    if isinstance(health, dict):
        payload = dict(health)
        return lambda: payload
    if callable(health):
        return health
    health_json = getattr(health, "health_json", None)
    if callable(health_json):
        return health_json
    raise TypeError(
        f"health source {health!r} is none of: None, dict, callable, "
        f"object with health_json()"
    )


class TelemetryServer:
    """Background-thread HTTP server for one registry + health source.

    ``registry`` may be a :class:`~repro.obs.metrics.MetricsRegistry`
    or a zero-arg callable resolved per request (for surfaces whose
    registry is swapped out over time).  ``None`` captures the ambient
    recorder's registry at construction -- capture, not per-request
    lookup, because the handler runs on its own thread and context-var
    state does not follow it there.

    Binds ``host:port`` immediately (``port=0`` picks an ephemeral
    port, readable via :attr:`port` -- tests never race on a fixed
    one); request handling starts at :meth:`start`.
    """

    def __init__(
        self,
        registry: Optional[RegistrySource] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        health: HealthSource = None,
    ) -> None:
        if registry is None:
            recorder = get_recorder()
            registry = (
                recorder.registry if recorder.enabled else MetricsRegistry()
            )
        self._registry = registry
        self._health = resolve_health_provider(health)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: object) -> None:
                pass  # telemetry must not spam the runner's stderr

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                server._handle(self)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._closed:
            raise RuntimeError("telemetry server already closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    # -- request handling --------------------------------------------------

    def _resolve_registry(self) -> MetricsRegistry:
        registry = self._registry
        if callable(registry):
            registry = registry()
        return registry if registry is not None else MetricsRegistry()

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = prometheus_text(self._resolve_registry()).encode(
                    "utf-8"
                )
                self._respond(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                payload = self._health()
                if not isinstance(payload, dict):
                    payload = {"status": str(payload), "healthy": True}
                healthy = bool(payload.get("healthy", True))
                body = json.dumps(
                    json_ready(payload), sort_keys=True
                ).encode("utf-8")
                self._respond(
                    request,
                    200 if healthy else 503,
                    "application/json",
                    body,
                )
            else:
                body = json.dumps({"error": f"no such path: {path}"}).encode(
                    "utf-8"
                )
                self._respond(request, 404, "application/json", body)
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to salvage
        except Exception as exc:  # noqa: BLE001 -- a scrape must not kill us
            body = json.dumps(
                {"status": "error", "error": str(exc)}
            ).encode("utf-8")
            try:
                self._respond(request, 500, "application/json", body)
            except OSError:
                pass

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler,
        code: int,
        content_type: str,
        body: bytes,
    ) -> None:
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)


def serve_telemetry(
    registry: Optional[RegistrySource] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    health: HealthSource = None,
) -> TelemetryServer:
    """Start (and return) a :class:`TelemetryServer`; caller closes it.

    The one-liner API: ``server = serve_telemetry(port=9109)`` inside a
    :func:`~repro.obs.recorder.recording` block exposes the live run at
    ``server.url`` until ``server.close()``.
    """
    return TelemetryServer(
        registry, host=host, port=port, health=health
    ).start()


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "HealthSource",
    "TelemetryServer",
    "json_ready",
    "resolve_health_provider",
    "serve_telemetry",
]
