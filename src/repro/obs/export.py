"""Exporters: JSONL event logs, Chrome trace-event JSON, Prometheus text.

Three interchange formats cover the consumers we care about:

* **JSONL** (one JSON object per line) for regression tracking -- easy
  to diff, grep and load into pandas.  ``write_metrics_jsonl`` dumps the
  registry; ``write_events_jsonl`` interleaves span records too.
* **Chrome trace-event JSON** for humans -- the emitted file loads
  directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Spans become complete (``"ph": "X"``) events with microsecond
  timestamps.
* **Prometheus text exposition** for scrape-style monitoring; metric
  names are sanitized to the Prometheus grammar
  (``[a-zA-Z_:][a-zA-Z0-9_:]*``).

``validate_trace_file``/``validate_metrics_file`` re-read what the
writers produced; CI runs them against the artifacts of an instrumented
demo + profile run so a formatting regression fails the build.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span

PathLike = Union[str, Path]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


def _json_safe(value):
    """Coerce one attribute/metric value into something JSON-clean."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf' / '-inf' / 'nan' as strings
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------

def chrome_trace(spans: Sequence[Span], pid: int = 1) -> Dict:
    """Spans as a Chrome trace-event document (JSON object format).

    Every span becomes one complete event; thread ids are preserved so
    multi-threaded runs render on separate tracks.
    """
    events: List[Dict] = []
    threads = sorted({s.thread_id for s in spans})
    tids = {thread: i + 1 for i, thread in enumerate(threads)}
    for tid in tids.values():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"thread-{tid}"},
            }
        )
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tids[span.thread_id],
                "args": {
                    key: _json_safe(value)
                    for key, value in span.attributes.items()
                },
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(path: PathLike, spans: Sequence[Span]) -> Path:
    """Write ``spans`` as a Perfetto-loadable trace file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans)) + "\n")
    return path


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def metrics_jsonl_lines(registry: MetricsRegistry) -> Iterator[str]:
    """One JSON object per instrument (sorted by name)."""
    for name, record in registry.snapshot().items():
        payload = {"record": "metric", "name": name}
        for key, value in record.items():
            payload[key] = _json_safe(value) if key != "counts" else value
        yield json.dumps(payload, sort_keys=True)


def span_jsonl_lines(spans: Sequence[Span]) -> Iterator[str]:
    """One JSON object per finished span, in completion order."""
    for span in spans:
        yield json.dumps(
            {
                "record": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "thread": span.thread_id,
                "attributes": {
                    key: _json_safe(value)
                    for key, value in span.attributes.items()
                },
            },
            sort_keys=True,
        )


def write_metrics_jsonl(path: PathLike, registry: MetricsRegistry) -> Path:
    """Dump the registry as JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = list(metrics_jsonl_lines(registry))
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def write_events_jsonl(path: PathLike, recorder) -> Path:
    """Full event log: every span record followed by every metric record."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = list(span_jsonl_lines(recorder.tracer.finished()))
    lines.extend(metrics_jsonl_lines(recorder.registry))
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted name onto the Prometheus grammar."""
    cleaned = _PROM_NAME.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def prometheus_text(registry: MetricsRegistry) -> str:
    """Registry in Prometheus text exposition format (version 0.0.4)."""
    out: List[str] = []
    for instrument in registry.instruments():
        name = sanitize_metric_name(instrument.name)
        if instrument.description:
            out.append(f"# HELP {name} {instrument.description}")
        out.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Counter):
            out.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            out.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            cumulative = instrument.cumulative_counts()
            for boundary, count in zip(instrument.boundaries, cumulative):
                out.append(
                    f'{name}_bucket{{le="{_format_value(boundary)}"}} {count}'
                )
            out.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
            out.append(f"{name}_sum {_format_value(instrument.sum)}")
            out.append(f"{name}_count {instrument.count}")
    return "\n".join(out) + ("\n" if out else "")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def write_prometheus(path: PathLike, registry: MetricsRegistry) -> Path:
    """Write the Prometheus exposition to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


# ----------------------------------------------------------------------
# Validators (used by tests and the CI telemetry step)
# ----------------------------------------------------------------------

def validate_trace_file(path: PathLike) -> int:
    """Check a Chrome trace file's shape; returns the span-event count.

    Raises ``ValueError`` on any malformed document or event, so CI can
    use it as an assertion.
    """
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a trace-event document")
    spans = 0
    for event in document["traceEvents"]:
        for key in ("ph", "pid", "name"):
            if key not in event:
                raise ValueError(f"{path}: event missing {key!r}: {event}")
        if event["ph"] == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(
                    f"{path}: complete event missing ts/dur: {event}"
                )
            spans += 1
    return spans


def validate_metrics_file(path: PathLike) -> int:
    """Check a metrics/events JSONL file; returns the record count."""
    records = 0
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        record = json.loads(line)
        if "record" not in record or "name" not in record:
            raise ValueError(
                f"{path}:{lineno}: missing 'record'/'name' keys"
            )
        records += 1
    if records == 0:
        raise ValueError(f"{path}: no records")
    return records


def validate_prometheus_text(text: str) -> int:
    """Check exposition-format grammar; returns the sample-line count."""
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        if not _PROM_LINE.match(line):
            raise ValueError(f"line {lineno} is not a valid sample: {line!r}")
        samples += 1
    return samples


__all__ = [
    "chrome_trace",
    "metrics_jsonl_lines",
    "span_jsonl_lines",
    "prometheus_text",
    "sanitize_metric_name",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_jsonl",
    "write_prometheus",
    "validate_metrics_file",
    "validate_prometheus_text",
    "validate_trace_file",
]
