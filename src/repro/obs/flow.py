"""Message causality tracing: the send -> queue -> deliver lifecycle.

PR 2's spans observe the *process* (wall-clock stages); this module
observes the *protocol*.  Every message the simulator dispatches is
recorded as one :class:`FlowRecord` carrying both sides of the paper's
central distinction:

* the real delay ``d(m)`` -- ground truth, visible only to the outside
  observer;
* the estimated delay ``d~(m) = recv_clock - send_clock`` -- what the
  receiver can actually compute (Lemma 6.1), off from ``d(m)`` by
  exactly the unknown start-time difference ``S_p - S_q``;

plus the link's delay-assumption attributes, the send/receive clock
readings, and whether the delivery system held the message until the
receiver's start instant.  Trace ids are the model's message uids (the
paper's "messages are unique" assumption doubles as a tracing scheme).

Two export shapes:

* **Chrome trace-event flow events** -- each message becomes an
  in-flight slice on its directed edge's track plus a ``s``/``f`` flow
  arrow from the sender's send marker to the receiver's receive marker.
  Timestamps are *simulated* seconds (rendered as microseconds), on a
  separate ``pid`` so the file loads in Perfetto alongside the
  wall-clock span trace of :func:`repro.obs.export.chrome_trace`.
* **Causal-DAG JSONL** -- one JSON object per message, the grep/pandas
  form of the same data.

The :class:`FlowLog` is a recorder *observer* (see
:meth:`repro.obs.recorder.Recorder.add_observer`): the simulator emits
``message.flow`` events only when a recorder is installed and at least
one observer is attached, so the disabled path stays free.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.spans import Span

PathLike = Union[str, Path]

#: Flow lifecycle stage names (the causal-DAG node kinds).
STAGE_SEND = "send"
STAGE_DELIVER = "deliver"
STAGE_DROP = "drop"

#: Rendered width of the send/receive instant markers, in microseconds.
_MARKER_US = 1.0


@dataclass(frozen=True)
class FlowRecord:
    """One message's complete lifecycle, as seen by the outside observer.

    ``delay``/``arrival_time``/``receive_clock`` are ``None`` for
    messages lost to configured link loss (status ``"dropped"``) -- the
    model's permanent "in flight" state.  ``held`` marks messages the
    delivery system parked until the receiver's start instant; for those
    ``delay`` includes the holding time (it *is* the model's ``d(m)``).
    """

    trace_id: int
    sender: Any
    receiver: Any
    link: Tuple[Any, Any]
    assumption: str
    send_time: float
    send_clock: float
    status: str = "delivered"
    arrival_time: Optional[float] = None
    receive_clock: Optional[float] = None
    held: bool = False

    @property
    def delay(self) -> Optional[float]:
        """The real delay ``d(m)`` (``None`` while never delivered)."""
        if self.arrival_time is None:
            return None
        return self.arrival_time - self.send_time

    @property
    def estimated_delay(self) -> Optional[float]:
        """``d~(m)``, the views-computable delay estimate of Lemma 6.1."""
        if self.receive_clock is None:
            return None
        return self.receive_clock - self.send_clock

    @property
    def estimate_error(self) -> Optional[float]:
        """``d~(m) - d(m)``; equals ``S_p - S_q`` on every delivery."""
        if self.arrival_time is None:
            return None
        return self.estimated_delay - self.delay

    @property
    def edge(self) -> Tuple[Any, Any]:
        """The directed edge ``(sender, receiver)`` travelled."""
        return (self.sender, self.receiver)


@dataclass(frozen=True)
class EdgeErrorStats:
    """Per-directed-edge statistics of delays and estimate errors."""

    messages: int
    dropped: int
    mean_delay: float
    mean_estimated_delay: float
    estimate_error: float
    error_spread: float

    @property
    def delivered(self) -> int:
        return self.messages - self.dropped


class FlowLog:
    """Collects :class:`FlowRecord` objects; thread-safe, append-only.

    Attach to a recorder (``recorder.add_observer(flow_log)``) before a
    simulation to capture every dispatched message, or feed records
    directly via :meth:`record` (the execution replayers do this).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[FlowRecord] = []

    # -- ingestion -----------------------------------------------------

    def on_telemetry(self, kind: str, data: Mapping[str, Any]) -> None:
        """Recorder-observer entry point; ignores non-flow events."""
        if kind == "message.flow":
            self.record(data["record"])

    def record(self, record: FlowRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- queries -------------------------------------------------------

    def records(self) -> List[FlowRecord]:
        """Snapshot of all records, in dispatch order."""
        with self._lock:
            return list(self._records)

    def delivered(self) -> List[FlowRecord]:
        return [r for r in self.records() if r.status == "delivered"]

    def per_edge_error_stats(self) -> Dict[Tuple[Any, Any], EdgeErrorStats]:
        """Delay vs delay-estimate statistics per directed edge.

        ``estimate_error`` is the mean of ``d~(m) - d(m)`` over the
        edge's deliveries; by Lemma 6.1 every message on one directed
        edge has the *same* error (``S_p - S_q``), so ``error_spread``
        (max - min of the per-message errors) should be ~0 on honest
        telemetry -- a nonzero spread means the records are corrupt.
        """
        grouped: Dict[Tuple[Any, Any], List[FlowRecord]] = {}
        for record in self.records():
            grouped.setdefault(record.edge, []).append(record)
        out: Dict[Tuple[Any, Any], EdgeErrorStats] = {}
        for edge, records in grouped.items():
            delivered = [r for r in records if r.status == "delivered"]
            if delivered:
                delays = [r.delay for r in delivered]
                estimates = [r.estimated_delay for r in delivered]
                errors = [r.estimate_error for r in delivered]
                stats = EdgeErrorStats(
                    messages=len(records),
                    dropped=len(records) - len(delivered),
                    mean_delay=sum(delays) / len(delays),
                    mean_estimated_delay=sum(estimates) / len(estimates),
                    estimate_error=sum(errors) / len(errors),
                    error_spread=max(errors) - min(errors),
                )
            else:
                stats = EdgeErrorStats(
                    messages=len(records),
                    dropped=len(records),
                    mean_delay=float("nan"),
                    mean_estimated_delay=float("nan"),
                    estimate_error=float("nan"),
                    error_spread=float("nan"),
                )
            out[edge] = stats
        return out

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return f"FlowLog({len(self)} messages)"


# ----------------------------------------------------------------------
# Causal-DAG JSONL
# ----------------------------------------------------------------------


def flow_record_to_dict(record: FlowRecord) -> Dict[str, Any]:
    """One record as a JSON-clean dict (also the trace-v2 embed shape)."""
    return {
        "record": "message",
        "trace_id": record.trace_id,
        "sender": repr(record.sender),
        "receiver": repr(record.receiver),
        "link": [repr(record.link[0]), repr(record.link[1])],
        "assumption": record.assumption,
        "status": record.status,
        "held": record.held,
        "send": {"t": record.send_time, "clock": record.send_clock},
        "deliver": (
            None
            if record.arrival_time is None
            else {"t": record.arrival_time, "clock": record.receive_clock}
        ),
        "d": record.delay,
        "d_tilde": record.estimated_delay,
    }


def causal_dag_lines(flow_log: FlowLog) -> Iterator[str]:
    """One JSON object per message -- the causal DAG in JSONL form.

    Each record is a causal edge from its send node to its deliver node;
    records sharing a processor are totally ordered by time, so the file
    determines the full happens-before relation of the execution.
    """
    for record in flow_log.records():
        yield json.dumps(flow_record_to_dict(record), sort_keys=True)


def write_causal_dag(path: PathLike, flow_log: FlowLog) -> Path:
    """Write the causal-DAG JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = list(causal_dag_lines(flow_log))
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ----------------------------------------------------------------------
# Chrome trace-event flow export
# ----------------------------------------------------------------------

#: pid of the protocol (simulated-time) track group; the wall-clock span
#: trace of :func:`repro.obs.export.chrome_trace` uses pid 1.
FLOW_PID = 2


def chrome_flow_events(flow_log: FlowLog, pid: int = FLOW_PID) -> List[Dict]:
    """Flow records as Chrome trace events (simulated-time timeline).

    Layout: one track per processor carrying instant send/receive
    markers, one track per directed edge carrying the in-flight slice of
    each message, and an ``s``/``f`` flow arrow per delivered message
    linking its send marker to its receive marker.  Timestamps are
    simulated seconds scaled to microseconds.
    """
    records = flow_log.records()
    processors = sorted(
        {r.sender for r in records} | {r.receiver for r in records}, key=repr
    )
    edges = sorted({r.edge for r in records}, key=repr)
    proc_tids = {p: i + 1 for i, p in enumerate(processors)}
    edge_tids = {
        e: len(processors) + i + 1 for i, e in enumerate(edges)
    }

    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "protocol (simulated time)"},
        }
    ]
    for p, tid in proc_tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"proc {p!r}"},
            }
        )
    for (p, q), tid in edge_tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"link {p!r}->{q!r} in flight"},
            }
        )

    for record in records:
        send_us = record.send_time * 1e6
        args = {
            "trace_id": record.trace_id,
            "assumption": record.assumption,
            "send_clock": record.send_clock,
        }
        events.append(
            {
                "name": f"send m{record.trace_id}",
                "cat": "proto",
                "ph": "X",
                "ts": round(send_us, 3),
                "dur": _MARKER_US,
                "pid": pid,
                "tid": proc_tids[record.sender],
                "args": args,
            }
        )
        if record.status == "dropped":
            events.append(
                {
                    "name": f"drop m{record.trace_id}",
                    "cat": "proto",
                    "ph": "i",
                    "s": "p",
                    "ts": round(send_us, 3),
                    "pid": pid,
                    "tid": edge_tids[record.edge],
                }
            )
            continue
        arrival_us = record.arrival_time * 1e6
        events.append(
            {
                "name": f"m{record.trace_id} in flight",
                "cat": "proto",
                "ph": "X",
                "ts": round(send_us, 3),
                "dur": round(max(arrival_us - send_us, _MARKER_US), 3),
                "pid": pid,
                "tid": edge_tids[record.edge],
                "args": {
                    "trace_id": record.trace_id,
                    "d": record.delay,
                    "d_tilde": record.estimated_delay,
                    "held": record.held,
                },
            }
        )
        events.append(
            {
                "name": f"recv m{record.trace_id}",
                "cat": "proto",
                "ph": "X",
                "ts": round(arrival_us, 3),
                "dur": _MARKER_US,
                "pid": pid,
                "tid": proc_tids[record.receiver],
                "args": {
                    "trace_id": record.trace_id,
                    "receive_clock": record.receive_clock,
                },
            }
        )
        flow_common = {
            "name": f"m{record.trace_id}",
            "cat": "flow",
            "id": record.trace_id,
            "pid": pid,
        }
        events.append(
            {
                **flow_common,
                "ph": "s",
                "ts": round(send_us + _MARKER_US / 2, 3),
                "tid": proc_tids[record.sender],
            }
        )
        events.append(
            {
                **flow_common,
                "ph": "f",
                "bp": "e",
                "ts": round(arrival_us + _MARKER_US / 2, 3),
                "tid": proc_tids[record.receiver],
            }
        )
    return events


def write_flow_trace(
    path: PathLike,
    flow_log: FlowLog,
    spans: Optional[Sequence[Span]] = None,
) -> Path:
    """Write a Perfetto-loadable trace of the message flows.

    With ``spans`` given, the wall-clock span trace is merged into the
    same document (on its own pid), so one file shows both the process
    and the protocol view.
    """
    from repro.obs.export import chrome_trace

    document = (
        chrome_trace(spans)
        if spans
        else {"displayTimeUnit": "ms", "traceEvents": []}
    )
    document["traceEvents"].extend(chrome_flow_events(flow_log))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document) + "\n")
    return path


def validate_flow_trace_file(path: PathLike) -> int:
    """Check a flow trace's shape and pairing; returns the flow count.

    Every flow-start (``ph: "s"``) must have exactly one matching
    flow-end (``ph: "f"``) with the same id, at a timestamp no earlier
    than the start -- a broken pairing renders as dangling arrows in
    Perfetto, so CI treats it as malformed.
    """
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a trace-event document")
    starts: Dict[Any, float] = {}
    ends: Dict[Any, float] = {}
    for event in document["traceEvents"]:
        for key in ("ph", "pid", "name"):
            if key not in event:
                raise ValueError(f"{path}: event missing {key!r}: {event}")
        if event["ph"] in ("s", "f"):
            if "id" not in event or "ts" not in event:
                raise ValueError(
                    f"{path}: flow event missing id/ts: {event}"
                )
            bucket = starts if event["ph"] == "s" else ends
            if event["id"] in bucket:
                raise ValueError(
                    f"{path}: duplicate flow {event['ph']!r} id {event['id']}"
                )
            bucket[event["id"]] = event["ts"]
    if set(starts) != set(ends):
        raise ValueError(
            f"{path}: unpaired flow ids: "
            f"{sorted(set(starts) ^ set(ends))[:10]}"
        )
    for flow_id, ts in starts.items():
        if ends[flow_id] < ts:
            raise ValueError(
                f"{path}: flow {flow_id} ends before it starts"
            )
    return len(starts)


__all__ = [
    "EdgeErrorStats",
    "FLOW_PID",
    "FlowLog",
    "FlowRecord",
    "STAGE_DELIVER",
    "STAGE_DROP",
    "STAGE_SEND",
    "causal_dag_lines",
    "chrome_flow_events",
    "flow_record_to_dict",
    "validate_flow_trace_file",
    "write_causal_dag",
    "write_flow_trace",
]
