"""Metrics registry: counters, gauges and histograms.

The registry is the single store for numeric telemetry across the
simulator, the synchronization pipeline and the matrix engines.  Three
instrument kinds cover everything the repo measures:

* :class:`Counter` -- monotonically non-decreasing totals (events
  processed, messages delivered, engine stage seconds);
* :class:`Gauge` -- last-value-wins readings (precision ``A^max``,
  correction spread, peak queue depth);
* :class:`Histogram` -- distributions over *fixed* bucket boundaries
  chosen at creation time (queue depths, per-stage latencies).

Design rules, enforced here:

* **No wall-clock or RNG in the data path.**  ``add``/``set``/``observe``
  touch only the caller-supplied value; timestamps belong to the span
  layer (:mod:`repro.obs.spans`), and bucket boundaries are fixed up
  front so an observation is a bisect plus an increment.
* **Thread-safe.**  Every instrument serializes updates behind its own
  lock, so engines running on worker threads (or a future parallel
  backend) can share a registry without torn reads.
* **Get-or-create.**  :meth:`MetricsRegistry.counter` and friends return
  the existing instrument when the name is already registered and raise
  on a kind mismatch, so independent modules can reference the same
  series without coordination.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Instrument = Union["Counter", "Gauge", "Histogram"]

#: Default histogram boundaries (seconds-flavoured, Prometheus-style).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically non-decreasing total."""

    kind = "counter"
    __slots__ = ("name", "description", "_lock", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative amounts are a logic error."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    inc = add

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value!r})"


class Gauge:
    """A last-value-wins reading."""

    kind = "gauge"
    __slots__ = ("name", "description", "_lock", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value!r})"


class Histogram:
    """A distribution over fixed, ascending bucket boundaries.

    ``boundaries[i]`` is the *inclusive* upper edge of bucket ``i``
    (Prometheus ``le`` semantics); one implicit ``+Inf`` bucket catches
    the rest.  Counts are stored per-bucket and cumulated only at export
    time, so ``observe`` is a bisect plus two additions.
    """

    kind = "histogram"
    __slots__ = (
        "name", "description", "boundaries", "_lock",
        "_bucket_counts", "_sum", "_count",
    )

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly ascending: "
                f"{bounds}"
            )
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError(
                f"histogram {name!r} boundaries must be finite (the +Inf "
                f"bucket is implicit)"
            )
        self.name = name
        self.description = description
        self.boundaries = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample (``value <= boundary`` lands in that bucket)."""
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; the last entry is +Inf."""
        with self._lock:
            return tuple(self._bucket_counts)

    def cumulative_counts(self) -> Tuple[int, ...]:
        """Prometheus-style cumulative counts, one per boundary plus +Inf."""
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return tuple(out)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self._count}, "
            f"sum={self._sum!r})"
        )


class MetricsRegistry:
    """Thread-safe, get-or-create store of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    # -- creation ------------------------------------------------------

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        description: str = "",
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} is a {existing.kind}, "
                        f"not a histogram"
                    )
                if boundaries is not None and tuple(
                    float(b) for b in boundaries
                ) != existing.boundaries:
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        f"boundaries {existing.boundaries}"
                    )
                return existing
            instrument = Histogram(
                name, boundaries or DEFAULT_BUCKETS, description
            )
            self._instruments[name] = instrument
            return instrument

    def _get_or_create(self, cls, name: str, description: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is a {existing.kind}, "
                        f"not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, description)
            self._instruments[name] = instrument
            return instrument

    # -- introspection -------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[Instrument]:
        """All instruments, sorted by name (a snapshot list)."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Counter values whose name starts with ``prefix``."""
        return {
            i.name: i.value
            for i in self.instruments()
            if isinstance(i, Counter) and i.name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, dict]:
        """Plain-data dump of every instrument (for JSON serialization)."""
        out: Dict[str, dict] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                out[instrument.name] = {
                    "type": "histogram",
                    "boundaries": list(instrument.boundaries),
                    "counts": list(instrument.bucket_counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            else:
                out[instrument.name] = {
                    "type": instrument.kind,
                    "value": instrument.value,
                }
        return out

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry.

        Counters and histograms add; gauges take ``other``'s reading
        (last-value-wins, matching their semantics).  Histogram bucket
        boundaries must agree.  Used to aggregate per-engine stats into a
        campaign-level registry; merging a registry into itself is a
        logic error (it would double every counter).
        """
        if other is self:
            raise ValueError("cannot merge a registry into itself")
        for instrument in other.instruments():
            if isinstance(instrument, Counter):
                self.counter(instrument.name, instrument.description).add(
                    instrument.value
                )
            elif isinstance(instrument, Gauge):
                self.gauge(instrument.name, instrument.description).set(
                    instrument.value
                )
            else:
                mine = self.histogram(
                    instrument.name,
                    instrument.boundaries,
                    instrument.description,
                )
                counts = instrument.bucket_counts
                with mine._lock:
                    for i, count in enumerate(counts):
                        mine._bucket_counts[i] += count
                    mine._sum += instrument.sum
                    mine._count += instrument.count

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold one :meth:`snapshot` dict directly into this registry.

        The incremental counterpart of ``merge(registry_from_snapshot(s))``
        without materializing the intermediate registry -- the streaming
        campaign runner and the shard merge pipeline fold thousands of
        per-cell snapshots read off disk through this path.  Same
        semantics as :meth:`merge`: counters and histograms add, gauges
        take the snapshot's reading.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).add(float(data["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(data["value"]))
            elif kind == "histogram":
                histogram = self.histogram(name, data["boundaries"])
                counts = [int(c) for c in data["counts"]]
                if len(counts) != len(histogram.boundaries) + 1:
                    raise ValueError(
                        f"histogram {name!r} snapshot has {len(counts)} "
                        f"bucket counts for {len(histogram.boundaries)} "
                        f"boundaries"
                    )
                with histogram._lock:
                    for i, count in enumerate(counts):
                        histogram._bucket_counts[i] += count
                    histogram._sum += float(data["sum"])
                    histogram._count += int(data["count"])
            else:
                raise ValueError(
                    f"unknown instrument type {kind!r} for {name!r}"
                )

    def reset(self, prefix: str = "") -> None:
        """Drop every instrument whose name starts with ``prefix``."""
        with self._lock:
            for name in [
                n for n in self._instruments if n.startswith(prefix)
            ]:
                del self._instruments[name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} instruments)"


def merge_all(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fresh registry holding the sum of ``registries``."""
    total = MetricsRegistry()
    for registry in registries:
        total.merge(registry)
    return total


def registry_from_snapshot(snapshot: Dict[str, dict]) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.snapshot` data.

    The inverse of :meth:`MetricsRegistry.snapshot`, up to instrument
    descriptions (which snapshots do not carry).  This is the bridge the
    parallel campaign runner uses to ship metrics across process
    boundaries: instruments hold locks and are not picklable, but their
    snapshots are plain data, so workers return snapshots and the parent
    rebuilds registries and folds them together with :meth:`merge`.
    """
    registry = MetricsRegistry()
    registry.merge_snapshot(snapshot)
    return registry


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_all",
    "registry_from_snapshot",
]
