"""Simulated-time series: gauges sampled against the simulation clock.

The metrics registry (:mod:`repro.obs.metrics`) is wall-clock-agnostic
but *stateless in time*: a gauge holds one reading.  Watching the online
synchronizer converge -- precision tightening, corrections settling,
``ms~`` entries dropping as observations arrive -- needs the reading *as
a function of simulated time*.  A :class:`Timeline` holds named series
of ``(sim_time, value)`` points; nothing in this module ever consults
the wall clock or an RNG, so timelines of deterministic runs are
deterministic.

:func:`replay_online` is the standard producer: it replays a recorded
execution's messages in delivery order through an
:class:`~repro.extensions.online.OnlineSynchronizer`, sampling the
convergence gauges after every observation that changes a sufficient
statistic.  It also installs the simulated clock on the active recorder
(:meth:`~repro.obs.recorder.Recorder.set_sim_time`), so the
``online.refresh`` spans it triggers carry ``sim_time`` attributes and
correlate with the series.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

# NOTE: repro.core / repro.extensions are imported lazily inside
# replay_online -- they pull in the engine, which imports this package
# (for the metrics registry), so module-level imports would be circular.
from repro.obs.recorder import get_recorder

PathLike = Union[str, Path]


class Series:
    """One named simulated-time series; points are ``(sim_time, value)``.

    Append order must be non-decreasing in time (replay and simulation
    both produce monotone time), which is what lets exports promise
    sorted points without sorting.
    """

    __slots__ = ("name", "description", "_points")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._points: List[Tuple[float, float]] = []

    def append(self, sim_time: float, value: float) -> None:
        if self._points and sim_time < self._points[-1][0]:
            raise ValueError(
                f"series {self.name!r}: sample at {sim_time} precedes "
                f"last sample at {self._points[-1][0]}"
            )
        self._points.append((float(sim_time), float(value)))

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def times(self) -> List[float]:
        return [t for t, _ in self._points]

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, {len(self)} points)"


class Timeline:
    """Thread-safe, get-or-create store of simulated-time series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[str, Series] = {}

    def series(self, name: str, description: str = "") -> Series:
        with self._lock:
            existing = self._series.get(name)
            if existing is not None:
                return existing
            created = Series(name, description)
            self._series[name] = created
            return created

    def sample(self, name: str, sim_time: float, value: float) -> None:
        """One-shot append (prefer caching the series in loops)."""
        self.series(name).append(sim_time, value)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def get(self, name: str) -> Optional[Series]:
        with self._lock:
            return self._series.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._series

    def __repr__(self) -> str:
        return f"Timeline({len(self)} series)"


# ----------------------------------------------------------------------
# JSONL export / validation
# ----------------------------------------------------------------------


def timeline_jsonl_lines(timeline: Timeline):
    """One JSON object per series (sorted by name)."""
    for name in timeline.names():
        series = timeline.get(name)
        yield json.dumps(
            {
                "record": "timeseries",
                "name": name,
                "description": series.description,
                "points": [[t, v] for t, v in series.points],
            },
            sort_keys=True,
        )


def write_timeline_jsonl(path: PathLike, timeline: Timeline) -> Path:
    """Dump the timeline as JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = list(timeline_jsonl_lines(timeline))
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def validate_timeline_file(path: PathLike) -> int:
    """Check a timeline JSONL file; returns the series count.

    Every record must carry sorted, finite ``[sim_time, value]`` points;
    raises ``ValueError`` otherwise, so CI can use it as an assertion.
    """
    series = 0
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("record") != "timeseries" or "name" not in record:
            raise ValueError(
                f"{path}:{lineno}: not a timeseries record"
            )
        previous = float("-inf")
        for point in record.get("points", ()):
            if (
                not isinstance(point, list)
                or len(point) != 2
                or not all(isinstance(x, (int, float)) for x in point)
                or not all(math.isfinite(x) for x in point)
            ):
                raise ValueError(
                    f"{path}:{lineno}: malformed point {point!r}"
                )
            if point[0] < previous:
                raise ValueError(
                    f"{path}:{lineno}: points not sorted by sim_time"
                )
            previous = point[0]
        series += 1
    if series == 0:
        raise ValueError(f"{path}: no timeseries records")
    return series


# ----------------------------------------------------------------------
# Online-convergence replay
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConvergenceSample:
    """One convergence-table row: the online state at one simulated time."""

    sim_time: float
    observations: int
    precision: float
    realized_spread: float
    correction_spread: float
    components: int


@dataclass
class ReplayResult:
    """Everything :func:`replay_online` produced."""

    online: Any
    timeline: Timeline
    samples: List[ConvergenceSample] = field(default_factory=list)
    corrupted_observations: int = 0
    inconsistent_refreshes: int = 0

    @property
    def final(self) -> Optional[ConvergenceSample]:
        return self.samples[-1] if self.samples else None


def replay_online(
    system,
    alpha,
    timeline: Optional[Timeline] = None,
    root=None,
    method: str = "karp",
    backend: Optional[str] = None,
    per_pair: bool = False,
    corrupt_at: Optional[int] = None,
    corrupt_delta: float = 0.0,
) -> ReplayResult:
    """Replay ``alpha``'s messages through an online synchronizer.

    Messages are ingested in delivery order (receive real time, uid as
    the deterministic tiebreaker -- the order the delivery system would
    hand them over).  After every observation that changes a sufficient
    statistic (and after the final one), the convergence gauges are
    sampled against the delivery's simulated time:

    * ``online.precision`` -- the guaranteed ``A_alpha^max`` so far
      (sampled once finite);
    * ``online.realized_spread`` -- ground-truth corrected-clock spread
      (the outside observer's view; always ``<=`` precision, Thm 4.4);
    * ``online.correction(p)`` -- per-processor corrections;
    * ``online.ms~(p->q)`` -- the closure entries, with ``per_pair=True``
      (off by default: n^2 series).

    ``corrupt_at``/``corrupt_delta`` deliberately corrupt one estimated
    delay (observation index ``corrupt_at`` gets ``+ corrupt_delta``) --
    the monitors' true-positive test hook.  A corruption that makes the
    views inconsistent is caught here: the refresh's
    :class:`InconsistentViewsError` is converted into an
    ``online.inconsistent`` telemetry event instead of propagating.

    The active recorder's simulated clock is set to each delivery time
    for the duration of the replay, so spans and monitor events carry
    ``sim_time`` attributes.
    """
    from repro.core.global_estimates import InconsistentViewsError
    from repro.core.precision import realized_spread
    from repro.extensions.online import OnlineSynchronizer

    online = OnlineSynchronizer(
        system, root=root, method=method, backend=backend
    )
    timeline = timeline if timeline is not None else Timeline()
    result = ReplayResult(online=online, timeline=timeline)

    records = sorted(
        alpha.message_records().values(),
        key=lambda r: (r.receive_real_time, r.message.uid),
    )
    starts = alpha.start_times()
    recorder = get_recorder()
    try:
        for index, record in enumerate(records):
            sender = record.message.sender
            receiver = record.message.receiver
            sim_time = record.receive_real_time
            recorder.set_sim_time(sim_time)
            estimated = (sim_time - starts[receiver]) - (
                record.send_real_time - starts[sender]
            )
            if corrupt_at is not None and index == corrupt_at:
                estimated += corrupt_delta
                result.corrupted_observations += 1
                recorder.emit(
                    "online.corruption",
                    edge=(sender, receiver),
                    delta=corrupt_delta,
                    sim_time=sim_time,
                )
            changed = online.observe(sender, receiver, estimated)
            if not changed and index != len(records) - 1:
                continue
            try:
                sync = online.result()
            except InconsistentViewsError as exc:
                result.inconsistent_refreshes += 1
                recorder.emit(
                    "online.inconsistent",
                    error=str(exc),
                    sim_time=sim_time,
                    observations=online.observation_count,
                )
                continue
            _sample(
                timeline,
                result,
                sim_time,
                online.observation_count,
                sync,
                realized_spread(starts, sync.corrections),
                per_pair,
            )
    finally:
        recorder.set_sim_time(None)
    return result


def _sample(
    timeline: Timeline,
    result: ReplayResult,
    sim_time: float,
    observations: int,
    sync,
    spread: float,
    per_pair: bool,
) -> None:
    corrections = sync.corrections
    correction_spread = (
        max(corrections.values()) - min(corrections.values())
        if corrections
        else 0.0
    )
    result.samples.append(
        ConvergenceSample(
            sim_time=sim_time,
            observations=observations,
            precision=sync.precision,
            realized_spread=spread,
            correction_spread=correction_spread,
            components=len(sync.components),
        )
    )
    timeline.sample("online.observations", sim_time, observations)
    if math.isfinite(sync.precision):
        timeline.sample("online.precision", sim_time, sync.precision)
    if math.isfinite(spread):
        timeline.sample("online.realized_spread", sim_time, spread)
    timeline.sample("online.correction_spread", sim_time, correction_spread)
    timeline.sample("online.components", sim_time, len(sync.components))
    for p, x in corrections.items():
        timeline.sample(f"online.correction({p!r})", sim_time, x)
    if per_pair:
        for (p, q), value in sync.ms_tilde.items():
            if p != q and math.isfinite(value):
                timeline.sample(
                    f"online.ms~({p!r}->{q!r})", sim_time, value
                )


__all__ = [
    "ConvergenceSample",
    "ReplayResult",
    "Series",
    "Timeline",
    "replay_online",
    "timeline_jsonl_lines",
    "validate_timeline_file",
    "write_timeline_jsonl",
]
