"""Invariant monitors: every run self-checks against the paper.

A monitor is a *passive observer* of synchronization results: it never
changes behaviour and never raises by default -- it records structured
:class:`Violation` events when an execution breaks one of the paper's
guarantees.  The shipped monitors each police one theorem:

===================  =================================================
monitor              guarantee checked
===================  =================================================
closure-structure    ``ms~`` is a shortest-path closure: zero diagonal,
                     ``ms~ <= mls~`` entry-wise, triangle inequality
                     (Lemma 5.3 / Theorem 5.5)
optimality           corrections achieve the claimed ``A^max`` and the
                     critical cycle witnesses its optimality
                     (Theorems 4.4 / 4.6)
precision-bound      the *realized* corrected-clock spread never
                     exceeds the guaranteed ``A_alpha^max``
                     (Theorem 4.4; needs ground truth)
mls-soundness        the true offset ``S_p - S_q`` lies inside the
                     admissible interval ``[-ms~(q,p), ms~(p,q)]``, and
                     -- on complete views -- ``mls~ = mls + S_p - S_q``
                     exactly (Lemma 6.2 / Corollaries 6.3 and 6.6;
                     needs ground truth)
consistency          a streaming refresh hit an inconsistent closure
                     (negative cycle), which honest observations can
                     never produce (Theorem 5.5)
===================  =================================================

Attach a :class:`MonitorSuite` to the active recorder
(``recorder.add_observer(suite)``) and every ``pipeline.result`` emitted
by :class:`~repro.core.synchronizer.ClockSynchronizer` -- including the
refreshes the online synchronizer triggers -- is checked as it happens.
Ground-truth monitors stay silent until the suite is given the
execution (``suite.execution = alpha``); Claim 3.1 separation is
preserved because monitors run in the outside observer, never inside a
correction function.
"""

from __future__ import annotations

import dataclasses
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro._types import INF
from repro.core.precision import realized_spread, rho_bar
from repro.obs.recorder import get_recorder

#: Default numerical slack, scaled by the magnitude of the claim.
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One structured invariant-violation event."""

    monitor: str
    reference: str
    message: str
    sim_time: Optional[float] = None
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean rendering (context values coerced via repr)."""
        return {
            "record": "violation",
            "monitor": self.monitor,
            "reference": self.reference,
            "message": self.message,
            "sim_time": self.sim_time,
            "context": {
                key: value
                if isinstance(value, (bool, int, float, str)) or value is None
                else repr(value)
                for key, value in self.context.items()
            },
        }


class MonitorViolationError(AssertionError):
    """Raised by a strict suite; carries the offending violations."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines.extend(
            f"  [{v.monitor}] {v.message} ({v.reference})"
            for v in self.violations[:5]
        )
        if len(self.violations) > 5:
            lines.append(f"  ... and {len(self.violations) - 5} more")
        super().__init__("\n".join(lines))


def _scale(value: float) -> float:
    return max(1.0, abs(value)) if math.isfinite(value) else 1.0


class Monitor(ABC):
    """One theorem's runtime check.

    ``execution`` is the ground truth (``None`` when only views-side
    data is available); ``complete`` marks results computed from an
    execution's *complete* views, enabling exact-identity checks that do
    not hold on prefixes of a message stream.
    """

    name: str = "monitor"
    reference: str = ""

    def __init__(self, tol: float = DEFAULT_TOL) -> None:
        self.tol = tol

    @abstractmethod
    def check(
        self, system, result, execution=None, complete: bool = False
    ) -> List[Violation]:
        """Return violations (empty list = the guarantee held)."""

    def violation(self, message: str, **context: Any) -> Violation:
        return Violation(
            monitor=self.name,
            reference=self.reference,
            message=message,
            context=context,
        )


class ClosureStructureMonitor(Monitor):
    """``ms~`` must be the shortest-path closure of ``mls~``."""

    name = "closure-structure"
    reference = "Lemma 5.3 / Theorem 5.5"

    def check(
        self, system, result, execution=None, complete: bool = False
    ) -> List[Violation]:
        out: List[Violation] = []
        ms = result.ms_tilde
        processors = sorted(
            {p for p, _ in ms} | {q for _, q in ms}, key=repr
        )
        for p in processors:
            diagonal = ms.get((p, p), 0.0)
            if abs(diagonal) > self.tol:
                out.append(
                    self.violation(
                        f"ms~({p!r},{p!r}) = {diagonal:g}, expected 0",
                        processor=p,
                        value=diagonal,
                    )
                )
        for edge, direct in result.mls_tilde.items():
            closed = ms.get(edge, INF)
            if closed > direct + self.tol * _scale(direct):
                out.append(
                    self.violation(
                        f"ms~{edge!r} = {closed:g} exceeds direct "
                        f"mls~ = {direct:g}",
                        edge=edge,
                        ms=closed,
                        mls=direct,
                    )
                )
        for p in processors:
            for q in processors:
                pq = ms.get((p, q), INF)
                if pq == INF:
                    continue
                for r in processors:
                    qr = ms.get((q, r), INF)
                    if qr == INF:
                        continue
                    pr = ms.get((p, r), INF)
                    bound = pq + qr
                    if pr > bound + self.tol * _scale(bound):
                        out.append(
                            self.violation(
                                f"triangle broken: ms~({p!r},{r!r}) = "
                                f"{pr:g} > {pq:g} + {qr:g}",
                                p=p,
                                q=q,
                                r=r,
                                direct=pr,
                                via=bound,
                            )
                        )
        return out


class OptimalityMonitor(Monitor):
    """Corrections must achieve -- and the cycle witness certify -- ``A^max``."""

    name = "optimality"
    reference = "Theorems 4.4 / 4.6"

    def check(
        self, system, result, execution=None, complete: bool = False
    ) -> List[Violation]:
        out: List[Violation] = []
        for component in result.components:
            procs = component.processors
            corrections = {p: result.corrections[p] for p in procs}
            ms_local = {
                (p, q): result.ms_tilde[(p, q)] for p in procs for q in procs
            }
            achieved = rho_bar(ms_local, corrections)
            tol = self.tol * _scale(component.precision)
            if achieved > component.precision + tol:
                out.append(
                    self.violation(
                        f"corrections achieve rho_bar = {achieved:g}, "
                        f"claimed A^max = {component.precision:g} on "
                        f"component {procs!r}",
                        component=procs,
                        achieved=achieved,
                        claimed=component.precision,
                    )
                )
            if len(procs) <= 1:
                continue
            cycle = component.critical_cycle
            if cycle is None:
                out.append(
                    self.violation(
                        f"component {procs!r} has no critical-cycle witness",
                        component=procs,
                    )
                )
                continue
            k = len(cycle)
            mean = (
                sum(
                    result.ms_tilde[(cycle[i], cycle[(i + 1) % k])]
                    for i in range(k)
                )
                / k
            )
            if abs(mean - component.precision) > tol:
                out.append(
                    self.violation(
                        f"critical cycle mean {mean:g} != claimed "
                        f"A^max {component.precision:g}",
                        cycle=cycle,
                        mean=mean,
                        claimed=component.precision,
                    )
                )
        return out


class PrecisionBoundMonitor(Monitor):
    """Ground truth: realized spread never exceeds the guarantee."""

    name = "precision-bound"
    reference = "Theorem 4.4 (rho <= A_alpha^max)"

    def check(
        self, system, result, execution=None, complete: bool = False
    ) -> List[Violation]:
        if execution is None:
            return []
        out: List[Violation] = []
        starts = execution.start_times()
        for component in result.components:
            if not math.isfinite(component.precision):
                continue
            procs = [p for p in component.processors if p in starts]
            if len(procs) <= 1:
                continue
            spread = realized_spread(
                {p: starts[p] for p in procs},
                {p: result.corrections[p] for p in procs},
            )
            tol = self.tol * _scale(component.precision)
            if spread > component.precision + tol:
                out.append(
                    self.violation(
                        f"realized spread {spread:g} exceeds guaranteed "
                        f"A^max {component.precision:g} on component "
                        f"{component.processors!r}",
                        component=component.processors,
                        spread=spread,
                        guaranteed=component.precision,
                    )
                )
        return out


class MlsSoundnessMonitor(Monitor):
    """Ground truth: estimates admit the true offsets (Lemma 6.2 side)."""

    name = "mls-soundness"
    reference = "Lemma 6.2 / Corollary 6.3"

    def check(
        self, system, result, execution=None, complete: bool = False
    ) -> List[Violation]:
        if execution is None:
            return []
        out: List[Violation] = []
        starts = execution.start_times()
        # Soundness: the true offset lies in the admissible interval of
        # every pair -- valid for any honest subset of observations.
        for (p, q), bound in result.ms_tilde.items():
            if p == q or not math.isfinite(bound):
                continue
            if p not in starts or q not in starts:
                continue
            offset = starts[p] - starts[q]
            if offset > bound + self.tol * _scale(bound):
                out.append(
                    self.violation(
                        f"true offset S_{p!r} - S_{q!r} = {offset:g} "
                        f"outside admissible bound ms~ = {bound:g}",
                        edge=(p, q),
                        offset=offset,
                        bound=bound,
                    )
                )
        if not complete:
            return out
        # Exact identity on complete views: mls~ = mls + (S_p - S_q)
        # (Corollaries 6.3 / 6.6).  Only meaningful when the result was
        # computed from every message of the execution.
        true_mls = system.mls_from_delays(system.true_delays(execution))
        for edge, estimate in result.mls_tilde.items():
            p, q = edge
            if p not in starts or q not in starts:
                continue
            truth = true_mls.get(edge, INF)
            if not math.isfinite(truth) or not math.isfinite(estimate):
                if math.isfinite(truth) != math.isfinite(estimate):
                    out.append(
                        self.violation(
                            f"mls~{edge!r} finiteness mismatch: estimate "
                            f"{estimate:g}, truth {truth:g}",
                            edge=edge,
                            estimate=estimate,
                            expected=truth,
                        )
                    )
                continue
            expected = truth + starts[p] - starts[q]
            if abs(estimate - expected) > self.tol * _scale(expected):
                out.append(
                    self.violation(
                        f"mls~{edge!r} = {estimate:g} != mls + S_p - S_q "
                        f"= {expected:g}",
                        edge=edge,
                        estimate=estimate,
                        expected=expected,
                    )
                )
        return out


def default_monitors(tol: float = DEFAULT_TOL) -> List[Monitor]:
    """The full shipped monitor set, in check order."""
    return [
        ClosureStructureMonitor(tol),
        OptimalityMonitor(tol),
        PrecisionBoundMonitor(tol),
        MlsSoundnessMonitor(tol),
    ]


class MonitorSuite:
    """Runs monitors on every synchronization result it observes.

    Either call :meth:`check` directly, or attach the suite to the
    active recorder -- it subscribes to the ``pipeline.result`` events
    the batch pipeline emits (the online synchronizer's refreshes go
    through the same path) and to the replayer's ``online.inconsistent``
    events.  Violations accumulate on the suite (and bump the
    ``monitor.violations`` counter); with ``strict=True`` the first
    violating check raises :class:`MonitorViolationError` instead.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[Monitor]] = None,
        tol: float = DEFAULT_TOL,
        strict: bool = False,
        execution=None,
    ) -> None:
        self.monitors = (
            list(monitors) if monitors is not None else default_monitors(tol)
        )
        self.strict = strict
        self.execution = execution
        self.violations: List[Violation] = []
        self.checks = 0

    # -- observer interface --------------------------------------------

    def on_telemetry(self, kind: str, data: Mapping[str, Any]) -> None:
        if kind == "pipeline.result":
            self.check(
                data["system"],
                data["result"],
                sim_time=data.get("sim_time"),
            )
        elif kind == "online.inconsistent":
            self._record(
                [
                    Violation(
                        monitor="consistency",
                        reference="Theorem 5.5 (negative closure cycle)",
                        message=(
                            "streaming refresh found inconsistent views: "
                            f"{data.get('error', 'negative cycle')}"
                        ),
                        sim_time=data.get("sim_time"),
                        context={
                            "observations": data.get("observations"),
                        },
                    )
                ]
            )

    # -- checking ------------------------------------------------------

    def check(
        self,
        system,
        result,
        execution=None,
        complete: bool = False,
        sim_time: Optional[float] = None,
    ) -> List[Violation]:
        """Run every monitor on one result; returns the new violations."""
        execution = execution if execution is not None else self.execution
        if sim_time is None:
            sim_time = get_recorder().sim_time
        found: List[Violation] = []
        for monitor in self.monitors:
            found.extend(
                monitor.check(
                    system, result, execution=execution, complete=complete
                )
            )
        if sim_time is not None:
            found = [
                dataclasses.replace(v, sim_time=sim_time)
                if v.sim_time is None
                else v
                for v in found
            ]
        self.checks += 1
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("monitor.checks")
        self._record(found)
        return found

    def check_final(self, system, result, execution) -> List[Violation]:
        """Check a result computed from an execution's *complete* views.

        Enables the exact ``mls~ = mls + S_p - S_q`` identity, which
        does not hold for prefixes of a stream.
        """
        return self.check(system, result, execution=execution, complete=True)

    def _record(self, violations: List[Violation]) -> None:
        if not violations:
            return
        self.violations.extend(violations)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("monitor.violations", len(violations))
        if self.strict:
            raise MonitorViolationError(violations)

    # -- reporting -----------------------------------------------------

    @property
    def ok(self) -> bool:
        """Whether every check so far passed."""
        return not self.violations

    def by_monitor(self) -> Dict[str, List[Violation]]:
        """Violations grouped by monitor name."""
        grouped: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.monitor, []).append(violation)
        return grouped

    def summary_table(self):
        """Per-monitor violation summary as a printable table."""
        from repro.analysis.reporting import Table

        table = Table(
            title=(
                f"invariant monitors: {self.checks} checks, "
                f"{len(self.violations)} violations"
            ),
            headers=["monitor", "checks", "violations", "example"],
        )
        grouped = self.by_monitor()
        references = {m.name: m.reference for m in self.monitors}
        # Event-driven pseudo-monitors (e.g. "consistency") only appear
        # when they fired; list them after the configured monitors.
        extras = {
            name: hits[0].reference
            for name, hits in grouped.items()
            if name not in references
        }
        for name, reference in {**references, **extras}.items():
            hits = grouped.get(name, [])
            table.add_row(
                f"{name} [{reference}]",
                self.checks if name in references else "-",
                len(hits),
                hits[0].message if hits else "-",
            )
        return table

    def __repr__(self) -> str:
        return (
            f"MonitorSuite(checks={self.checks}, "
            f"violations={len(self.violations)})"
        )


__all__ = [
    "DEFAULT_TOL",
    "ClosureStructureMonitor",
    "MlsSoundnessMonitor",
    "Monitor",
    "MonitorSuite",
    "MonitorViolationError",
    "OptimalityMonitor",
    "PrecisionBoundMonitor",
    "Violation",
    "default_monitors",
]
