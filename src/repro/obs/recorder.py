"""The recorder facade and the module-level no-op default.

Instrumented code never imports the tracer or the registry directly; it
asks for the process-wide recorder::

    from repro.obs.recorder import get_recorder

    rec = get_recorder()            # once per run/call, not per event
    with rec.span("sim.run", seed=7):
        ...
        rec.count("sim.messages.delivered")

By default the recorder is the shared :data:`NOOP` instance: ``enabled``
is ``False``, ``span`` returns a reusable null context manager and every
metric method is a ``pass`` -- the disabled path costs one attribute
lookup plus an empty call, and hot loops can skip even that by checking
``rec.enabled`` once.  :func:`set_recorder`/:func:`recording` install a
real :class:`Recorder` (tracer + registry) for the duration of a
profiled run.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, Tracer


class _NullSpan:
    """Shared do-nothing span/context-manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


class _NullInstrument:
    """Accepts every instrument method and does nothing.

    Returned by the no-op recorder's ``counter``/``gauge``/``histogram``
    so call sites can cache instruments unconditionally.
    """

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def add(self, amount: float = 1.0) -> None:
        pass

    inc = add

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NoopRecorder:
    """Observability disabled: every operation is free (and recorded nowhere)."""

    enabled = False
    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    observers: Sequence[Any] = ()
    sim_time: Optional[float] = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_observer(self, observer: Any) -> None:
        raise RuntimeError(
            "cannot attach a telemetry observer to the no-op recorder; "
            "install a Recorder first (see repro.obs.recording)"
        )

    def emit(self, kind: str, **data: Any) -> None:
        pass

    def set_sim_time(self, value: Optional[float]) -> None:
        pass

    def counter(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        description: str = "",
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def __repr__(self) -> str:
        return "NoopRecorder()"


class Recorder:
    """Observability enabled: a tracer plus a metrics registry.

    Beyond spans and metrics the recorder carries the *protocol telemetry*
    hooks added for message causality tracing and invariant monitoring:

    * :attr:`observers` -- passive subscribers (e.g.
      :class:`~repro.obs.flow.FlowLog`,
      :class:`~repro.obs.monitor.MonitorSuite`) that receive structured
      events via :meth:`emit`;
    * :attr:`sim_time` -- the current *simulated* time, plumbed from the
      scheduler while a simulation (or an execution replay) is running,
      and attached automatically to every span opened in that window so
      wall-clock spans can be correlated with simulated-time series.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.observers: List[Any] = []
        self.sim_time: Optional[float] = None

    def span(self, name: str, **attributes: Any):
        """Context manager timing a nested region (see :class:`Tracer`).

        While a simulated clock is installed (:meth:`set_sim_time`), the
        span additionally carries a ``sim_time`` attribute.
        """
        if self.sim_time is not None and "sim_time" not in attributes:
            attributes["sim_time"] = self.sim_time
        return self.tracer.span(name, **attributes)

    def add_observer(self, observer: Any) -> None:
        """Subscribe ``observer`` to :meth:`emit` events.

        Observers implement ``on_telemetry(kind, data)``; they must never
        raise on unknown kinds (new emitters may appear before observers
        learn about them).
        """
        if not callable(getattr(observer, "on_telemetry", None)):
            raise TypeError(
                f"observer {observer!r} has no on_telemetry(kind, data) method"
            )
        self.observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        """Unsubscribe a previously attached observer (missing is a no-op)."""
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    def emit(self, kind: str, **data: Any) -> None:
        """Fan one structured telemetry event out to every observer."""
        for observer in self.observers:
            observer.on_telemetry(kind, data)

    def set_sim_time(self, value: Optional[float]) -> None:
        """Install (or clear, with ``None``) the current simulated time."""
        self.sim_time = value

    def current_span(self) -> Optional[Span]:
        return self.tracer.current()

    def counter(self, name: str, description: str = "") -> Counter:
        return self.registry.counter(name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self.registry.gauge(name, description)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        description: str = "",
    ) -> Histogram:
        return self.registry.histogram(name, boundaries, description)

    def count(self, name: str, amount: float = 1.0) -> None:
        """One-shot counter bump (prefer caching the instrument in loops)."""
        self.registry.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def __repr__(self) -> str:
        return (
            f"Recorder(metrics={len(self.registry)}, "
            f"spans={len(self.tracer)})"
        )


#: The shared disabled recorder (also what :func:`set_recorder` restores).
NOOP = NoopRecorder()

#: Context-local recorder slot.  A ``ContextVar`` instead of a module
#: global so concurrent cells (asyncio tasks, ``asyncio.to_thread``
#: workers -- both copy the current context) each see their *own*
#: recorder under :func:`recording`, while single-threaded callers keep
#: the exact process-wide semantics they always had (``fork`` pool
#: workers inherit the forking thread's context).
_recorder_var: "contextvars.ContextVar" = contextvars.ContextVar(
    "repro_recorder", default=NOOP
)


def get_recorder():
    """The ambient recorder (the no-op singleton unless enabled)."""
    return _recorder_var.get()


def set_recorder(recorder=None):
    """Install ``recorder`` in the current context (``None`` restores the no-op).

    Returns the previously installed recorder so callers can restore it.
    """
    previous = _recorder_var.get()
    _recorder_var.set(recorder if recorder is not None else NOOP)
    return previous


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Enable observability for a ``with`` block; restores on exit."""
    active = recorder if recorder is not None else Recorder()
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)


__all__ = [
    "NOOP",
    "NoopRecorder",
    "Recorder",
    "get_recorder",
    "recording",
    "set_recorder",
]
