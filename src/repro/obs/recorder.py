"""The recorder facade and the module-level no-op default.

Instrumented code never imports the tracer or the registry directly; it
asks for the process-wide recorder::

    from repro.obs.recorder import get_recorder

    rec = get_recorder()            # once per run/call, not per event
    with rec.span("sim.run", seed=7):
        ...
        rec.count("sim.messages.delivered")

By default the recorder is the shared :data:`NOOP` instance: ``enabled``
is ``False``, ``span`` returns a reusable null context manager and every
metric method is a ``pass`` -- the disabled path costs one attribute
lookup plus an empty call, and hot loops can skip even that by checking
``rec.enabled`` once.  :func:`set_recorder`/:func:`recording` install a
real :class:`Recorder` (tracer + registry) for the duration of a
profiled run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, Tracer


class _NullSpan:
    """Shared do-nothing span/context-manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


class _NullInstrument:
    """Accepts every instrument method and does nothing.

    Returned by the no-op recorder's ``counter``/``gauge``/``histogram``
    so call sites can cache instruments unconditionally.
    """

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def add(self, amount: float = 1.0) -> None:
        pass

    inc = add

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NoopRecorder:
    """Observability disabled: every operation is free (and recorded nowhere)."""

    enabled = False
    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        description: str = "",
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def __repr__(self) -> str:
        return "NoopRecorder()"


class Recorder:
    """Observability enabled: a tracer plus a metrics registry."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    def span(self, name: str, **attributes: Any):
        """Context manager timing a nested region (see :class:`Tracer`)."""
        return self.tracer.span(name, **attributes)

    def current_span(self) -> Optional[Span]:
        return self.tracer.current()

    def counter(self, name: str, description: str = "") -> Counter:
        return self.registry.counter(name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self.registry.gauge(name, description)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        description: str = "",
    ) -> Histogram:
        return self.registry.histogram(name, boundaries, description)

    def count(self, name: str, amount: float = 1.0) -> None:
        """One-shot counter bump (prefer caching the instrument in loops)."""
        self.registry.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def __repr__(self) -> str:
        return (
            f"Recorder(metrics={len(self.registry)}, "
            f"spans={len(self.tracer)})"
        )


#: The shared disabled recorder (also what :func:`set_recorder` restores).
NOOP = NoopRecorder()

_recorder = NOOP


def get_recorder():
    """The process-wide recorder (the no-op singleton unless enabled)."""
    return _recorder


def set_recorder(recorder=None):
    """Install ``recorder`` globally (``None`` restores the no-op).

    Returns the previously installed recorder so callers can restore it.
    """
    global _recorder
    previous = _recorder
    _recorder = recorder if recorder is not None else NOOP
    return previous


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Enable observability for a ``with`` block; restores on exit."""
    active = recorder if recorder is not None else Recorder()
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)


__all__ = [
    "NOOP",
    "NoopRecorder",
    "Recorder",
    "get_recorder",
    "recording",
    "set_recorder",
]
