"""Span-based tracer: nested timed regions with attributes.

A *span* is one timed region of the run -- a simulation, a pipeline
stage, an engine kernel.  Spans nest: the tracer tracks the current span
in a :class:`contextvars.ContextVar`, so nesting follows the call stack
and survives ``asyncio`` task switches, while each thread (worker
engines, future parallel backends) gets its own independent stack.

Timing uses ``time.perf_counter`` relative to the tracer's epoch; span
ids come from a monotone counter.  Neither wall-clock time nor RNG is
consulted, so traces of a deterministic run are deterministic up to
durations.

Finished spans accumulate in the tracer (behind a lock) until exported
by :mod:`repro.obs.export` or summarized by :mod:`repro.obs.report`.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One finished (or in-flight) timed region.

    ``start``/``end`` are seconds since the owning tracer's epoch;
    ``end`` is ``None`` while the region is still open.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    thread_id: int
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value pair (values should be JSON-safe)."""
        self.attributes[key] = value

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration:.6f}s)"
        )


class Tracer:
    """Collects nested spans; thread-safe, contextvar-propagated."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_obs_current_span", default=None)
        )

    @property
    def epoch(self) -> float:
        """``perf_counter`` reading all span times are relative to."""
        return self._epoch

    def current(self) -> Optional[Span]:
        """The innermost open span of this context, if any."""
        return self._current.get()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a nested timed region; closes (and records) on exit.

        The span is recorded even when the body raises, with an
        ``error`` attribute naming the exception type, so traces of
        failing runs show where they died.
        """
        parent = self._current.get()
        entry = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=time.perf_counter() - self._epoch,
            thread_id=threading.get_ident(),
            attributes=dict(attributes),
        )
        token = self._current.set(entry)
        try:
            yield entry
        except BaseException as exc:
            entry.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._current.reset(token)
            entry.end = time.perf_counter() - self._epoch
            with self._lock:
                self._finished.append(entry)

    def finished(self) -> List[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop all finished spans (open ones keep recording)."""
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def __repr__(self) -> str:
        return f"Tracer({len(self)} finished spans)"


__all__ = ["Span", "Tracer"]
