"""Human-readable profile reports from recorded spans and metrics.

Backs ``repro-clocksync profile``: aggregates the flat span list into a
call tree keyed by span-name *path* (so ten ``engine.shifts`` spans
under ``pipeline.sync`` fold into one line with ``calls=10``), renders
it indented, and tabulates the top stages by self time -- the first
place to look before optimizing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import Span

# NOTE: repro.analysis.reporting.Table is imported lazily inside the
# table builders -- repro.analysis pulls in the core pipeline, which
# pulls in the engine, which imports this package (for EngineStats), so
# a module-level import here would be circular.


@dataclass
class SpanNode:
    """Aggregate of every span sharing one root-to-leaf name path."""

    path: Tuple[str, ...]
    calls: int = 0
    total: float = 0.0
    child_time: float = 0.0
    children: Dict[str, "SpanNode"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else "<root>"

    @property
    def self_time(self) -> float:
        """Time spent in this node excluding its aggregated children."""
        return max(self.total - self.child_time, 0.0)


def aggregate_spans(spans: Sequence[Span]) -> SpanNode:
    """Fold spans into a path-keyed tree; returns the synthetic root."""
    by_id = {span.span_id: span for span in spans}
    paths: Dict[int, Tuple[str, ...]] = {}

    def path_of(span: Span) -> Tuple[str, ...]:
        cached = paths.get(span.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(span.parent_id) if span.parent_id else None
        prefix = path_of(parent) if parent is not None else ()
        result = prefix + (span.name,)
        paths[span.span_id] = result
        return result

    root = SpanNode(path=())
    for span in spans:
        node = root
        for name in path_of(span):
            node = node.children.setdefault(
                name, SpanNode(path=node.path + (name,))
            )
        node.calls += 1
        node.total += span.duration
        parent_span = by_id.get(span.parent_id) if span.parent_id else None
        if parent_span is not None:
            parent_node = root
            for name in path_of(parent_span):
                parent_node = parent_node.children[name]
            parent_node.child_time += span.duration
    # Top-level totals roll up into the synthetic root for percentages.
    root.total = sum(c.total for c in root.children.values())
    return root


def format_span_tree(
    spans: Sequence[Span], min_share: float = 0.0
) -> str:
    """Indented call-tree rendering, siblings sorted by total time.

    ``min_share`` prunes nodes below that fraction of the overall total
    (0.01 = hide anything under 1%).
    """
    root = aggregate_spans(spans)
    if not root.children:
        return "(no spans recorded)"
    overall = root.total or 1.0
    lines: List[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        share = node.total / overall
        if node.path and share < min_share:
            return
        if node.path:
            lines.append(
                f"{'  ' * (depth - 1)}{node.name:<{max(40 - 2 * (depth - 1), 8)}}"
                f" calls={node.calls:<6d} total={node.total * 1e3:9.3f} ms"
                f"  self={node.self_time * 1e3:9.3f} ms"
                f"  ({share:6.1%})"
            )
        for child in sorted(
            node.children.values(), key=lambda c: c.total, reverse=True
        ):
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def _flatten(root: SpanNode) -> List[SpanNode]:
    out: List[SpanNode] = []
    stack = list(root.children.values())
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(node.children.values())
    return out


def top_stages_table(spans: Sequence[Span], limit: int = 10):
    """The ``limit`` hottest stages by self time, as a printable table."""
    from repro.analysis.reporting import Table

    root = aggregate_spans(spans)
    overall = root.total or 1.0
    nodes = sorted(_flatten(root), key=lambda n: n.self_time, reverse=True)
    table = Table(
        title=f"top stages by self time (of {overall:.4f}s traced)",
        headers=["stage", "calls", "total (ms)", "self (ms)", "share"],
    )
    for node in nodes[:limit]:
        table.add_row(
            " > ".join(node.path),
            node.calls,
            node.total * 1e3,
            node.self_time * 1e3,
            f"{node.self_time / overall:.1%}",
        )
    table.add_note(
        "share = self time / total traced time; nested spans are folded "
        "by name path"
    )
    return table


def quantile(histogram, q: float) -> float:
    """Bucket-interpolated quantile estimate of a fixed-bucket histogram.

    Prometheus-style ``histogram_quantile``: find the bucket holding the
    ``q``-th observation and interpolate linearly inside it (the first
    bucket's lower edge is taken as 0, matching non-negative data).
    Observations past the last finite boundary are clamped to it --
    consistent with Prometheus, the estimate cannot exceed the largest
    finite bucket edge.  Returns ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = histogram.count
    if total == 0:
        return float("nan")
    target = q * total
    counts = histogram.bucket_counts
    boundaries = histogram.boundaries
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            if index >= len(boundaries):
                return float(boundaries[-1])
            upper = boundaries[index]
            lower = boundaries[index - 1] if index > 0 else 0.0
            if bucket_count == 0:
                return float(upper)
            return lower + (upper - lower) * (target - previous) / bucket_count
    return float(boundaries[-1])  # pragma: no cover - cumulative == count


def histogram_quantiles_table(
    registry,
    names: Optional[Sequence[str]] = None,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
):
    """p50/p95/p99 (by default) of selected histograms, as a table."""
    from repro.analysis.reporting import Table

    table = Table(
        title="histogram quantiles (bucket-interpolated)",
        headers=["histogram", "count"]
        + [f"p{q * 100:g}" for q in quantiles],
    )
    for instrument in registry.instruments():
        if instrument.kind != "histogram":
            continue
        if names is not None and instrument.name not in names:
            continue
        table.add_row(
            instrument.name,
            instrument.count,
            *(f"{quantile(instrument, q):.6g}" for q in quantiles),
        )
    table.add_note(
        "estimates interpolate within fixed buckets; values beyond the "
        "last finite boundary clamp to it"
    )
    return table


def key_metrics_table(registry, prefixes: Optional[Sequence[str]] = None):
    """Counters and gauges (optionally filtered by prefix) as a table."""
    from repro.analysis.reporting import Table

    table = Table(
        title="recorded metrics",
        headers=["metric", "kind", "value"],
    )
    for instrument in registry.instruments():
        if prefixes and not any(
            instrument.name.startswith(p) for p in prefixes
        ):
            continue
        if instrument.kind == "histogram":
            value = f"count={instrument.count} sum={instrument.sum:.6g}"
        else:
            value = instrument.value
        table.add_row(instrument.name, instrument.kind, value)
    return table


__all__ = [
    "SpanNode",
    "aggregate_spans",
    "format_span_tree",
    "histogram_quantiles_table",
    "key_metrics_table",
    "quantile",
    "top_stages_table",
]
