"""Anchoring corrected clocks to real time (paper, introduction).

The paper synchronizes clocks *to each other*; it notes that "it is easy
to adapt our results to obtain [closeness to real time] if a perfect real
time clock is available".  This module is that adaptation: given one
anchor processor that knows its own offset from real time (``S_anchor``),
shift every correction by the same constant so the anchor's corrected
clock reads real time exactly.  Uniform translation changes nothing about
mutual precision (``rho_bar`` is translation invariant), and every other
processor's real-time error is bounded by its pairwise precision to the
anchor.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro._types import ProcessorId, Time
from repro.core.synchronizer import SyncResult


def anchor_to_real_time(
    result: SyncResult,
    anchor: ProcessorId,
    anchor_start_time: Time,
) -> Dict[ProcessorId, Time]:
    """Corrections making the anchor's corrected clock equal real time.

    At real time ``t`` processor ``p``'s corrected clock reads
    ``t - S_p + x_p``; adding ``c = S_anchor - x_anchor`` to every
    correction makes the anchor's read exactly ``t``.
    """
    if anchor not in result.corrections:
        raise KeyError(f"anchor {anchor!r} not in the synchronized set")
    c = anchor_start_time - result.corrections[anchor]
    return {p: x + c for p, x in result.corrections.items()}


def real_time_error_bounds(
    result: SyncResult, anchor: ProcessorId
) -> Dict[ProcessorId, Time]:
    """Guaranteed real-time error of each processor after anchoring.

    The anchor reads real time exactly; every other processor is within
    its pairwise precision bound of the anchor.  (Bounds are ``inf``
    across synchronization components.)
    """
    return {
        p: 0.0 if p == anchor else result.pair_precision(anchor, p)
        for p in result.corrections
    }


def realized_real_time_errors(
    anchored_corrections: Mapping[ProcessorId, Time],
    start_times: Mapping[ProcessorId, Time],
) -> Dict[ProcessorId, Time]:
    """Ground-truth real-time error per processor (evaluation only).

    ``|corrected reading - t| = |x_p - S_p|`` for all ``t``.
    """
    return {
        p: abs(anchored_corrections[p] - start_times[p])
        for p in anchored_corrections
    }


__all__ = [
    "anchor_to_real_time",
    "real_time_error_bounds",
    "realized_real_time_errors",
]
