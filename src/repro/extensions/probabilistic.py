"""Probabilistic delay knowledge (paper, Section 7, second open problem).

    "Another important open question, of considerable practical
    significance, is to achieve optimal clock synchronization in systems
    where the probabilistic properties of the message delay distribution
    are known.  This model is realistic and is at the heart of most
    practical algorithms for clock synchronization."

This module realizes the reduction the paper's framework makes natural:
distributional knowledge compiles into *per-execution delay bounds that
hold with chosen confidence*, and then the deterministic optimal pipeline
runs unchanged.

Given per-link delay distributions and a failure budget ``delta``:

1. split the budget over the ``m`` delivered messages (union bound),
   giving each message ``epsilon = delta / m``;
2. each link gets bounds ``[Q(eps/2), Q(1 - eps/2)]`` from its
   distribution's quantile function -- note this manufactures a *finite
   upper bound* even for unbounded distributions such as the exponential;
3. run the deterministic pipeline under those bounds.

If every actual delay falls inside its interval -- probability at least
``1 - delta`` -- the execution is admissible for the derived bounds, so
the returned precision enjoys the full Theorem 4.6 guarantee.  The result
object records the confidence and exposes a ground-truth coverage check
for the evaluation harness.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro._types import ProcessorId, Time
from repro.core.estimates import estimated_delays
from repro.core.synchronizer import ClockSynchronizer, SyncResult
from repro.delays.bounds import BoundedDelay
from repro.delays.system import System
from repro.graphs.topology import Topology
from repro.model.execution import Execution
from repro.model.views import View


class DelayDistribution(ABC):
    """Known probabilistic behaviour of one link direction's delays."""

    @abstractmethod
    def quantile(self, p: float) -> Time:
        """The p-quantile of the delay (``0 <= p <= 1``)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> Time:
        """Draw one delay (used by simulations of the matching reality)."""

    def interval(self, epsilon: float) -> Tuple[Time, Time]:
        """A symmetric-in-probability interval of coverage ``1 - epsilon``."""
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        low = max(0.0, self.quantile(epsilon / 2.0))
        high = self.quantile(1.0 - epsilon / 2.0)
        return (low, high)


@dataclass(frozen=True)
class ExponentialDelay(DelayDistribution):
    """``minimum + Exp(mean_extra)`` -- unbounded support, finite quantiles."""

    minimum: Time
    mean_extra: Time

    def __post_init__(self) -> None:
        if self.minimum < 0 or self.mean_extra <= 0:
            raise ValueError("need minimum >= 0 and mean_extra > 0")

    def quantile(self, p: float) -> Time:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        return self.minimum - self.mean_extra * math.log(1.0 - p)

    def sample(self, rng: random.Random) -> Time:
        return self.minimum + rng.expovariate(1.0 / self.mean_extra)


@dataclass(frozen=True)
class UniformDelayDistribution(DelayDistribution):
    """Uniform on ``[low, high]``."""

    low: Time
    high: Time

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")

    def quantile(self, p: float) -> Time:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return self.low + p * (self.high - self.low)

    def sample(self, rng: random.Random) -> Time:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class EmpiricalDelay(DelayDistribution):
    """Quantiles from historical measurements (the practical case).

    Uses the inclusive linear-interpolation empirical quantile.  Sampling
    bootstraps from the measurements.
    """

    samples: Tuple[Time, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ValueError("need at least two historical samples")
        if any(s < 0 for s in self.samples):
            raise ValueError("delays must be non-negative")
        object.__setattr__(self, "samples", tuple(sorted(self.samples)))

    def quantile(self, p: float) -> Time:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        position = p * (len(self.samples) - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, len(self.samples) - 1)
        fraction = position - lower
        return self.samples[lower] * (1 - fraction) + self.samples[upper] * fraction

    def sample(self, rng: random.Random) -> Time:
        return rng.choice(self.samples)


@dataclass(frozen=True)
class ProbabilisticResult:
    """A synchronization result valid with probability >= ``confidence``."""

    sync: SyncResult
    confidence: float
    per_message_epsilon: float
    derived_system: System

    @property
    def precision(self) -> Time:
        """The claimed precision (valid with probability >= confidence)."""
        return self.sync.precision

    @property
    def corrections(self) -> Dict[ProcessorId, Time]:
        """The corrections (same validity caveat as ``precision``)."""
        return self.sync.corrections

    def bounds_held(self, alpha: Execution) -> bool:
        """Ground-truth coverage check (evaluation harness only).

        ``True`` iff every actual delay fell inside its derived interval,
        i.e. the deterministic guarantee applies to this run.
        """
        return self.derived_system.is_admissible(alpha)


def derive_bounded_system(
    topology: Topology,
    distributions: Mapping[Tuple[ProcessorId, ProcessorId], DelayDistribution],
    epsilon_per_message: float,
) -> System:
    """Compile distributional knowledge into a ``BoundedDelay`` system.

    ``distributions`` is keyed by canonical link and applies to both
    directions (pass per-direction behaviour by wrapping the link's two
    distributions in a mixture upstream if needed).
    """
    assumptions = {}
    for link in topology.links:
        if link not in distributions:
            raise KeyError(f"no delay distribution for link {link!r}")
        low, high = distributions[link].interval(epsilon_per_message)
        assumptions[link] = BoundedDelay.symmetric(low, high)
    return System(topology=topology, assumptions=assumptions)


def probabilistic_synchronize(
    topology: Topology,
    views: Mapping[ProcessorId, View],
    distributions: Mapping[Tuple[ProcessorId, ProcessorId], DelayDistribution],
    delta: float,
) -> ProbabilisticResult:
    """Optimal corrections valid with probability at least ``1 - delta``.

    The failure budget is split uniformly over the delivered messages
    (union bound); each message's delay interval then covers with
    probability ``1 - delta / m``, so *all* intervals hold -- and with
    them the deterministic optimality guarantee -- with probability at
    least ``1 - delta``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    message_count = sum(
        len(values) for values in estimated_delays(views).values()
    )
    if message_count == 0:
        raise ValueError("no messages in the views; nothing to synchronize")
    epsilon = delta / message_count
    system = derive_bounded_system(topology, distributions, epsilon)
    sync = ClockSynchronizer(system).from_views(views)
    return ProbabilisticResult(
        sync=sync,
        confidence=1.0 - delta,
        per_message_epsilon=epsilon,
        derived_system=system,
    )


__all__ = [
    "DelayDistribution",
    "ExponentialDelay",
    "UniformDelayDistribution",
    "EmpiricalDelay",
    "ProbabilisticResult",
    "derive_bounded_system",
    "probabilistic_synchronize",
]
