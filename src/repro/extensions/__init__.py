"""Extensions beyond the paper's core results (its Section 7 agenda).

* :mod:`repro.extensions.leader` -- the leader-based distributed protocol
  the paper sketches as an open question, implemented as simulator
  automata with tree routing and sufficient-statistics reports.
* :mod:`repro.extensions.drift` -- drifting clocks with periodic
  resynchronization (the Kopetz--Ochsenreiter regime of footnote 1).
* :mod:`repro.extensions.external_time` -- anchoring corrected clocks to
  real time via a reference processor.
* :mod:`repro.extensions.windowed_bias` -- the "messages sent around the
  same time" refinement of the bias model that Section 6.2 defers to the
  full version.
* :mod:`repro.extensions.online` -- a streaming synchronizer maintaining
  sufficient statistics incrementally.
"""

from repro.extensions.drift import (
    DriftingClocks,
    ResyncRound,
    corrected_spread,
    periodic_resync,
    probe_round_stats,
)
from repro.extensions.external_time import (
    anchor_to_real_time,
    real_time_error_bounds,
    realized_real_time_errors,
)
from repro.extensions.leader import (
    Assign,
    EdgeStats,
    LeaderSyncAutomaton,
    NodeState,
    ProtocolIncomplete,
    Report,
    TimestampedProbe,
    corrections_from_execution,
    leader_automata,
    tree_routing,
)
from repro.extensions.online import OnlineSynchronizer
from repro.extensions.probabilistic import (
    DelayDistribution,
    EmpiricalDelay,
    ExponentialDelay,
    ProbabilisticResult,
    UniformDelayDistribution,
    derive_bounded_system,
    probabilistic_synchronize,
)
from repro.extensions.reliable_leader import (
    AssignAck,
    ReliableLeaderSyncAutomaton,
    ReliableNodeState,
    ReportAck,
    reliable_corrections_from_execution,
    reliable_leader_automata,
)
from repro.extensions.windowed_bias import (
    TimedObservation,
    WindowedBias,
    observations_from_views,
    synchronize_windowed,
    windowed_local_estimates,
)

__all__ = [
    "OnlineSynchronizer",
    "DelayDistribution",
    "EmpiricalDelay",
    "ExponentialDelay",
    "ProbabilisticResult",
    "UniformDelayDistribution",
    "derive_bounded_system",
    "probabilistic_synchronize",
    "AssignAck",
    "ReliableLeaderSyncAutomaton",
    "ReliableNodeState",
    "ReportAck",
    "reliable_corrections_from_execution",
    "reliable_leader_automata",
    "TimedObservation",
    "WindowedBias",
    "observations_from_views",
    "synchronize_windowed",
    "windowed_local_estimates",
    "DriftingClocks",
    "ResyncRound",
    "corrected_spread",
    "periodic_resync",
    "probe_round_stats",
    "anchor_to_real_time",
    "real_time_error_bounds",
    "realized_real_time_errors",
    "Assign",
    "EdgeStats",
    "LeaderSyncAutomaton",
    "NodeState",
    "ProtocolIncomplete",
    "Report",
    "TimestampedProbe",
    "corrections_from_execution",
    "leader_automata",
    "tree_routing",
]
