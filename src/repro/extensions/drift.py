"""Drifting clocks and periodic resynchronization (paper, footnote 1).

The paper assumes drift-free clocks and cites Kopetz--Ochsenreiter for the
justification: real hardware clocks drift by parts-per-million, and the
synchronization mechanism is simply re-invoked periodically.  This module
quantifies that regime:

* clocks run at rate ``1 + rho_p`` with ``|rho_p| <= drift_bound``;
* every period the processors exchange timestamped probes, the pipeline
  (which *believes* clocks are drift-free) computes fresh corrections;
* between rounds the corrected clocks drift apart again.

The simulation is analytic rather than event-driven: probe timestamps are
generated directly from the drifting clock functions, summarised into
estimated-delay statistics, and fed to the pipeline via
``ClockSynchronizer.from_local_estimates`` -- the exact entry point a
deployment gluing this library onto real NIC timestamps would use.

Expected behaviour (verified by experiment E10): the achieved spread is
bounded by the drift-free optimum plus an error term that scales with
``drift_bound x period``, and resynchronizing more often tightens it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro._types import Edge, ProcessorId, Time
from repro.core.synchronizer import ClockSynchronizer, SyncResult
from repro.delays.base import DirectionStats
from repro.delays.distributions import DelaySampler, Direction
from repro.delays.system import System


@dataclass(frozen=True)
class DriftingClocks:
    """Ground truth for a drifting-clock deployment.

    ``rates[p]`` is the clock rate of ``p`` (1.0 = perfect); the clock of
    ``p`` reads ``(t - start_times[p]) * rates[p]`` at real time ``t``.
    """

    start_times: Dict[ProcessorId, Time]
    rates: Dict[ProcessorId, float]

    def clock(self, p: ProcessorId, real_time: Time) -> Time:
        """Reading of ``p``'s (possibly drifting) clock at ``real_time``."""
        return (real_time - self.start_times[p]) * self.rates[p]

    def real_time_of(self, p: ProcessorId, clock_time: Time) -> Time:
        """Real time at which ``p``'s clock reads ``clock_time``."""
        return self.start_times[p] + clock_time / self.rates[p]

    @staticmethod
    def draw(
        processors,
        max_skew: Time,
        drift_bound: float,
        seed: int,
    ) -> "DriftingClocks":
        """Random start times and rates within the drift bound (seeded)."""
        rng = random.Random(seed)
        return DriftingClocks(
            start_times={p: rng.uniform(0.0, max_skew) for p in processors},
            rates={
                p: 1.0 + rng.uniform(-drift_bound, drift_bound)
                for p in processors
            },
        )


def corrected_spread(
    clocks: DriftingClocks,
    corrections: Mapping[ProcessorId, Time],
    real_time: Time,
) -> Time:
    """Spread of corrected clock readings at one real instant."""
    readings = [
        clocks.clock(p, real_time) + corrections[p]
        for p in clocks.start_times
    ]
    return max(readings) - min(readings)


def probe_round_stats(
    system: System,
    samplers: Mapping[Tuple[ProcessorId, ProcessorId], DelaySampler],
    clocks: DriftingClocks,
    send_clock_times: Mapping[ProcessorId, List[Time]],
    rng: random.Random,
) -> Dict[Edge, DirectionStats]:
    """Simulate one probe round under drifting clocks, analytically.

    For each link and each scheduled send clock time, the sender's real
    send time, the sampled delay and the receiver's clock reading at
    arrival produce one estimated-delay observation
    ``d~ = recv_clock - send_clock``; the per-edge extremes are returned.
    With zero drift this reduces exactly to the drift-free pipeline input.
    """
    observations: Dict[Edge, List[Time]] = {}
    for (a, b) in system.topology.links:
        sampler = samplers[(a, b)]
        for sender, receiver, direction in (
            (a, b, Direction.FORWARD),
            (b, a, Direction.REVERSE),
        ):
            for send_clock in send_clock_times[sender]:
                t_send = clocks.real_time_of(sender, send_clock)
                delay = sampler.sample(rng, direction)
                t_recv = t_send + delay
                recv_clock = clocks.clock(receiver, t_recv)
                observations.setdefault((sender, receiver), []).append(
                    recv_clock - send_clock
                )
    return {
        edge: DirectionStats.of(values)
        for edge, values in observations.items()
    }


@dataclass(frozen=True)
class ResyncRound:
    """Outcome of one synchronization round under drift."""

    round_index: int
    claimed_precision: Time
    spread_after_sync: Time
    spread_before_next: Time


def periodic_resync(
    system: System,
    samplers: Mapping[Tuple[ProcessorId, ProcessorId], DelaySampler],
    clocks: DriftingClocks,
    period: Time,
    rounds: int,
    probes_per_round: int = 3,
    probe_spacing: Time = 1.0,
    seed: int = 0,
) -> List[ResyncRound]:
    """Run ``rounds`` synchronization rounds, one per ``period``.

    Each round sends ``probes_per_round`` probes per direction per link,
    recomputes corrections from that round's observations only, and the
    harness measures the corrected spread right after the round and just
    before the next one (when drift has re-accumulated).
    """
    rng = random.Random(seed)
    synchronizer = ClockSynchronizer(system)
    results: List[ResyncRound] = []
    for r in range(rounds):
        round_start = (r + 1) * period
        send_clocks = {
            p: [round_start + i * probe_spacing for i in range(probes_per_round)]
            for p in system.processors
        }
        stats = probe_round_stats(system, samplers, clocks, send_clocks, rng)
        mls_tilde = system.mls_from_stats(stats)
        sync: SyncResult = synchronizer.from_local_estimates(mls_tilde)
        measure_at = round_start + probes_per_round * probe_spacing + 1.0
        results.append(
            ResyncRound(
                round_index=r,
                claimed_precision=sync.precision,
                spread_after_sync=corrected_spread(
                    clocks, sync.corrections, measure_at
                ),
                spread_before_next=corrected_spread(
                    clocks, sync.corrections, round_start + period
                ),
            )
        )
    return results


__all__ = [
    "DriftingClocks",
    "corrected_spread",
    "probe_round_stats",
    "ResyncRound",
    "periodic_resync",
]
