"""Loss-tolerant leader protocol: retransmission with acknowledgements.

The plain :mod:`repro.extensions.leader` protocol assumes the paper's
lossless delivery system: one lost report deadlocks the leader.  This
variant adds the minimal reliability layer a deployment needs:

* non-leaders retransmit their report on a timer until the leader's
  ``ReportAck`` arrives (the leader re-acks duplicates, since the ack
  itself can be lost; duplicate reports are deduplicated by origin);
* the leader retransmits each ``Assign`` on a timer until the target's
  ``AssignAck`` arrives (duplicate assigns are idempotent and re-acked).

Retries are bounded (``max_retries``), so runs always quiesce; under
persistent loss the protocol can still fail, which
:func:`repro.extensions.leader.corrections_from_execution` reports as
:class:`~repro.extensions.leader.ProtocolIncomplete` -- a detected
failure, never a silent one.

Correctness note: retransmissions and acks add *messages* but the leader
still computes from exactly one report per processor, so the computed
corrections equal the lossless protocol's whenever the same probe
observations got through.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro._types import ProcessorId, Time
from repro.delays.base import DirectionStats
from repro.delays.system import System
from repro.extensions.leader import (
    Assign,
    Report,
    TimestampedProbe,
    tree_routing,
)
from repro.core.synchronizer import ClockSynchronizer, SyncResult
from repro.model.events import Event, MessageReceiveEvent, StartEvent, TimerEvent
from repro.model.execution import Execution
from repro.sim.processor import Automaton, Send, SetTimer, Transition


@dataclass(frozen=True)
class ReportAck:
    """Leader's acknowledgement of ``target``'s report."""

    target: ProcessorId


@dataclass(frozen=True)
class AssignAck:
    """``origin``'s acknowledgement of its assignment, bound for the leader."""

    origin: ProcessorId


@dataclass(frozen=True)
class ReliableNodeState:
    """Immutable per-processor state of the reliable protocol."""

    probes_sent: int = 0
    observations: Tuple[Tuple[ProcessorId, Time], ...] = ()
    report_acked: bool = False
    # Leader-only bookkeeping:
    report_origins: FrozenSet[ProcessorId] = frozenset()
    reports: Tuple[Report, ...] = ()
    assignments: Tuple[Tuple[ProcessorId, Time], ...] = ()
    acked_targets: FrozenSet[ProcessorId] = frozenset()
    computed: bool = False
    # Every processor:
    correction: Optional[Time] = None
    assigned: bool = False


class ReliableLeaderSyncAutomaton(Automaton):
    """One participant of the loss-tolerant leader protocol."""

    def __init__(
        self,
        me: ProcessorId,
        system: System,
        leader: ProcessorId,
        probe_times: Sequence[Time],
        report_time: Time,
        next_hop: Mapping[ProcessorId, ProcessorId],
        retry_interval: Time = 20.0,
        max_retries: int = 10,
    ) -> None:
        if report_time <= max(probe_times):
            raise ValueError("report_time must come after the last probe")
        if retry_interval <= 0 or max_retries < 0:
            raise ValueError("need retry_interval > 0 and max_retries >= 0")
        self._me = me
        self._system = system
        self._leader = leader
        self._neighbors = tuple(system.topology.neighbors(me))
        self._probe_times = tuple(sorted(probe_times))
        self._report_time = report_time
        self._next_hop = dict(next_hop)
        self._retry_interval = retry_interval
        self._max_retries = max_retries
        self._n = len(system.topology.nodes)

    # -- helpers --------------------------------------------------------

    def _route(self, target: ProcessorId, payload: Any) -> Send:
        return Send(to=self._next_hop[target], payload=payload)

    def _report_schedule(self) -> Tuple[Time, ...]:
        return tuple(
            self._report_time + i * self._retry_interval
            for i in range(self._max_retries + 1)
        )

    def _make_report(self, state: ReliableNodeState) -> Report:
        from repro.extensions.leader import EdgeStats

        by_sender: Dict[ProcessorId, List[Time]] = {}
        for sender, delay in state.observations:
            by_sender.setdefault(sender, []).append(delay)
        entries = tuple(
            EdgeStats(
                sender=sender,
                count=len(values),
                min_delay=min(values),
                max_delay=max(values),
            )
            for sender, values in sorted(
                by_sender.items(), key=lambda kv: repr(kv[0])
            )
        )
        return Report(origin=self._me, entries=entries)

    def _leader_compute(self, reports: Sequence[Report]) -> SyncResult:
        stats: Dict[Tuple[ProcessorId, ProcessorId], DirectionStats] = {}
        for report in reports:
            for entry in report.entries:
                stats[(entry.sender, report.origin)] = DirectionStats(
                    count=entry.count,
                    min_delay=entry.min_delay,
                    max_delay=entry.max_delay,
                )
        mls_tilde = self._system.mls_from_stats(stats)
        synchronizer = ClockSynchronizer(self._system, root=self._leader)
        return synchronizer.from_local_estimates(mls_tilde)

    def _unacked_assign_sends(self, state: ReliableNodeState) -> Tuple[Send, ...]:
        return tuple(
            self._route(target, Assign(target=target, correction=value))
            for target, value in state.assignments
            if target not in state.acked_targets
        )

    # -- Automaton interface ---------------------------------------------

    def initial_state(self) -> ReliableNodeState:
        return ReliableNodeState()

    def on_interrupt(
        self, state: ReliableNodeState, clock_time: Time, event: Event
    ) -> Transition:
        if isinstance(event, StartEvent):
            timers = tuple(SetTimer(t) for t in self._probe_times)
            if self._me != self._leader:
                timers += tuple(SetTimer(t) for t in self._report_schedule())
            else:
                timers += (SetTimer(self._report_time),)
            return Transition.to(state, timers=timers)

        if isinstance(event, TimerEvent):
            return self._on_timer(state, clock_time)

        if isinstance(event, MessageReceiveEvent):
            payload = event.message.payload
            if isinstance(payload, TimestampedProbe):
                observation = (payload.origin, clock_time - payload.send_clock)
                return Transition.to(
                    replace(
                        state,
                        observations=state.observations + (observation,),
                    )
                )
            return self._on_message(state, event, clock_time)

        return Transition.to(state)

    def _on_timer(
        self, state: ReliableNodeState, clock_time: Time
    ) -> Transition:
        if state.probes_sent < len(self._probe_times):
            sends = tuple(
                Send(
                    to=n,
                    payload=TimestampedProbe(
                        origin=self._me,
                        round=state.probes_sent,
                        send_clock=clock_time,
                    ),
                )
                for n in self._neighbors
            )
            return Transition.to(
                replace(state, probes_sent=state.probes_sent + 1), sends=sends
            )

        if self._me == self._leader:
            if not state.computed and self._me not in state.report_origins:
                # The leader's own report timer.
                return self._absorb_report(
                    state, self._make_report(state), clock_time
                )
            # Assign retry timer (no-op if everything is acked already, or
            # if the leader is still waiting on straggler reports).
            return Transition.to(state, sends=self._unacked_assign_sends(state))

        # Report (re)transmission timer.
        if state.report_acked:
            return Transition.to(state)
        return Transition.to(
            state, sends=(self._route(self._leader, self._make_report(state)),)
        )

    def _on_message(
        self,
        state: ReliableNodeState,
        event: MessageReceiveEvent,
        clock_time: Time,
    ) -> Transition:
        payload = event.message.payload
        if isinstance(payload, Report):
            if self._me != self._leader:
                return Transition.to(
                    state, sends=(self._route(self._leader, payload),)
                )
            # Always (re-)ack; absorb only the first copy per origin.
            ack = self._route(payload.origin, ReportAck(target=payload.origin))
            if payload.origin in state.report_origins:
                return Transition.to(state, sends=(ack,))
            transition = self._absorb_report(state, payload, clock_time)
            return Transition(
                new_state=transition.new_state,
                sends=transition.sends + (ack,),
                timers=transition.timers,
            )
        if isinstance(payload, ReportAck):
            if payload.target == self._me:
                return Transition.to(replace(state, report_acked=True))
            return Transition.to(
                state, sends=(self._route(payload.target, payload),)
            )
        if isinstance(payload, Assign):
            if payload.target == self._me:
                ack = self._route(self._leader, AssignAck(origin=self._me))
                return Transition.to(
                    replace(
                        state, correction=payload.correction, assigned=True
                    ),
                    sends=(ack,),
                )
            return Transition.to(
                state, sends=(self._route(payload.target, payload),)
            )
        if isinstance(payload, AssignAck):
            if self._me == self._leader:
                return Transition.to(
                    replace(
                        state,
                        acked_targets=state.acked_targets | {payload.origin},
                    )
                )
            return Transition.to(
                state, sends=(self._route(self._leader, payload),)
            )
        return Transition.to(state)

    def _absorb_report(
        self, state: ReliableNodeState, report: Report, clock_time: Time
    ) -> Transition:
        new_state = replace(
            state,
            reports=state.reports + (report,),
            report_origins=state.report_origins | {report.origin},
        )
        if len(new_state.reports) < self._n:
            return Transition.to(new_state)
        result = self._leader_compute(new_state.reports)
        assignments = tuple(
            sorted(result.corrections.items(), key=lambda kv: repr(kv[0]))
        )
        new_state = replace(
            new_state,
            computed=True,
            assignments=assignments,
            correction=result.corrections[self._me],
            assigned=True,
            acked_targets=frozenset({self._me}),
        )
        sends = self._unacked_assign_sends(new_state)
        # Assign-retry timers anchored at the compute instant (strictly in
        # the clock future, as the model requires).
        timers = tuple(
            SetTimer(clock_time + (i + 1) * self._retry_interval)
            for i in range(self._max_retries)
        )
        return Transition.to(new_state, sends=sends, timers=timers)


def reliable_leader_automata(
    system: System,
    leader: ProcessorId,
    probe_times: Sequence[Time],
    report_time: Time,
    retry_interval: Time = 20.0,
    max_retries: int = 10,
) -> Dict[ProcessorId, ReliableLeaderSyncAutomaton]:
    """Build the reliable protocol automata for ``system``."""
    routing = tree_routing(system.topology, leader)
    return {
        p: ReliableLeaderSyncAutomaton(
            me=p,
            system=system,
            leader=leader,
            probe_times=probe_times,
            report_time=report_time,
            next_hop=routing[p],
            retry_interval=retry_interval,
            max_retries=max_retries,
        )
        for p in system.topology.nodes
    }


def reliable_corrections_from_execution(
    alpha: Execution,
) -> Dict[ProcessorId, Time]:
    """Extract corrections from a reliable-protocol run."""
    from repro.extensions.leader import ProtocolIncomplete

    corrections: Dict[ProcessorId, Time] = {}
    unassigned = []
    for p in alpha.processors:
        final = alpha.history(p).steps[-1].step.new_state
        if not isinstance(final, ReliableNodeState) or not final.assigned:
            unassigned.append(p)
        else:
            corrections[p] = final.correction
    if unassigned:
        raise ProtocolIncomplete(
            f"no correction assigned to: {sorted(unassigned, key=repr)}"
        )
    return corrections


__all__ = [
    "ReportAck",
    "AssignAck",
    "ReliableNodeState",
    "ReliableLeaderSyncAutomaton",
    "reliable_leader_automata",
    "reliable_corrections_from_execution",
]
