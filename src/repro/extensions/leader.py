"""Leader-based distributed synchronization (paper, Section 7 discussion).

The paper computes corrections centrally from all views and leaves the
distributed implementation as an open question, sketching the obvious
approach: neighbours estimate delays locally, everyone ships summaries to
a leader, the leader runs GLOBAL ESTIMATES + SHIFTS and sends each
processor its correction.  This module implements that sketch as honest
automata running *inside* the simulator -- every report and assignment is
a real message subject to the system's delay assumptions.

Key design points, mirroring the paper:

* Probes carry their send clock time, so the *receiver alone* computes
  the estimated delay ``d~(m) = recv_clock - payload.send_clock``
  (Lemma 6.1 made concrete).
* Reports carry only ``(count, d~min, d~max)`` per inbound edge --
  sufficient statistics by Lemmas 6.2/6.5, so the protocol's messages
  stay O(degree) regardless of how many probes were exchanged.
* Routing follows a BFS tree of the topology rooted at the leader
  (common knowledge, like the topology itself).

The paper's caveat applies and is measurable here: the leader's
corrections are optimal w.r.t. the *probe phase* only; the report and
assignment messages themselves carry extra timing information that a
centralized observer of the full execution could additionally exploit.
Experiment E10 quantifies that gap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro._types import ProcessorId, Time
from repro.core.synchronizer import ClockSynchronizer, SyncResult
from repro.delays.base import DirectionStats
from repro.delays.system import System
from repro.graphs.topology import Topology
from repro.model.events import Event, MessageReceiveEvent, StartEvent, TimerEvent
from repro.model.execution import Execution
from repro.sim.processor import Automaton, Send, SetTimer, Transition


# ----------------------------------------------------------------------
# Wire payloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TimestampedProbe:
    """A probe carrying its own send clock time."""

    origin: ProcessorId
    round: int
    send_clock: Time


@dataclass(frozen=True)
class EdgeStats:
    """Sufficient statistics for one inbound directed edge."""

    sender: ProcessorId
    count: int
    min_delay: Time
    max_delay: Time


@dataclass(frozen=True)
class Report:
    """One processor's inbound-edge statistics, en route to the leader."""

    origin: ProcessorId
    entries: Tuple[EdgeStats, ...]


@dataclass(frozen=True)
class Assign:
    """The leader's correction for ``target``, en route down the tree."""

    target: ProcessorId
    correction: Time


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def tree_routing(
    topology: Topology, leader: ProcessorId
) -> Dict[ProcessorId, Dict[ProcessorId, ProcessorId]]:
    """``next_hop[p][target]``: the neighbour ``p`` forwards to, along the
    BFS tree rooted at ``leader``."""
    parent: Dict[ProcessorId, Optional[ProcessorId]] = {leader: None}
    order: List[ProcessorId] = [leader]
    frontier = [leader]
    while frontier:
        nxt: List[ProcessorId] = []
        for u in frontier:
            for v in topology.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    order.append(v)
                    nxt.append(v)
        frontier = nxt
    if len(parent) != len(topology.nodes):
        raise ValueError("topology is not connected; no routing tree exists")

    def path_to_leader(p: ProcessorId) -> List[ProcessorId]:
        path = [p]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return path

    next_hop: Dict[ProcessorId, Dict[ProcessorId, ProcessorId]] = {
        p: {} for p in topology.nodes
    }
    for target in topology.nodes:
        path = path_to_leader(target)  # target ... leader
        # Walking the path from the leader end gives each node on it the
        # next hop toward the target.
        for i in range(len(path) - 1, 0, -1):
            next_hop[path[i]][target] = path[i - 1]
    # Off-path nodes route via their parent (up the tree until on-path).
    for p in topology.nodes:
        for target in topology.nodes:
            if target != p and target not in next_hop[p]:
                next_hop[p][target] = parent[p]
    return next_hop


# ----------------------------------------------------------------------
# Automaton state
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NodeState:
    """Immutable per-processor protocol state (histories compare states)."""

    probes_sent: int = 0
    observations: Tuple[Tuple[ProcessorId, Time], ...] = ()
    reported: bool = False
    reports: Tuple[Report, ...] = ()
    correction: Optional[Time] = None
    assigned: bool = False


class LeaderSyncAutomaton(Automaton):
    """One participant of the leader-based synchronization protocol.

    Every processor probes its neighbours at ``probe_times`` and reports
    inbound statistics toward the leader at ``report_time``; the leader
    additionally runs the optimal pipeline once all reports arrive and
    distributes corrections.
    """

    def __init__(
        self,
        me: ProcessorId,
        system: System,
        leader: ProcessorId,
        probe_times: Sequence[Time],
        report_time: Time,
        next_hop: Mapping[ProcessorId, ProcessorId],
    ) -> None:
        if report_time <= max(probe_times):
            raise ValueError("report_time must come after the last probe")
        self._me = me
        self._system = system
        self._leader = leader
        self._neighbors = tuple(system.topology.neighbors(me))
        self._probe_times = tuple(sorted(probe_times))
        self._report_time = report_time
        self._next_hop = dict(next_hop)
        self._n = len(system.topology.nodes)

    # -- helpers -------------------------------------------------------

    def _route(self, target: ProcessorId, payload: Any) -> Send:
        return Send(to=self._next_hop[target], payload=payload)

    def _make_report(self, state: NodeState) -> Report:
        by_sender: Dict[ProcessorId, List[Time]] = {}
        for sender, delay in state.observations:
            by_sender.setdefault(sender, []).append(delay)
        entries = tuple(
            EdgeStats(
                sender=sender,
                count=len(delays),
                min_delay=min(delays),
                max_delay=max(delays),
            )
            for sender, delays in sorted(by_sender.items(), key=lambda kv: repr(kv[0]))
        )
        return Report(origin=self._me, entries=entries)

    def _leader_compute(self, reports: Sequence[Report]) -> SyncResult:
        stats: Dict[Tuple[ProcessorId, ProcessorId], DirectionStats] = {}
        for report in reports:
            for entry in report.entries:
                stats[(entry.sender, report.origin)] = DirectionStats(
                    count=entry.count,
                    min_delay=entry.min_delay,
                    max_delay=entry.max_delay,
                )
        mls_tilde = self._system.mls_from_stats(stats)
        synchronizer = ClockSynchronizer(self._system, root=self._leader)
        return synchronizer.from_local_estimates(mls_tilde)

    # -- Automaton interface -------------------------------------------

    def initial_state(self) -> NodeState:
        return NodeState()

    def on_interrupt(
        self, state: NodeState, clock_time: Time, event: Event
    ) -> Transition:
        if isinstance(event, StartEvent):
            timers = tuple(SetTimer(t) for t in self._probe_times)
            timers += (SetTimer(self._report_time),)
            return Transition.to(state, timers=timers)

        if isinstance(event, TimerEvent):
            if state.probes_sent < len(self._probe_times):
                sends = tuple(
                    Send(
                        to=n,
                        payload=TimestampedProbe(
                            origin=self._me,
                            round=state.probes_sent,
                            send_clock=clock_time,
                        ),
                    )
                    for n in self._neighbors
                )
                return Transition.to(
                    replace(state, probes_sent=state.probes_sent + 1),
                    sends=sends,
                )
            # Report timer.
            report = self._make_report(state)
            if self._me == self._leader:
                return self._absorb_report(
                    replace(state, reported=True), report
                )
            return Transition.to(
                replace(state, reported=True),
                sends=(self._route(self._leader, report),),
            )

        if isinstance(event, MessageReceiveEvent):
            payload = event.message.payload
            if isinstance(payload, TimestampedProbe):
                delay_estimate = clock_time - payload.send_clock
                obs = state.observations + ((payload.origin, delay_estimate),)
                return Transition.to(replace(state, observations=obs))
            if isinstance(payload, Report):
                if self._me == self._leader:
                    return self._absorb_report(state, payload)
                return Transition.to(
                    state, sends=(self._route(self._leader, payload),)
                )
            if isinstance(payload, Assign):
                if payload.target == self._me:
                    return Transition.to(
                        replace(
                            state,
                            correction=payload.correction,
                            assigned=True,
                        )
                    )
                return Transition.to(
                    state, sends=(self._route(payload.target, payload),)
                )
        return Transition.to(state)

    def _absorb_report(self, state: NodeState, report: Report) -> Transition:
        reports = state.reports + (report,)
        new_state = replace(state, reports=reports)
        if len(reports) < self._n:
            return Transition.to(new_state)
        result = self._leader_compute(reports)
        sends = tuple(
            self._route(target, Assign(target=target, correction=x))
            for target, x in sorted(result.corrections.items(), key=lambda kv: repr(kv[0]))
            if target != self._me
        )
        return Transition.to(
            replace(
                new_state,
                correction=result.corrections[self._me],
                assigned=True,
            ),
            sends=sends,
        )


# ----------------------------------------------------------------------
# Harness helpers
# ----------------------------------------------------------------------


def leader_automata(
    system: System,
    leader: ProcessorId,
    probe_times: Sequence[Time],
    report_time: Time,
) -> Dict[ProcessorId, LeaderSyncAutomaton]:
    """Build the full set of protocol automata for ``system``."""
    routing = tree_routing(system.topology, leader)
    return {
        p: LeaderSyncAutomaton(
            me=p,
            system=system,
            leader=leader,
            probe_times=probe_times,
            report_time=report_time,
            next_hop=routing[p],
        )
        for p in system.topology.nodes
    }


class ProtocolIncomplete(RuntimeError):
    """The run ended before every processor received its correction."""


def corrections_from_execution(alpha: Execution) -> Dict[ProcessorId, Time]:
    """Extract each processor's assigned correction from its final state."""
    corrections: Dict[ProcessorId, Time] = {}
    unassigned: List[ProcessorId] = []
    for p in alpha.processors:
        final = alpha.history(p).steps[-1].step.new_state
        if not isinstance(final, NodeState) or not final.assigned:
            unassigned.append(p)
        else:
            corrections[p] = final.correction
    if unassigned:
        raise ProtocolIncomplete(
            f"no correction assigned to: {sorted(unassigned, key=repr)}"
        )
    return corrections


__all__ = [
    "TimestampedProbe",
    "EdgeStats",
    "Report",
    "Assign",
    "NodeState",
    "LeaderSyncAutomaton",
    "tree_routing",
    "leader_automata",
    "ProtocolIncomplete",
    "corrections_from_execution",
]
