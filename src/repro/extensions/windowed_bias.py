"""Windowed round-trip bias: the paper's "around the same time" model.

Section 6.2 simplifies the bias assumption to *all* opposite-direction
message pairs and notes: "It is possible to generalize our results to the
more realistic model in which this assumption holds only for messages
that were sent around the same time."  This module is that
generalization.

Model ``A_{p,q}[b, W]``: for every pair of opposite-direction messages
whose *send clock times* differ by at most ``W``,

    |d(m_p) - d(m_q)| <= b,

plus non-negativity of all delays.  Anchoring the window on clock times
(processors timestamp their sends) keeps the in-window relation invariant
under shifting -- shifts move real times, never clock times -- so the
admissible shifts still form an interval around 0 (Assumption 1 holds)
and the whole local-to-global machinery of Section 5 applies unchanged.

Derivation of the maximal local shift (mirroring Lemma 6.5): shifting
``q`` earlier by ``s`` turns a forward delay ``d_f`` into ``d_f - s`` and
a reverse delay ``d_r`` into ``d_r + s``, so an in-window pair constrains
``|d_f - d_r - 2 s| <= b``, i.e. ``s <= (b + d_f - d_r) / 2``.  Hence

    mls(p, q) = min( dmin(p, q),
                     min over in-window pairs (b + d_f - d_r) / 2 ).

With ``W = inf`` every pair is in-window and the binding pair is
``(dmin_f, dmax_r)`` -- exactly Lemma 6.5.  With ``W = 0`` no pair
constrains and the model degenerates to no-bounds (Corollary 6.4).  The
formula is translation-equivariant in the estimated quantities
(``d~_f - d~_r = d_f - d_r + 2 (S_p - S_q)`` and send clock differences
are view-observable), so feeding estimated delays yields ``mls~``
exactly as in Corollary 6.6.

Because the binding statistics are per-*pair*, extreme delays alone no
longer suffice; the pipeline entry points here consume full
``(send_clock, delay)`` observation lists extracted from views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro._types import Edge, INF, ProcessorId, Time
from repro.core.synchronizer import ClockSynchronizer, SyncResult
from repro.delays.base import ADMIT_TOL
from repro.delays.system import System
from repro.graphs.topology import Topology
from repro.model.events import MessageReceiveEvent
from repro.model.views import View


@dataclass(frozen=True)
class TimedObservation:
    """One message's send clock time and (true or estimated) delay."""

    send_clock: Time
    delay: Time


@dataclass(frozen=True)
class WindowedBias:
    """Parameters of the windowed model on one link (symmetric)."""

    bias: Time
    window: Time

    def __post_init__(self) -> None:
        if self.bias < 0:
            raise ValueError(f"bias bound must be >= 0, got {self.bias}")
        if self.window < 0:
            raise ValueError(f"window must be >= 0, got {self.window}")

    # ------------------------------------------------------------------

    def mls_bound(
        self,
        forward: Sequence[TimedObservation],
        reverse: Sequence[TimedObservation],
    ) -> Time:
        """Maximal local shift of ``q`` w.r.t. ``p`` (see module docstring)."""
        if not forward:
            return INF
        bound = min(obs.delay for obs in forward)  # non-negativity
        for f in forward:
            for r in reverse:
                if abs(f.send_clock - r.send_clock) <= self.window:
                    bound = min(bound, (self.bias + f.delay - r.delay) / 2.0)
        return bound

    def admits(
        self,
        forward: Sequence[TimedObservation],
        reverse: Sequence[TimedObservation],
    ) -> bool:
        """Local admissibility of actual (true-delay) observations."""
        if any(obs.delay < -ADMIT_TOL for obs in forward):
            return False
        if any(obs.delay < -ADMIT_TOL for obs in reverse):
            return False
        for f in forward:
            for r in reverse:
                if abs(f.send_clock - r.send_clock) <= self.window:
                    if abs(f.delay - r.delay) > self.bias + ADMIT_TOL:
                        return False
        return True


def observations_from_views(
    views: Mapping[ProcessorId, View]
) -> Dict[Edge, List[TimedObservation]]:
    """Per-edge ``(send_clock, estimated delay)`` observations.

    Like :func:`repro.core.estimates.estimated_delays` but keeping the
    send clock time each observation needs for window membership.
    """
    send_clocks: Dict[int, Time] = {}
    sender_of: Dict[int, ProcessorId] = {}
    for p, view in views.items():
        for uid, clock in view.send_clock_times().items():
            send_clocks[uid] = clock
            sender_of[uid] = p

    out: Dict[Edge, List[TimedObservation]] = {}
    for q, view in views.items():
        for step in view.steps:
            interrupt = step.interrupt
            if not isinstance(interrupt, MessageReceiveEvent):
                continue
            uid = interrupt.message.uid
            if uid not in send_clocks:
                raise ValueError(
                    f"{q!r} received message {uid} but no view contains its "
                    f"send"
                )
            p = sender_of[uid]
            out.setdefault((p, q), []).append(
                TimedObservation(
                    send_clock=send_clocks[uid],
                    delay=step.clock_time - send_clocks[uid],
                )
            )
    return out


def windowed_local_estimates(
    topology: Topology,
    observations: Mapping[Edge, Sequence[TimedObservation]],
    models: Mapping[Tuple[ProcessorId, ProcessorId], WindowedBias],
) -> Dict[Edge, Time]:
    """``mls~`` for every directed edge under per-link windowed models.

    ``models`` is keyed by the topology's canonical links; the model is
    symmetric so no orientation bookkeeping is needed.
    """
    out: Dict[Edge, Time] = {}
    for link in topology.links:
        if link not in models:
            raise KeyError(f"no windowed model for link {link!r}")
        model = models[link]
        p, q = link
        fwd = list(observations.get((p, q), ()))
        rev = list(observations.get((q, p), ()))
        out[(p, q)] = model.mls_bound(fwd, rev)
        out[(q, p)] = model.mls_bound(rev, fwd)
    return out


def synchronize_windowed(
    system: System,
    views: Mapping[ProcessorId, View],
    models: Mapping[Tuple[ProcessorId, ProcessorId], WindowedBias],
) -> SyncResult:
    """Full pipeline under windowed-bias links.

    ``system`` supplies the topology (its per-link assumptions are not
    consulted -- the windowed models replace them); GLOBAL ESTIMATES and
    SHIFTS run unchanged, which is precisely the modularity the paper's
    Section 5 promises: only the local-estimate computation is new.
    """
    observations = observations_from_views(views)
    mls_tilde = windowed_local_estimates(system.topology, observations, models)
    return ClockSynchronizer(system).from_local_estimates(mls_tilde)


__all__ = [
    "TimedObservation",
    "WindowedBias",
    "observations_from_views",
    "windowed_local_estimates",
    "synchronize_windowed",
]
