"""Online synchronization: ingest observations as they happen.

The batch pipeline recomputes everything from complete views.  A real
deployment instead sees a *stream* of timestamped messages and wants
fresh corrections on demand.  Lemmas 6.2/6.5 make that cheap: for the
paper's models the per-link sufficient statistics are the extreme
estimated delays, which update in O(1) per observation.  The
:class:`OnlineSynchronizer` maintains them incrementally and re-runs
GLOBAL ESTIMATES + SHIFTS lazily, caching the result until the next
observation that actually changes a statistic.

Two useful consequences, both tested:

* *streaming == batch*: after ingesting an execution message-by-message
  the result is identical to the batch pipeline on the full views;
* *monotonicity*: precision never degrades as observations arrive
  (new extremes only shrink the admissible-shift intervals), so callers
  can safely publish corrections at any moment.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro._types import Edge, ProcessorId, Time
from repro.core.estimates import estimated_delays
from repro.core.global_estimates import InconsistentViewsError
from repro.core.synchronizer import ClockSynchronizer, SyncResult
from repro.delays.base import DirectionStats, PairTiming
from repro.delays.system import System
from repro.model.views import View
from repro.obs.recorder import get_recorder


class OnlineSynchronizer:
    """Incrementally synchronize a fixed system from streamed observations.

    Observations are *estimated delays* ``d~ = recv_clock - send_clock``
    per directed edge -- exactly what a receiver can compute locally from
    a timestamped message (Lemma 6.1).

    On engines with an incremental path (the numpy backend), a refresh
    after a few new observations does not redo GLOBAL ESTIMATES from
    scratch: since new extremes only *tighten* ``mls~``, the cached
    ``ms~`` closure is repaired by relaxing paths through the improved
    entries only.  The ``streaming == batch`` invariant is unaffected --
    the incremental closure is exact (see
    :mod:`repro.engine.numpy_backend`) -- and is property-tested.

    ``method`` and ``backend`` are validated eagerly at construction (via
    :class:`~repro.core.synchronizer.ClockSynchronizer`), so a typo fails
    here rather than at the first :meth:`result` call.

    Robustness options (both off by default, preserving the exact
    ``streaming == batch`` contract):

    * ``reject_outliers=True`` screens each observation against the
      link's own delay assumption before admitting it: if the tentative
      statistics would make the link's estimated 2-cycle
      ``mls~(p,q) + mls~(q,p)`` negative -- impossible for honest
      samples by Lemma 6.2 soundness -- the observation is rejected
      (counted as ``online.outliers_rejected``).  A corrupted timestamp
      can therefore poison at most the *first* samples of a direction,
      never overturn an established consistent statistic.
    * ``fallback=True`` makes :meth:`result` degrade gracefully when the
      ingested statistics have become globally inconsistent (e.g. a
      corrupted timestamp slipped through on a fresh edge): instead of
      raising :class:`InconsistentViewsError`, the last successfully
      computed result is served (counted as ``online.fallbacks``), and
      the synchronizer keeps retrying on later queries -- a successful
      recompute after fallbacks counts ``online.recoveries``.  Use
      :meth:`drop_edge_stats` to discard a poisoned edge and recover
      for real.
    """

    def __init__(self, system: System, root: Optional[ProcessorId] = None,
                 method: str = "karp", backend: Optional[str] = None,
                 *, reject_outliers: bool = False,
                 fallback: bool = False) -> None:
        self._system = system
        self._synchronizer = ClockSynchronizer(
            system, root=root, method=method, backend=backend
        )
        self._stats: Dict[Edge, DirectionStats] = {}
        self._observations = 0
        self._cached: Optional[SyncResult] = None
        self._last_mls_matrix: Optional[np.ndarray] = None
        self._last_ms_matrix: Optional[np.ndarray] = None
        self._reject_outliers = reject_outliers
        self._fallback = fallback
        self._last_good: Optional[SyncResult] = None
        self._in_fallback = False
        self._outliers_rejected = 0
        self._fallbacks_served = 0
        self._last_admitted = False
        # Staleness bookkeeping: the observation ordinal at which each
        # directed edge last received a sample / last changed a statistic.
        self._edge_last_seen: Dict[Edge, int] = {}
        self._edge_last_change: Dict[Edge, int] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def observe(
        self, sender: ProcessorId, receiver: ProcessorId, estimated_delay: Time
    ) -> bool:
        """Record one message's estimated delay on edge ``sender -> receiver``.

        Returns ``True`` when the observation changed a sufficient
        statistic (i.e. the next :meth:`result` will actually recompute).
        """
        # Validate that the edge exists; raises UnknownLinkError otherwise.
        self._system.canonical_link(sender, receiver)
        edge = (sender, receiver)
        old = self._stats.get(edge, DirectionStats())
        new = DirectionStats(
            count=old.count + 1,
            min_delay=min(old.min_delay, estimated_delay),
            max_delay=max(old.max_delay, estimated_delay),
        )
        recorder = get_recorder()
        self._observations += 1
        if self._reject_outliers and self._is_outlier(
            sender, receiver, new
        ):
            # Do not admit the sample: it would make the link's own
            # 2-cycle infeasible, which no honest observation can.
            self._outliers_rejected += 1
            self._last_admitted = False
            self._edge_last_seen[edge] = self._observations
            if recorder.enabled:
                recorder.count("online.observations")
                recorder.count("online.outliers_rejected")
            return False
        self._stats[edge] = new
        self._last_admitted = True
        changed = (
            new.min_delay != old.min_delay or new.max_delay != old.max_delay
        )
        self._edge_last_seen[edge] = self._observations
        if changed:
            self._cached = None
            self._edge_last_change[edge] = self._observations
        if recorder.enabled:
            recorder.count("online.observations")
            if changed:
                recorder.count("online.statistic_changes")
        return changed

    def _is_outlier(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        tentative: DirectionStats,
    ) -> bool:
        """Whether admitting ``tentative`` would break the link's 2-cycle.

        By Lemma 6.2 the per-link shift intervals derived from honest
        samples always satisfy ``mls~(p,q) + mls~(q,p) >= 0`` (the true
        offset lies in both).  A sample whose admission would drive the
        sum negative is provably corrupt *relative to the already
        accepted samples* and is rejected.  (If the corrupt sample
        arrives first, later honest traffic gets rejected instead --
        screening is symmetric; :meth:`drop_edge_stats` breaks the tie.)
        """
        assumption = self._system.assumption_oriented(sender, receiver)
        timing = PairTiming(
            forward=tentative,
            reverse=self._stats.get((receiver, sender), DirectionStats()),
        )
        mls_pq, mls_qp = assumption.mls_pair(timing)
        return mls_pq + mls_qp < -1e-9

    def observe_timestamps(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        send_clock: Time,
        receive_clock: Time,
    ) -> bool:
        """Convenience: ingest raw clock timestamps of one message."""
        return self.observe(sender, receiver, receive_clock - send_clock)

    def ingest_views(self, views: Mapping[ProcessorId, View]) -> int:
        """Ingest every delivered message of a set of views; returns count."""
        total = 0
        for edge, delays in estimated_delays(views).items():
            for value in delays:
                self.observe(edge[0], edge[1], value)
                total += 1
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def synchronizer(self) -> ClockSynchronizer:
        """The underlying batch synchronizer (exposes engine/backend/index)."""
        return self._synchronizer

    @property
    def observation_count(self) -> int:
        """Total observations ingested since construction or reset."""
        return self._observations

    def edge_stats(self, sender: ProcessorId, receiver: ProcessorId) -> DirectionStats:
        """Current sufficient statistics of one directed edge."""
        return self._stats.get((sender, receiver), DirectionStats())

    @property
    def outliers_rejected(self) -> int:
        """Observations rejected by the Lemma 6.2 soundness screen."""
        return self._outliers_rejected

    @property
    def last_observation_admitted(self) -> bool:
        """Whether the most recent :meth:`observe` admitted its sample.

        ``False`` right after construction/:meth:`reset` and after a
        screened-out outlier.  The live correction server keys its
        probe log on this: only admitted observations enter the log, so
        a ``from_views`` replay of any log prefix sees exactly the
        sample multiset the online statistics were built from.
        """
        return self._last_admitted

    @property
    def fallbacks_served(self) -> int:
        """Queries answered from the last-good result during inconsistency."""
        return self._fallbacks_served

    @property
    def in_fallback(self) -> bool:
        """Whether the most recent query had to serve the last-good result."""
        return self._in_fallback

    def edge_staleness(
        self, sender: ProcessorId, receiver: ProcessorId
    ) -> int:
        """Observations ingested since edge ``sender -> receiver`` last saw one.

        An edge that never received a sample is maximally stale: its
        staleness equals the total observation count.  Staleness is
        measured in *observation ordinals*, not wall time -- the online
        synchronizer has no clock of its own.
        """
        last = self._edge_last_seen.get((sender, receiver), 0)
        return self._observations - last

    def stale_edges(self, threshold: int) -> Dict[Edge, int]:
        """Directed edges whose staleness is >= ``threshold``.

        Covers every directed edge of the system, so silent links (down,
        partitioned, or simply idle) show up even though they never
        produced an observation.
        """
        out: Dict[Edge, int] = {}
        for p, q in self._system.directed_edges():
            staleness = self.edge_staleness(p, q)
            if staleness >= threshold:
                out[(p, q)] = staleness
        return out

    def drop_edge_stats(
        self, sender: ProcessorId, receiver: ProcessorId
    ) -> bool:
        """Discard the accumulated statistics of one directed edge.

        The recovery lever for a poisoned direction (corrupted
        timestamps that slipped past screening): dropping the edge
        *loosens* its estimate back to the unconstrained sentinel, so
        the next :meth:`result` recomputes from scratch -- the cached
        incremental closure is only valid under tightening and is
        invalidated here.  Returns whether anything was dropped.
        """
        edge = (sender, receiver)
        had = edge in self._stats
        self._stats.pop(edge, None)
        self._edge_last_change.pop(edge, None)
        self._edge_last_seen.pop(edge, None)
        if had:
            self._cached = None
            self._last_mls_matrix = None
            self._last_ms_matrix = None
            get_recorder().count("online.edge_drops")
        return had

    def result(self) -> SyncResult:
        """Current optimal corrections (recomputed only when stale).

        With ``fallback=True`` a recompute that discovers globally
        inconsistent statistics serves the last successfully computed
        result instead of raising (the failure is NOT cached, so every
        later query retries the recompute).
        """
        recorder = get_recorder()
        if self._cached is None:
            try:
                self._cached = self._recompute()
            except InconsistentViewsError:
                if not self._fallback or self._last_good is None:
                    raise
                self._in_fallback = True
                self._fallbacks_served += 1
                if recorder.enabled:
                    recorder.count("online.fallbacks")
                    recorder.emit(
                        "online.fallback",
                        observations=self._observations,
                        sim_time=recorder.sim_time,
                    )
                return self._last_good
            if self._in_fallback:
                self._in_fallback = False
                recorder.count("online.recoveries")
            self._last_good = self._cached
        else:
            recorder.count("online.cache_hits")
        return self._cached

    def _recompute(self) -> SyncResult:
        sync = self._synchronizer
        recorder = get_recorder()
        with recorder.span("online.refresh"):
            mls_tilde = self._system.mls_from_stats(self._stats)
            mls_matrix = sync.index.matrix(mls_tilde)
            ms_matrix = None
            if self._last_ms_matrix is not None:
                ms_matrix = self._incremental_closure(mls_matrix)
            if ms_matrix is None:
                recorder.count("online.full_recomputes")
                ms_matrix = sync.engine.global_estimates(mls_matrix)
            else:
                recorder.count("online.incremental_repairs")
            result = sync.from_matrices(
                mls_tilde, mls_matrix=mls_matrix, ms_matrix=ms_matrix
            )
            self._last_mls_matrix = mls_matrix
            self._last_ms_matrix = ms_matrix
            if recorder.enabled and recorder.observers:
                # from_matrices already emitted pipeline.result for the
                # monitors; this adds the streaming context (observation
                # count) for timeline/convergence subscribers.
                recorder.emit(
                    "online.result",
                    system=self._system,
                    result=result,
                    observations=self._observations,
                    sim_time=recorder.sim_time,
                )
            return result

    def _incremental_closure(
        self, mls_matrix: np.ndarray
    ) -> Optional[np.ndarray]:
        """Repair the cached ``ms~`` closure from the new ``mls~`` matrix.

        Returns ``None`` whenever the batch path must run instead: the
        engine has no incremental support, an estimate *loosened*
        (impossible under monotone ingestion, but guarded), or the update
        exposed an inconsistency (the batch path re-derives the error
        authoritatively).
        """
        old = self._last_mls_matrix
        if old is None or (mls_matrix > old).any():
            return None
        changed = np.argwhere(mls_matrix < old)
        if changed.size == 0:
            return self._last_ms_matrix
        changes = [
            (int(i), int(j), float(mls_matrix[i, j])) for i, j in changed
        ]
        try:
            return self._synchronizer.engine.incremental_update(
                self._last_ms_matrix, changes
            )
        except InconsistentViewsError:
            return None

    def precision(self) -> Time:
        """Current guaranteed precision (``inf`` until enough traffic)."""
        return self.result().precision

    def reset(self) -> None:
        """Forget all observations (e.g. after a topology/epoch change)."""
        self._stats.clear()
        self._observations = 0
        self._cached = None
        self._last_mls_matrix = None
        self._last_ms_matrix = None
        self._last_good = None
        self._in_fallback = False
        self._outliers_rejected = 0
        self._fallbacks_served = 0
        self._last_admitted = False
        self._edge_last_seen.clear()
        self._edge_last_change.clear()


__all__ = ["OnlineSynchronizer"]
