"""Shared type aliases used across the :mod:`repro` package.

The paper models a network as a finite directed graph ``G = (V, E)`` whose
nodes are processors.  Processor identifiers can be any hashable value; the
test-suite and examples mostly use small integers or short strings.
"""

from __future__ import annotations

from typing import Hashable, Tuple

#: Identifier of a processor (a node of the communication graph).
ProcessorId = Hashable

#: A directed communication link ``(sender, receiver)``.
Edge = Tuple[ProcessorId, ProcessorId]

#: Real time and clock time are both plain floats (seconds, conceptually).
Time = float

#: Positive infinity, used for absent upper bounds (``ub = ∞``).
INF = float("inf")

#: Negative infinity, used e.g. for ``d_max`` when no message was received.
NEG_INF = float("-inf")
