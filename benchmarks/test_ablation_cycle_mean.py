"""Ablation: Karp vs Howard for the SHIFTS cycle-mean stage.

DESIGN.md calls out the cycle-mean backend as the dominant pipeline cost
(E9).  This bench times both algorithms on the dense ``ms~``-style graphs
SHIFTS actually builds, at the same size, asserting they agree -- the
data behind the ``method=`` knob on :func:`repro.core.shifts.shifts`.
"""

import random

import pytest

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.howard import maximum_cycle_mean_howard
from repro.graphs.karp import maximum_cycle_mean
from repro.graphs.karp_numpy import maximum_cycle_mean_numpy


def _ms_like_graph(n: int, seed: int = 0) -> WeightedDigraph:
    """A complete digraph shaped like a real ms~ matrix (metric + shifted)."""
    rng = random.Random(seed)
    starts = [rng.uniform(0.0, 10.0) for _ in range(n)]
    ms = {}
    for p in range(n):
        for q in range(n):
            if p != q:
                ms[(p, q)] = rng.uniform(0.0, 5.0)
    for k in range(n):
        for p in range(n):
            for q in range(n):
                if len({p, q, k}) == 3:
                    ms[(p, q)] = min(ms[(p, q)], ms[(p, k)] + ms[(k, q)])
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for (p, q), v in ms.items():
        g.add_edge(p, q, v + starts[p] - starts[q])
    return g


GRAPH = _ms_like_graph(32)
EXPECTED = maximum_cycle_mean(GRAPH).mean


def test_ablation_karp(benchmark):
    result = benchmark(lambda: maximum_cycle_mean(GRAPH))
    assert result.mean == pytest.approx(EXPECTED)


def test_ablation_howard(benchmark):
    result = benchmark(lambda: maximum_cycle_mean_howard(GRAPH))
    assert result.mean == pytest.approx(EXPECTED, abs=1e-7)


def test_ablation_karp_numpy(benchmark):
    result = benchmark(lambda: maximum_cycle_mean_numpy(GRAPH))
    assert result.mean == pytest.approx(EXPECTED, abs=1e-9)
