"""E10 bench: regenerate the extension tables; time one full
leader-protocol simulation (probes + reports + assignments) and one
drift resync round."""

import random

from conftest import show_tables

from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import UniformDelay
from repro.delays.system import System
from repro.experiments import run_experiment
from repro.extensions.drift import DriftingClocks, periodic_resync
from repro.extensions.leader import corrections_from_execution, leader_automata
from repro.graphs import ring
from repro.sim.network import NetworkSimulator
from repro.workloads.scenarios import bounded_uniform


def test_e10_tables_and_leader_protocol(benchmark, capsys):
    tables = run_experiment("E10", quick=True)
    show_tables(capsys, tables)
    leader_table, drift_table, reliable_table = tables
    for row in leader_table.rows:
        assert row[3] <= row[1] + 1e-9  # full-view optimum <= protocol
    assert drift_table.rows
    for row in reliable_table.rows:
        done, total = row[2].split("/")
        assert done == total

    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=0)
    automata = leader_automata(
        scenario.system, leader=0, probe_times=[12.0, 16.0], report_time=60.0
    )

    def run_protocol():
        sim = NetworkSimulator(
            scenario.system, scenario.samplers, scenario.start_times, seed=0
        )
        return corrections_from_execution(sim.run(automata))

    corrections = benchmark(run_protocol)
    assert len(corrections) == 5


def test_e10_drift_resync_round(benchmark):
    topo = ring(4)
    system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
    clocks = DriftingClocks.draw(topo.nodes, 5.0, 1e-5, seed=3)
    rounds = benchmark(
        lambda: periodic_resync(
            system, samplers, clocks, period=100.0, rounds=1, seed=3
        )
    )
    assert len(rounds) == 1
