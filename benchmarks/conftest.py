"""Shared helpers for the benchmark harness.

Each ``benchmarks/test_eN_*.py`` pairs one experiment with a benchmark of
the computation that drives it: the experiment's tables are generated
once and printed (even under pytest's capture, so the regenerated rows
always appear in ``bench_output.txt``), and pytest-benchmark times the
core routine.
"""

from __future__ import annotations

from typing import List

from repro.analysis.reporting import Table


def show_tables(capsys, tables: List[Table]) -> None:
    """Print experiment tables, bypassing pytest output capture."""
    with capsys.disabled():
        print()
        for table in tables:
            print(table.format())
            print()
