"""Observability overhead guard.

The instrumentation added to the sim/pipeline/engine hot paths must be
free when disabled: with the default no-op recorder installed the n=64
E9 pipeline (numpy backend) must stay within 5% of the archived
``BENCH_engine.json`` baseline.  ``test_e9_engine_backends`` regenerates
that file earlier in the same benchmark run, so the comparison is
same-machine, not cross-archive.

A second (informational, loosely bounded) check times the pipeline with
an enabled recorder to show what full tracing costs.
"""

import json
import time
from pathlib import Path

from repro.core.estimates import local_shift_estimates
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs import ring
from repro.obs import get_recorder, NOOP, recording
from repro.workloads.scenarios import bounded_uniform

N = 64
REPEATS = 9


def _pipeline_inputs():
    scenario = bounded_uniform(ring(N), lb=1.0, ub=3.0, probes=2, seed=0)
    mls = local_shift_estimates(scenario.system, scenario.run().views())
    return scenario.system, mls


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _baseline_seconds():
    path = Path(__file__).resolve().parent / "BENCH_engine.json"
    records = json.loads(path.read_text())
    entry = next(r for r in records if r["n"] == N)
    return entry["numpy_seconds"]


def test_noop_recorder_overhead_under_5_percent(capsys):
    assert get_recorder() is NOOP, "benchmark requires the disabled default"
    system, mls = _pipeline_inputs()

    # Mirror test_e9_engine_backends exactly (fresh synchronizer per
    # timing) so the ratio compares methodology-identical numbers.
    def once():
        ClockSynchronizer(system, backend="numpy").from_local_estimates(mls)

    once()  # warm import/caches before timing
    disabled = _best_of(once)
    baseline = _baseline_seconds()
    with capsys.disabled():
        print(
            f"\nobs disabled {disabled:.5f}s  baseline {baseline:.5f}s  "
            f"ratio {disabled / baseline:.3f}"
        )
    assert disabled <= baseline * 1.05, (
        f"no-op instrumentation overhead {disabled / baseline - 1:.1%} "
        f"exceeds 5% of BENCH_engine.json baseline"
    )


def test_enabled_recorder_overhead_is_bounded(capsys):
    system, mls = _pipeline_inputs()
    sync = ClockSynchronizer(system, backend="numpy")
    sync.from_local_estimates(mls)
    disabled = _best_of(lambda: sync.from_local_estimates(mls))
    with recording() as rec:
        enabled = _best_of(lambda: sync.from_local_estimates(mls))
    assert rec.tracer.finished(), "recorder saw no spans"
    with capsys.disabled():
        print(
            f"\nobs enabled {enabled:.5f}s  disabled {disabled:.5f}s  "
            f"ratio {enabled / disabled:.2f}"
        )
    # Tracing is allowed to cost something, but a blow-up here means a
    # hot loop started allocating spans per event instead of per run.
    assert enabled <= disabled * 3.0
