"""Observability overhead guard.

The instrumentation added to the sim/pipeline/engine hot paths must be
free when disabled: with the default no-op recorder installed the n=64
E9 pipeline (numpy backend) is measured live and gated against the
archived ``engine.pipeline[backend=numpy,n=64]`` result in
``BENCH_engine.json`` through the noise-aware ``repro.bench`` comparison
(DESIGN.md §13): a regression is flagged only when both the median and
the min-of-repeats exceed the ``local`` tolerance.  The archive is a
different run of the same machine, so a raw few-percent ratio check
flakes on container drift; the gate still catches a genuinely hot
disabled path (a 2x slowdown fails it unconditionally).

A second (informational, loosely bounded) check times the pipeline with
an enabled recorder to show what full tracing costs.
"""

import time
from pathlib import Path

from repro.bench import (
    BenchResult,
    SampleStats,
    TOLERANCE_PRESETS,
    compare_results,
    read_bench_report,
)
from repro.core.estimates import local_shift_estimates
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs import ring
from repro.obs import get_recorder, NOOP, recording
from repro.workloads.scenarios import bounded_uniform

N = 64
REPEATS = 9


def _pipeline_inputs():
    scenario = bounded_uniform(ring(N), lb=1.0, ub=3.0, probes=2, seed=0)
    mls = local_shift_estimates(scenario.system, scenario.run().views())
    return scenario.system, mls


def _samples_of(fn, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def _best_of(fn, repeats=REPEATS):
    return min(_samples_of(fn, repeats))


def baseline_result():
    """The archived numpy n=64 pipeline result from ``BENCH_engine.json``."""
    path = Path(__file__).resolve().parent / "BENCH_engine.json"
    report = read_bench_report(path)
    return report.by_key()[f"engine.pipeline[backend=numpy,n={N}]"]


def assert_within_baseline_gate(fn, label, capsys, attempts=3):
    """Measure ``fn`` live and gate it against the archive, noise-aware.

    The container's load swings wall-clock by tens of percent between
    epochs, so a single measurement against an archive captured at a
    fast moment still flakes even at the 25% ``local`` tolerance.  The
    measurement is therefore re-taken up to ``attempts`` times and the
    guard fails only when *every* attempt regresses: a transient load
    spike clears on retry, a genuinely hot disabled path (2x) fails
    all of them.
    """
    baseline = baseline_result()
    tolerance, _ = TOLERANCE_PRESETS["local"]
    delta = None
    for attempt in range(attempts):
        samples = _samples_of(fn)
        current = BenchResult(
            name=baseline.name,
            params=dict(baseline.params),
            wall=SampleStats(samples=tuple(samples)),
            cpu=SampleStats(samples=tuple(samples)),
            warmup=1,
        )
        delta = compare_results(baseline, current, tolerance)
        with capsys.disabled():
            print(
                f"\n{label} [attempt {attempt + 1}] median "
                f"{current.wall.median:.5f}s min {current.wall.min:.5f}s  "
                f"baseline median {baseline.wall.median:.5f}s min "
                f"{baseline.wall.min:.5f}s  verdict {delta.verdict}"
            )
        if not delta.regressed:
            return
    raise AssertionError(
        f"{label} regressed vs BENCH_engine.json on all {attempts} "
        f"attempts: {delta.detail}"
    )


def test_noop_recorder_run_passes_baseline_gate(capsys):
    assert get_recorder() is NOOP, "benchmark requires the disabled default"
    system, mls = _pipeline_inputs()

    # Mirror the archived engine.pipeline workload exactly (fresh
    # synchronizer per timing) so the gate compares methodology-identical
    # numbers.
    def once():
        ClockSynchronizer(system, backend="numpy").from_local_estimates(mls)

    once()  # warm import/caches before timing
    assert_within_baseline_gate(once, "obs disabled", capsys)


def test_enabled_recorder_overhead_is_bounded(capsys):
    system, mls = _pipeline_inputs()
    sync = ClockSynchronizer(system, backend="numpy")
    sync.from_local_estimates(mls)
    disabled = _best_of(lambda: sync.from_local_estimates(mls))
    with recording() as rec:
        enabled = _best_of(lambda: sync.from_local_estimates(mls))
    assert rec.tracer.finished(), "recorder saw no spans"
    with capsys.disabled():
        print(
            f"\nobs enabled {enabled:.5f}s  disabled {disabled:.5f}s  "
            f"ratio {enabled / disabled:.2f}"
        )
    # Tracing is allowed to cost something, but a blow-up here means a
    # hot loop started allocating spans per event instead of per run.
    assert enabled <= disabled * 3.0
