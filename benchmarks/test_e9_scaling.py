"""E9 bench: regenerate the scaling table; time the two graph kernels
(Karp max cycle mean, Bellman--Ford) at a fixed size so regressions in
either show up independently of the end-to-end pipeline; race the matrix
engine backends on the full pipeline through the :mod:`repro.bench`
harness and archive ``BENCH_engine.json`` in the schema'd
:class:`~repro.bench.BenchReport` form."""

import random
from pathlib import Path

from conftest import show_tables

from repro.experiments import run_experiment
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import maximum_cycle_mean
from repro.graphs.shortest_paths import bellman_ford


def _dense_graph(n: int, seed: int = 0) -> WeightedDigraph:
    rng = random.Random(seed)
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v, rng.uniform(0.0, 5.0))
    return g


def test_e9_scaling_table(benchmark, capsys):
    tables = run_experiment("E9", quick=True)
    show_tables(capsys, tables)
    assert all(row[-1] > 0 for row in tables[0].rows)

    g = _dense_graph(24)
    result = benchmark(lambda: maximum_cycle_mean(g))
    assert result.mean is not None


def test_e9_bellman_ford_kernel(benchmark):
    g = _dense_graph(48, seed=1)
    dist = benchmark(lambda: bellman_ford(g, 0)[0])
    assert len(dist) == 48


def test_e9_engine_backends(capsys):
    """python vs numpy engine on the full pipeline; archives BENCH_engine.json.

    The race now runs through the ``repro.bench`` harness (suite
    ``full``, benchmark ``engine.pipeline``, backend x n grid), so the
    archived file is a schema'd, environment-fingerprinted
    ``BenchReport`` instead of the old bare list.  The claims are
    unchanged: the numpy engine must beat the reference dict/digraph
    engine by at least 5x at n=64 (measured ~10x; the bound leaves CI
    headroom), both backends must agree on A^max to 1e-7, and the
    legacy row shape must still load through ``load_engine_baseline``
    so the overhead guards keyed on ``numpy_seconds`` never notice.
    """
    from repro.bench import (
        load_engine_baseline,
        run_suite,
        validate_bench_file,
        write_bench_report,
    )

    outcome = run_suite(
        suite="full", names=["engine.pipeline"], repeats=3, warmup=1
    )
    report = outcome.report

    by_key = report.by_key()
    for n in (8, 16, 32, 64):
        python = by_key[f"engine.pipeline[backend=python,n={n}]"]
        numpy = by_key[f"engine.pipeline[backend=numpy,n={n}]"]
        assert abs(
            python.extra["precision"] - numpy.extra["precision"]
        ) < 1e-7

    out = Path(__file__).resolve().parent / "BENCH_engine.json"
    write_bench_report(out, report)
    assert validate_bench_file(out) == len(report.results)

    rows = load_engine_baseline(out)
    with capsys.disabled():
        print()
        for n in sorted(rows):
            entry = rows[n]
            print(
                f"n={n:>3}  python {entry['python_seconds']:.5f}s  "
                f"numpy {entry['numpy_seconds']:.5f}s  "
                f"speedup {entry['speedup']:.1f}x"
            )

    assert rows[64]["speedup"] >= 5.0
