"""E9 bench: regenerate the scaling table; time the two graph kernels
(Karp max cycle mean, Bellman--Ford) at a fixed size so regressions in
either show up independently of the end-to-end pipeline."""

import random

from conftest import show_tables

from repro.experiments import run_experiment
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import maximum_cycle_mean
from repro.graphs.shortest_paths import bellman_ford


def _dense_graph(n: int, seed: int = 0) -> WeightedDigraph:
    rng = random.Random(seed)
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v, rng.uniform(0.0, 5.0))
    return g


def test_e9_scaling_table(benchmark, capsys):
    tables = run_experiment("E9", quick=True)
    show_tables(capsys, tables)
    assert all(row[-1] > 0 for row in tables[0].rows)

    g = _dense_graph(24)
    result = benchmark(lambda: maximum_cycle_mean(g))
    assert result.mean is not None


def test_e9_bellman_ford_kernel(benchmark):
    g = _dense_graph(48, seed=1)
    dist = benchmark(lambda: bellman_ford(g, 0)[0])
    assert len(dist) == 48
