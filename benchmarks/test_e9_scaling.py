"""E9 bench: regenerate the scaling table; time the two graph kernels
(Karp max cycle mean, Bellman--Ford) at a fixed size so regressions in
either show up independently of the end-to-end pipeline; race the matrix
engine backends on the full pipeline and archive ``BENCH_engine.json``."""

import json
import random
import time
from pathlib import Path

from conftest import show_tables

from repro.core.estimates import local_shift_estimates
from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import maximum_cycle_mean
from repro.graphs.shortest_paths import bellman_ford
from repro.workloads.scenarios import bounded_uniform


def _dense_graph(n: int, seed: int = 0) -> WeightedDigraph:
    rng = random.Random(seed)
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v, rng.uniform(0.0, 5.0))
    return g


def test_e9_scaling_table(benchmark, capsys):
    tables = run_experiment("E9", quick=True)
    show_tables(capsys, tables)
    assert all(row[-1] > 0 for row in tables[0].rows)

    g = _dense_graph(24)
    result = benchmark(lambda: maximum_cycle_mean(g))
    assert result.mean is not None


def test_e9_bellman_ford_kernel(benchmark):
    g = _dense_graph(48, seed=1)
    dist = benchmark(lambda: bellman_ford(g, 0)[0])
    assert len(dist) == 48


def test_e9_engine_backends(capsys):
    """python vs numpy engine on the full pipeline; archives BENCH_engine.json.

    The numpy engine must beat the reference dict/digraph engine by at
    least 5x at n=64 (measured ~10x; the bound leaves CI headroom), and
    both must agree on A^max to 1e-7.
    """
    records = []
    for n in (8, 16, 32, 64):
        scenario = bounded_uniform(ring(n), lb=1.0, ub=3.0, probes=2, seed=0)
        mls = local_shift_estimates(scenario.system, scenario.run().views())
        entry = {"n": n}
        precisions = {}
        for backend in ("python", "numpy"):
            sync = ClockSynchronizer(scenario.system, backend=backend)
            best = min(
                _timed(sync.from_local_estimates, mls) for _ in range(3)
            )
            entry[f"{backend}_seconds"] = best
            precisions[backend] = sync.from_local_estimates(mls).precision
        assert abs(precisions["python"] - precisions["numpy"]) < 1e-7
        entry["precision"] = precisions["python"]
        entry["speedup"] = entry["python_seconds"] / entry["numpy_seconds"]
        records.append(entry)

    out = Path(__file__).resolve().parent / "BENCH_engine.json"
    out.write_text(json.dumps(records, indent=2) + "\n")
    with capsys.disabled():
        print()
        for entry in records:
            print(
                f"n={entry['n']:>3}  python {entry['python_seconds']:.5f}s  "
                f"numpy {entry['numpy_seconds']:.5f}s  "
                f"speedup {entry['speedup']:.1f}x"
            )

    final = records[-1]
    assert final["n"] == 64
    assert final["speedup"] >= 5.0


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
