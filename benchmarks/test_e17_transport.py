"""E17 bench: time a lossy transport trace (emergent delays) end to end."""

from conftest import show_tables

from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import UniformDelay
from repro.delays.system import System
from repro.experiments import run_experiment
from repro.experiments.e17_transport import CONFIG, LB, UB
from repro.faults.plan import FaultPlan, MessageLoss
from repro.graphs import ring
from repro.sim.network import draw_start_times
from repro.sim.transport import run_transport_probes


def test_e17_transport(benchmark, capsys):
    tables = run_experiment("E17", quick=True)
    show_tables(capsys, tables)
    models, bias = tables
    # Every row passed the strict monitor suite, and the lossy rows
    # really retransmitted.
    assert all(row[-1] == "pass (strict)" for row in models.rows)
    assert float(models.rows[-1][1]) > 0.0
    # At zero loss the measured-b bias model beats absolute bounds.
    assert float(bias.rows[0][-1]) < 1.0

    topo = ring(4)
    system = System.uniform(topo, BoundedDelay.symmetric(LB, UB))
    samplers = {link: UniformDelay(LB, UB) for link in topo.links}
    starts = draw_start_times(topo.nodes, max_skew=4.0, seed=3)
    plan = FaultPlan(
        faults=tuple(MessageLoss(rate=0.25, edge=link) for link in topo.links),
        seed=3,
        name="bench",
    )

    def lossy_trace():
        return run_transport_probes(
            system,
            samplers,
            starts,
            probe_times=tuple(5.0 * (k + 1) for k in range(6)),
            seed=3,
            plan=plan,
            config=CONFIG,
        )

    trace = benchmark(lossy_trace)
    assert trace.fully_accounted
    assert trace.retransmits() > 0
