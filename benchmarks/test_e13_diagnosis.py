"""E13 bench: regenerate the diagnosis tables; time one full
screen-and-repair pass on a system with a rogue link."""

import math

from conftest import show_tables

from repro.analysis.diagnosis import diagnose_and_repair
from repro.experiments import run_experiment
from repro.experiments.e13_diagnosis import _run_with_rogue_link
from repro.graphs import ring


def test_e13_diagnosis(benchmark, capsys):
    tables = run_experiment("E13", quick=True)
    show_tables(capsys, tables)
    detection, repair = tables
    # Above-threshold severities must always be detected and localized.
    for row in detection.rows:
        if row[1]:  # detectable
            detected, runs = row[2].split("/")
            assert detected == runs
    assert all(row[-1] for row in repair.rows)  # repairs fully synchronized

    topo = ring(5)
    system, alpha = _run_with_rogue_link(topo, topo.links[0], 10.0, seed=0)
    views = alpha.views()

    diagnosis, repaired = benchmark(
        lambda: diagnose_and_repair(system, views)
    )
    assert not diagnosis.consistent
    assert not math.isinf(repaired.precision)
