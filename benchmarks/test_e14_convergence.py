"""E14 bench: online convergence under monitors; time the replay loop."""

from conftest import show_tables

from repro.experiments import run_experiment
from repro.graphs import ring
from repro.obs.timeline import replay_online
from repro.workloads.scenarios import bounded_uniform


def test_e14_convergence(benchmark, capsys):
    tables = run_experiment("E14", quick=True)
    show_tables(capsys, tables)
    trajectory, summary = tables
    # Every seed must finish monitor-clean (last column is violations).
    assert all(row[-1] == 0 for row in summary.rows)
    # Precision tightens monotonically along the trajectory.
    finite = [
        float(row[2]) for row in trajectory.rows if row[2] != "inf"
    ]
    assert finite and all(
        b <= a + 1e-9 for a, b in zip(finite, finite[1:])
    )

    scenario = bounded_uniform(
        ring(5), lb=1.0, ub=3.0, probes=8, spacing=2.0, seed=0
    )
    alpha = scenario.run()
    result = benchmark(lambda: replay_online(scenario.system, alpha))
    assert result.final.observations == len(alpha.message_records())
