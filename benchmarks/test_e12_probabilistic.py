"""E12 bench: regenerate the probabilistic tables; time one
probabilistic synchronization (quantile compilation + pipeline)."""

import math

from conftest import show_tables

from repro.experiments import run_experiment
from repro.experiments.e12_probabilistic import _simulate
from repro.extensions.probabilistic import (
    ExponentialDelay,
    probabilistic_synchronize,
)
from repro.graphs import ring


def test_e12_probabilistic(benchmark, capsys):
    tables = run_experiment("E12", quick=True)
    show_tables(capsys, tables)
    tradeoff, coverage = tables
    assert tradeoff.rows and coverage.rows
    # Guarantee-conditional success must be total: "k/k" in every row.
    for row in coverage.rows:
        ok, held = row[-1].split("/")
        assert ok == held

    topo = ring(4)
    dist = ExponentialDelay(minimum=0.5, mean_extra=1.5)
    dists = {link: dist for link in topo.links}
    alpha = _simulate(topo, dist, seed=0)
    views = alpha.views()

    result = benchmark(
        lambda: probabilistic_synchronize(topo, views, dists, delta=0.05)
    )
    assert not math.isinf(result.precision)
