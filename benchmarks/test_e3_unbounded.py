"""E3 bench: regenerate the unbounded-delay tables; time synchronization
under lower-bound-only links (the model worst-case analysis cannot touch).
"""

import math

from conftest import show_tables

from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.workloads.scenarios import lower_bound_only


def test_e3_unbounded(benchmark, capsys):
    tables = run_experiment("E3", quick=True)
    show_tables(capsys, tables)
    tail_table, component_table = tables
    assert all(row[-2] for row in tail_table.rows)  # all finite
    assert math.isinf(component_table.rows[0][1])

    scenario = lower_bound_only(ring(5), lb=1.0, mean_extra=2.0, seed=0)
    alpha = scenario.run()
    views = alpha.views()
    synchronizer = ClockSynchronizer(scenario.system)

    result = benchmark(lambda: synchronizer.from_views(views))
    assert not math.isinf(result.precision)
