"""E8 bench: regenerate the precision-vs-probes curve; time prefix
re-synchronization (the per-prefix pipeline E8 runs repeatedly)."""

from conftest import show_tables

from repro.experiments import run_experiment
from repro.experiments.e8_messages import prefix_precision
from repro.graphs import ring
from repro.workloads.scenarios import bounded_uniform


def test_e8_messages(benchmark, capsys):
    tables = run_experiment("E8", quick=True)
    show_tables(capsys, tables)
    (table,) = tables
    assert all(row[-1] for row in table.rows)  # exact monotonicity
    means = [row[1] for row in table.rows]
    assert means == sorted(means, reverse=True)

    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, probes=16,
                               spacing=2.0, seed=0)
    alpha = scenario.run()
    precision = benchmark(lambda: prefix_precision(scenario, alpha, 8))
    assert precision > 0
