"""E7 bench: regenerate the baseline comparison; time the NTP-style
baseline (whose cheapness is its only advantage)."""

from conftest import show_tables

from repro.baselines.ntp_like import ntp_corrections
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.workloads.scenarios import bounded_uniform


def test_e7_baselines(benchmark, capsys):
    tables = run_experiment("E7", quick=True)
    show_tables(capsys, tables)
    for row in tables[0].rows:
        assert row[4] >= 1.0 - 1e-9
        assert row[5] >= 1.0 - 1e-9
    assert tables[1].rows[0][-1] > 1.0  # favourable-conditions dividend

    scenario = bounded_uniform(ring(6), lb=1.0, ub=3.0, seed=0)
    alpha = scenario.run()
    views = alpha.views()
    corrections = benchmark(lambda: ntp_corrections(scenario.topology, views))
    assert len(corrections) == 6
