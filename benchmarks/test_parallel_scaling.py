"""Parallel campaign runner: scaling on the E9c grid.

Runs the E9c campaign (bounded rings, sizes 8..64) at 1, 2 and 4
workers and archives ``BENCH_parallel.json`` as a schema'd
:class:`~repro.bench.BenchReport` (``campaign.scaling`` results keyed
by worker count, ``campaign.streaming`` by runner mode, honest
grid/cpu/target facts in ``meta``; the legacy dict shape still loads
through ``load_parallel_baseline``).  The seed set is widened
to 16 per cell so the grid carries enough serial work (~1s) to amortize
pool startup -- with E9c's default 3 seeds the whole grid solves in
~0.2s and any pool would lose to its own fork overhead.  Two distinct
claims are checked:

* **determinism** -- the summary table is byte-identical for every
  worker count.  Asserted unconditionally: it must hold on any host.
* **speedup** -- 4 workers must finish the grid at least 2x faster than
  1 worker.  That is a statement about *hardware*, not just code: a
  process pool cannot beat the serial run on a single-CPU container
  (measured 0.94x there -- pool overhead with no parallelism to buy).
  The assertion therefore engages only when the host exposes >= 4
  effective CPUs (CI runners do); on smaller hosts the honest
  measurement is still recorded with ``target_met``/``reason`` fields.
"""

import os
import time
from pathlib import Path

from repro.bench import (
    BenchReport,
    BenchResult,
    EnvFingerprint,
    SampleStats,
    read_bench_report,
    validate_bench_file,
    write_bench_report,
)
from repro.experiments.common import e9c_campaign

SPEEDUP_TARGET = 2.0
WORKER_COUNTS = (1, 2, 4)

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _bench_result(name, params, seconds, cpu_seconds, **extra):
    return BenchResult(
        name=name,
        params=params,
        wall=SampleStats(samples=(seconds,)),
        cpu=SampleStats(samples=(cpu_seconds,)),
        warmup=0,
        extra=extra,
    )


def _merge_into_archive(results, meta):
    """Fold new results into ``BENCH_parallel.json`` (one BenchReport).

    The two archiving tests in this module each contribute their own
    result family (``campaign.scaling`` / ``campaign.streaming``); a
    re-run replaces its own family and leaves the other intact.
    """
    report = None
    if BENCH_PATH.exists():
        try:
            report = read_bench_report(BENCH_PATH)
        except Exception:
            report = None  # legacy format: start a fresh report
    replaced = {r.name for r in results}
    if report is None:
        report = BenchReport(
            env=EnvFingerprint.capture(), suite="parallel", results=[]
        )
    report.env = EnvFingerprint.capture()
    report.results = [
        r for r in report.results if r.name not in replaced
    ] + list(results)
    report.meta.update(meta)
    write_bench_report(BENCH_PATH, report)
    assert validate_bench_file(BENCH_PATH) == len(report.results)


def test_parallel_campaign_scaling(capsys):
    campaign, topologies = e9c_campaign(quick=False, seeds=range(16))
    cpus = _effective_cpus()

    runs = []
    tables = {}
    cpu_times = {}
    for workers in WORKER_COUNTS:
        cpu0 = time.process_time()
        outcome = campaign.run_results(topologies, workers=workers)
        cpu_times[workers] = time.process_time() - cpu0
        tables[workers] = campaign.summarize(outcome.results).format()
        runs.append({
            "workers": workers,
            "seconds": outcome.seconds,
            "cells": len(outcome.results),
        })

    # Determinism holds on any host, parallel or not.
    for workers in WORKER_COUNTS[1:]:
        assert tables[workers] == tables[1], (
            f"workers={workers} changed the campaign table"
        )

    serial = runs[0]["seconds"]
    for entry in runs:
        entry["speedup"] = serial / entry["seconds"]
    speedup = runs[-1]["speedup"]
    target_met = speedup >= SPEEDUP_TARGET
    reason = None
    if not target_met and cpus < 4:
        reason = f"cpu_limited ({cpus} effective CPU(s))"

    _merge_into_archive(
        [
            _bench_result(
                "campaign.scaling",
                {"workers": entry["workers"]},
                entry["seconds"],
                cpu_times[entry["workers"]],
                cells=entry["cells"],
                speedup=entry["speedup"],
            )
            for entry in runs
        ],
        meta={
            "grid": {
                "preset": "e9c",
                "topologies": [t.name for t in topologies],
                "seeds": len(campaign.seeds),
                "cells": len(topologies) * len(campaign.seeds),
            },
            "cpu": {"effective": cpus, "count": os.cpu_count()},
            "speedup_target": SPEEDUP_TARGET,
            "speedup_at_4": speedup,
            "target_met": target_met,
            "reason": reason,
        },
    )

    with capsys.disabled():
        print()
        for entry in runs:
            print(
                f"workers={entry['workers']}  {entry['seconds']:.3f}s  "
                f"speedup {entry['speedup']:.2f}x"
            )
        print(f"effective CPUs: {cpus}  target_met: {target_met}"
              + (f"  ({reason})" if reason else ""))

    if cpus >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"4-worker speedup {speedup:.2f}x below "
            f"{SPEEDUP_TARGET}x on a {cpus}-CPU host"
        )


def test_streaming_vs_in_memory(tmp_path, capsys):
    """Streaming/bounded-memory cost row for ``BENCH_parallel.json``.

    Same E9c grid, three runner modes: plain in-memory, streaming (JSONL
    sink attached, results still kept) and bounded-memory streaming
    (results dropped after the durable append + aggregation).  The
    summary table must be byte-identical across all three; the archived
    row records what durability and O(1) residency cost in wall-clock.
    """
    campaign, topologies = e9c_campaign(quick=False, seeds=range(16))
    cells = len(topologies) * len(campaign.seeds)

    cpu_times = {}

    def _timed_run(mode, **kwargs):
        cpu0 = time.process_time()
        outcome = campaign.run_results(topologies, workers=1, **kwargs)
        cpu_times[mode] = time.process_time() - cpu0
        return outcome

    in_mem = _timed_run("in_memory")
    streamed = _timed_run("streaming", results_dir=tmp_path / "stream")
    bounded = _timed_run(
        "streaming_bounded",
        results_dir=tmp_path / "bounded", bounded_memory=True,
    )

    from repro.workloads import summarize_groups

    table = campaign.summarize(in_mem.results).format()
    assert campaign.summarize(streamed.results).format() == table
    assert summarize_groups(
        bounded.aggregates, seeds_per_cell=len(campaign.seeds)
    ).format() == table

    # The acceptance claim: bounded-memory residency is O(1), while the
    # in-memory modes hold the whole shard.
    assert streamed.resident_high_water == cells
    assert bounded.resident_high_water <= 2
    assert bounded.results == ()

    rows = [
        {"mode": "in_memory", "seconds": in_mem.seconds,
         "resident_high_water": cells},
        {"mode": "streaming", "seconds": streamed.seconds,
         "resident_high_water": streamed.resident_high_water},
        {"mode": "streaming_bounded", "seconds": bounded.seconds,
         "resident_high_water": bounded.resident_high_water},
    ]
    for row in rows:
        row["cells"] = cells
        row["overhead_vs_in_memory"] = row["seconds"] / in_mem.seconds

    _merge_into_archive(
        [
            _bench_result(
                "campaign.streaming",
                {"mode": row["mode"]},
                row["seconds"],
                cpu_times[row["mode"]],
                cells=cells,
                resident_high_water=row["resident_high_water"],
                overhead_vs_in_memory=row["overhead_vs_in_memory"],
            )
            for row in rows
        ],
        meta={"table_identical": True},
    )

    with capsys.disabled():
        print()
        for row in rows:
            print(
                f"{row['mode']:<18} {row['seconds']:.3f}s  "
                f"overhead {row['overhead_vs_in_memory']:.2f}x  "
                f"resident<= {row['resident_high_water']}"
            )


def test_cache_resume_is_faster_than_solving(tmp_path):
    campaign, topologies = e9c_campaign(quick=True)
    cold = campaign.run_results(topologies, cache_dir=str(tmp_path))
    warm = campaign.run_results(topologies, cache_dir=str(tmp_path))
    assert cold.cache_misses == len(cold.results)
    assert warm.cache_hits == len(warm.results)
    assert warm.seconds < cold.seconds
    assert [r.fingerprint() for r in warm.results] == [
        r.fingerprint() for r in cold.results
    ]
