"""Parallel campaign runner: scaling on the E9c grid.

Runs the E9c campaign (bounded rings, sizes 8..64) at 1, 2 and 4
workers and archives ``BENCH_parallel.json``.  The seed set is widened
to 16 per cell so the grid carries enough serial work (~1s) to amortize
pool startup -- with E9c's default 3 seeds the whole grid solves in
~0.2s and any pool would lose to its own fork overhead.  Two distinct
claims are checked:

* **determinism** -- the summary table is byte-identical for every
  worker count.  Asserted unconditionally: it must hold on any host.
* **speedup** -- 4 workers must finish the grid at least 2x faster than
  1 worker.  That is a statement about *hardware*, not just code: a
  process pool cannot beat the serial run on a single-CPU container
  (measured 0.94x there -- pool overhead with no parallelism to buy).
  The assertion therefore engages only when the host exposes >= 4
  effective CPUs (CI runners do); on smaller hosts the honest
  measurement is still recorded with ``target_met``/``reason`` fields.
"""

import json
import os
from pathlib import Path

from repro.experiments.common import e9c_campaign

SPEEDUP_TARGET = 2.0
WORKER_COUNTS = (1, 2, 4)


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_parallel_campaign_scaling(capsys):
    campaign, topologies = e9c_campaign(quick=False, seeds=range(16))
    cpus = _effective_cpus()

    runs = []
    tables = {}
    for workers in WORKER_COUNTS:
        outcome = campaign.run_results(topologies, workers=workers)
        tables[workers] = campaign.summarize(outcome.results).format()
        runs.append({
            "workers": workers,
            "seconds": outcome.seconds,
            "cells": len(outcome.results),
        })

    # Determinism holds on any host, parallel or not.
    for workers in WORKER_COUNTS[1:]:
        assert tables[workers] == tables[1], (
            f"workers={workers} changed the campaign table"
        )

    serial = runs[0]["seconds"]
    for entry in runs:
        entry["speedup"] = serial / entry["seconds"]
    speedup = runs[-1]["speedup"]
    target_met = speedup >= SPEEDUP_TARGET
    reason = None
    if not target_met and cpus < 4:
        reason = f"cpu_limited ({cpus} effective CPU(s))"

    record = {
        "grid": {
            "preset": "e9c",
            "topologies": [t.name for t in topologies],
            "seeds": len(campaign.seeds),
            "cells": len(topologies) * len(campaign.seeds),
        },
        "cpu": {"effective": cpus, "count": os.cpu_count()},
        "runs": runs,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_at_4": speedup,
        "target_met": target_met,
        "reason": reason,
    }
    out = Path(__file__).resolve().parent / "BENCH_parallel.json"
    out.write_text(json.dumps(record, indent=2) + "\n")

    with capsys.disabled():
        print()
        for entry in runs:
            print(
                f"workers={entry['workers']}  {entry['seconds']:.3f}s  "
                f"speedup {entry['speedup']:.2f}x"
            )
        print(f"effective CPUs: {cpus}  target_met: {target_met}"
              + (f"  ({reason})" if reason else ""))

    if cpus >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"4-worker speedup {speedup:.2f}x below "
            f"{SPEEDUP_TARGET}x on a {cpus}-CPU host"
        )


def test_cache_resume_is_faster_than_solving(tmp_path):
    campaign, topologies = e9c_campaign(quick=True)
    cold = campaign.run_results(topologies, cache_dir=str(tmp_path))
    warm = campaign.run_results(topologies, cache_dir=str(tmp_path))
    assert cold.cache_misses == len(cold.results)
    assert warm.cache_hits == len(warm.results)
    assert warm.seconds < cold.seconds
    assert [r.fingerprint() for r in warm.results] == [
        r.fingerprint() for r in cold.results
    ]
