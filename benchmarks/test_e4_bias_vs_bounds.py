"""E4 bench: regenerate the bias-vs-bounds crossover; time synchronization
under the round-trip bias model (Section 6.2)."""

from conftest import show_tables

from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.workloads.scenarios import round_trip_bias


def test_e4_bias_vs_bounds(benchmark, capsys):
    tables = run_experiment("E4", quick=True)
    show_tables(capsys, tables)
    (table,) = tables
    winners = {row[0]: row[-1] for row in table.rows}
    assert winners[min(winners)] == "bias"
    assert winners[max(winners)] == "bounds"

    scenario = round_trip_bias(ring(5), bias=0.5, seed=0)
    alpha = scenario.run()
    views = alpha.views()
    synchronizer = ClockSynchronizer(scenario.system)

    result = benchmark(lambda: synchronizer.from_views(views))
    assert result.precision < 1.0  # tight bias -> sub-unit precision
