"""Protocol-telemetry overhead guard.

The telemetry hooks added for causality tracing and invariant monitoring
(``recorder.emit`` call sites in the simulator and the pipeline, the
``pipeline.result`` event in ``from_matrices``) must be free when
observability is disabled: with the default no-op recorder the n=64 E9
pipeline (numpy backend) must stay within 5% of the archived
``BENCH_engine.json`` baseline, same methodology as
``test_obs_overhead.py``.

A second check bounds the *enabled-but-unobserved* path: a live recorder
with no observers attached must not emit (the guard is
``recorder.enabled and recorder.observers``), so attaching telemetry
later cannot tax runs that never asked for it.
"""

import json
import time
from pathlib import Path

from repro.core.estimates import local_shift_estimates
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs import ring
from repro.obs import NOOP, get_recorder, recording
from repro.obs.monitor import MonitorSuite
from repro.workloads.scenarios import bounded_uniform

N = 64
REPEATS = 9


def _pipeline_inputs():
    scenario = bounded_uniform(ring(N), lb=1.0, ub=3.0, probes=2, seed=0)
    mls = local_shift_estimates(scenario.system, scenario.run().views())
    return scenario.system, mls


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _baseline_seconds():
    path = Path(__file__).resolve().parent / "BENCH_engine.json"
    records = json.loads(path.read_text())
    entry = next(r for r in records if r["n"] == N)
    return entry["numpy_seconds"]


def test_disabled_telemetry_overhead_under_5_percent(capsys):
    assert get_recorder() is NOOP, "benchmark requires the disabled default"
    system, mls = _pipeline_inputs()

    def once():
        ClockSynchronizer(system, backend="numpy").from_local_estimates(mls)

    once()  # warm import/caches before timing
    disabled = _best_of(once)
    baseline = _baseline_seconds()
    with capsys.disabled():
        print(
            f"\ntelemetry disabled {disabled:.5f}s  baseline "
            f"{baseline:.5f}s  ratio {disabled / baseline:.3f}"
        )
    assert disabled <= baseline * 1.05, (
        f"disabled telemetry overhead {disabled / baseline - 1:.1%} "
        f"exceeds 5% of BENCH_engine.json baseline"
    )


def test_monitored_run_cost_is_bounded(capsys):
    """Monitors cost something; they must not dominate the pipeline."""
    system, mls = _pipeline_inputs()
    sync = ClockSynchronizer(system, backend="numpy")
    sync.from_local_estimates(mls)
    unmonitored = _best_of(lambda: sync.from_local_estimates(mls))
    with recording() as recorder:
        # Views-only monitors (no execution): the closure-structure
        # triangle scan is O(n^3), same order as the pipeline itself.
        suite = MonitorSuite()
        recorder.add_observer(suite)
        monitored = _best_of(lambda: sync.from_local_estimates(mls))
    assert suite.checks >= REPEATS
    assert suite.ok, [v.message for v in suite.violations]
    with capsys.disabled():
        print(
            f"\nmonitored {monitored:.5f}s  unmonitored {unmonitored:.5f}s"
            f"  ratio {monitored / unmonitored:.2f}"
        )
    assert monitored <= unmonitored * 25.0


def test_enabled_recorder_without_observers_does_not_emit():
    system, mls = _pipeline_inputs()
    sync = ClockSynchronizer(system, backend="numpy")
    with recording() as recorder:
        sync.from_local_estimates(mls)
        assert recorder.observers == []
    # The pipeline.result guard requires observers; with none attached
    # a later-added probe must have seen nothing retroactively.
    seen = []

    class Probe:
        def on_telemetry(self, kind, data):
            seen.append(kind)

    with recording() as recorder:
        recorder.add_observer(Probe())
        sync.from_local_estimates(mls)
    assert seen == ["pipeline.result"]
