"""Protocol-telemetry overhead guard.

The telemetry hooks added for causality tracing and invariant monitoring
(``recorder.emit`` call sites in the simulator and the pipeline, the
``pipeline.result`` event in ``from_matrices``) must be free when
observability is disabled: with the default no-op recorder the n=64 E9
pipeline (numpy backend) is gated against the archived
``BENCH_engine.json`` result through the noise-aware ``repro.bench``
comparison, same methodology as ``test_obs_overhead.py``.

A second check bounds the *enabled-but-unobserved* path: a live recorder
with no observers attached must not emit (the guard is
``recorder.enabled and recorder.observers``), so attaching telemetry
later cannot tax runs that never asked for it.
"""

from test_obs_overhead import (
    N,
    REPEATS,
    _best_of,
    _pipeline_inputs,
    assert_within_baseline_gate,
)

from repro.core.synchronizer import ClockSynchronizer
from repro.obs import NOOP, get_recorder, recording
from repro.obs.monitor import MonitorSuite

assert N == 64 and REPEATS >= 5  # shared methodology from test_obs_overhead


def test_disabled_telemetry_passes_baseline_gate(capsys):
    assert get_recorder() is NOOP, "benchmark requires the disabled default"
    system, mls = _pipeline_inputs()

    def once():
        ClockSynchronizer(system, backend="numpy").from_local_estimates(mls)

    once()  # warm import/caches before timing
    assert_within_baseline_gate(once, "telemetry disabled", capsys)


def test_monitored_run_cost_is_bounded(capsys):
    """Monitors cost something; they must not dominate the pipeline."""
    system, mls = _pipeline_inputs()
    sync = ClockSynchronizer(system, backend="numpy")
    sync.from_local_estimates(mls)
    unmonitored = _best_of(lambda: sync.from_local_estimates(mls))
    with recording() as recorder:
        # Views-only monitors (no execution): the closure-structure
        # triangle scan is O(n^3), same order as the pipeline itself.
        suite = MonitorSuite()
        recorder.add_observer(suite)
        monitored = _best_of(lambda: sync.from_local_estimates(mls))
    assert suite.checks >= REPEATS
    assert suite.ok, [v.message for v in suite.violations]
    with capsys.disabled():
        print(
            f"\nmonitored {monitored:.5f}s  unmonitored {unmonitored:.5f}s"
            f"  ratio {monitored / unmonitored:.2f}"
        )
    assert monitored <= unmonitored * 25.0


def test_enabled_recorder_without_observers_does_not_emit():
    system, mls = _pipeline_inputs()
    sync = ClockSynchronizer(system, backend="numpy")
    with recording() as recorder:
        sync.from_local_estimates(mls)
        assert recorder.observers == []
    # The pipeline.result guard requires observers; with none attached
    # a later-added probe must have seen nothing retroactively.
    seen = []

    class Probe:
        def on_telemetry(self, kind, data):
            seen.append(kind)

    with recording() as recorder:
        recorder.add_observer(Probe())
        sync.from_local_estimates(mls)
    assert seen == ["pipeline.result"]
