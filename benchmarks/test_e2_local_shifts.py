"""E2 bench: regenerate the mls-formula table; time the closed form vs
the bisection search it replaces (the paper's formulas are the fast path).
"""

from conftest import show_tables

from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bounds import BoundedDelay
from repro.experiments import run_experiment
from repro.experiments.e2_local_shifts import search_mls


def test_e2_formula(benchmark, capsys):
    tables = run_experiment("E2", quick=True)
    show_tables(capsys, tables)
    assert all(row[-1] for row in tables[0].rows)

    assumption = BoundedDelay.symmetric(1.0, 3.0)
    timing = PairTiming(
        forward=DirectionStats.of([1.5, 2.0, 2.2]),
        reverse=DirectionStats.of([2.1, 2.4]),
    )
    value = benchmark(lambda: assumption.mls_bound(timing))
    assert abs(value - search_mls(assumption, [1.5, 2.0, 2.2], [2.1, 2.4])) < 1e-6
