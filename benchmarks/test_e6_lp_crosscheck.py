"""E6 bench: regenerate the LP cross-check table; time the combinatorial
pipeline against the LP oracle on the same instance -- the speed gap is
the practical argument for the paper's approach over [3]."""

from conftest import show_tables

from repro.baselines.lp import lp_optimal_corrections
from repro.core.shifts import shifts
from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.workloads.scenarios import bounded_uniform


def _instance():
    scenario = bounded_uniform(ring(6), lb=1.0, ub=4.0, seed=1)
    alpha = scenario.run()
    result = ClockSynchronizer(scenario.system).from_execution(alpha)
    return list(scenario.system.processors), result.ms_tilde, result.precision


def test_e6_karp_vs_lp_tables(benchmark, capsys):
    tables = run_experiment("E6", quick=True)
    show_tables(capsys, tables)
    for row in tables[0].rows:
        assert abs(row[1] - row[2]) < 1e-6

    processors, ms_tilde, expected = _instance()
    outcome = benchmark(lambda: shifts(processors, ms_tilde))
    assert abs(outcome.precision - expected) < 1e-9


def test_e6_lp_solver_baseline(benchmark):
    """The LP oracle on the same instance, for the timing comparison."""
    processors, ms_tilde, expected = _instance()
    _, eps = benchmark(lambda: lp_optimal_corrections(processors, ms_tilde))
    assert abs(eps - expected) < 1e-6
