"""E15 bench: fault injection overhead; time a lossy simulate+sync cell."""

from conftest import show_tables

from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.faults.plan import FaultPlan, MessageLoss
from repro.graphs import ring
from repro.workloads.scenarios import bounded_uniform


def test_e15_faults(benchmark, capsys):
    tables = run_experiment("E15", quick=True)
    show_tables(capsys, tables)
    (table,) = tables
    # Monitor-clean at every loss rate; the lossy rows really drop traffic.
    assert all(row[-1] == 0 for row in table.rows)
    assert float(table.rows[-1][2]) > 0.0

    plan = FaultPlan(faults=(MessageLoss(rate=0.3),), seed=5, name="bench")

    def lossy_cell():
        scenario = bounded_uniform(
            ring(5), lb=1.0, ub=3.0, probes=4, spacing=2.0, seed=0
        ).with_faults(plan)
        alpha = scenario.run()
        return ClockSynchronizer(scenario.system).from_execution(alpha)

    result = benchmark(lossy_cell)
    assert result.precision > 0.0
