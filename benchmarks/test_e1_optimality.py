"""E1 bench: regenerate the optimality table; time the full pipeline.

The benched routine is one complete synchronization (views -> mls~ ->
ms~ -> SHIFTS) on a ring-6 instance -- the operation E1 runs per seed
and topology.
"""

from conftest import show_tables

from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.workloads.scenarios import bounded_uniform


def test_e1_optimality(benchmark, capsys):
    tables = run_experiment("E1", quick=True)
    show_tables(capsys, tables)
    assert all(row[-1] for row in tables[0].rows)  # everything certified

    scenario = bounded_uniform(ring(6), lb=1.0, ub=3.0, seed=0)
    alpha = scenario.run()
    views = alpha.views()
    synchronizer = ClockSynchronizer(scenario.system)

    result = benchmark(lambda: synchronizer.from_views(views))
    assert result.is_fully_synchronized
