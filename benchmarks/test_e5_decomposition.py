"""E5 bench: regenerate the decomposition tables; time synchronization of
a heterogeneous system (mixed assumptions per link, Theorem 5.6)."""

from conftest import show_tables

from repro.core.synchronizer import ClockSynchronizer
from repro.experiments import run_experiment
from repro.graphs import ring
from repro.workloads.scenarios import heterogeneous


def test_e5_decomposition(benchmark, capsys):
    tables = run_experiment("E5", quick=True)
    show_tables(capsys, tables)
    link_table, system_table = tables
    assert all(row[-1] for row in link_table.rows)
    assert all(row[-1] for row in system_table.rows)

    scenario = heterogeneous(ring(6), seed=0)
    alpha = scenario.run()
    views = alpha.views()
    synchronizer = ClockSynchronizer(scenario.system)

    result = benchmark(lambda: synchronizer.from_views(views))
    assert result.is_fully_synchronized
