"""Micro-benchmarks for the substrate kernels, independent of any
experiment: simulator event throughput, view extraction, estimated-delay
matching.  These guard the constant factors the experiment benches sit on.
"""

from repro.core.estimates import estimated_delays, local_shift_estimates
from repro.graphs import ring
from repro.sim.network import NetworkSimulator
from repro.sim.protocols import probe_automata, probe_schedule
from repro.workloads.scenarios import bounded_uniform


def _big_execution():
    scenario = bounded_uniform(
        ring(10), lb=1.0, ub=3.0, probes=10, spacing=2.0, seed=0
    )
    return scenario, scenario.run()


def test_simulator_throughput(benchmark):
    scenario = bounded_uniform(
        ring(10), lb=1.0, ub=3.0, probes=10, spacing=2.0, seed=0
    )

    def run():
        sim = NetworkSimulator(
            scenario.system, scenario.samplers, scenario.start_times, seed=0
        )
        return sim.run(
            dict(
                probe_automata(
                    scenario.topology, probe_schedule(10, 11.0, 2.0)
                )
            )
        )

    alpha = benchmark(run)
    # 10 processors x 2 neighbours x 10 rounds = 200 messages.
    assert len(alpha.message_records()) == 200


def test_view_extraction(benchmark):
    _, alpha = _big_execution()
    views = benchmark(alpha.views)
    assert len(views) == 10


def test_estimated_delay_matching(benchmark):
    _, alpha = _big_execution()
    views = alpha.views()
    est = benchmark(lambda: estimated_delays(views))
    assert sum(len(v) for v in est.values()) == 200


def test_local_shift_estimates(benchmark):
    scenario, alpha = _big_execution()
    views = alpha.views()
    mls = benchmark(lambda: local_shift_estimates(scenario.system, views))
    assert len(mls) == 20  # both directions of 10 ring links
