"""E11 bench: regenerate the windowed-bias tables; time the windowed
local-estimate computation (pairwise, the only super-linear-in-messages
stage of the whole pipeline)."""

import random

from conftest import show_tables

from repro._types import INF
from repro.experiments import run_experiment
from repro.extensions.windowed_bias import TimedObservation, WindowedBias


def test_e11_windowed(benchmark, capsys):
    tables = run_experiment("E11", quick=True)
    show_tables(capsys, tables)
    equivalence, sweep = tables
    assert all(row[-1] for row in equivalence.rows)
    # The unsound all-pairs row (W = inf) must be flagged every time.
    inf_row = next(row for row in sweep.rows if row[0] == INF)
    flagged, runs = inf_row[-1].split("/")
    assert flagged == runs

    rng = random.Random(0)
    fwd = [
        TimedObservation(rng.uniform(0, 100), rng.uniform(4, 6))
        for _ in range(40)
    ]
    rev = [
        TimedObservation(rng.uniform(0, 100), rng.uniform(4, 6))
        for _ in range(40)
    ]
    model = WindowedBias(bias=0.5, window=10.0)
    value = benchmark(lambda: model.mls_bound(fwd, rev))
    assert value <= min(o.delay for o in fwd)
