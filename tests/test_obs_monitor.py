"""Tests for the invariant monitors (repro.obs.monitor)."""

import dataclasses

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.obs import recording
from repro.obs.monitor import (
    ClosureStructureMonitor,
    MlsSoundnessMonitor,
    MonitorSuite,
    MonitorViolationError,
    OptimalityMonitor,
    PrecisionBoundMonitor,
    Violation,
    default_monitors,
)


@pytest.fixture(scope="module")
def synced():
    from repro.graphs import ring
    from repro.workloads.scenarios import bounded_uniform

    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=42)
    alpha = scenario.run()
    result = ClockSynchronizer(scenario.system).from_execution(alpha)
    return scenario.system, alpha, result


class TestViolation:
    def test_to_dict_coerces_context(self):
        violation = Violation(
            monitor="m", reference="Thm", message="broke",
            sim_time=1.5, context={"edge": (0, 1), "value": 2.0},
        )
        data = violation.to_dict()
        assert data["record"] == "violation"
        assert data["context"]["edge"] == "(0, 1)"  # repr-coerced
        assert data["context"]["value"] == 2.0  # primitives pass through

    def test_strict_error_lists_violations(self):
        violations = [
            Violation(monitor="m", reference="r", message=f"v{i}")
            for i in range(7)
        ]
        error = MonitorViolationError(violations)
        text = str(error)
        assert "7 invariant violation(s)" in text
        assert "v0" in text and "... and 2 more" in text


class TestHonestRunsAreClean:
    def test_all_monitors_pass_on_complete_views(self, synced):
        system, alpha, result = synced
        for monitor in default_monitors():
            assert monitor.check(
                system, result, execution=alpha, complete=True
            ) == [], monitor.name

    def test_views_only_monitors_need_no_execution(self, synced):
        system, _, result = synced
        assert ClosureStructureMonitor().check(system, result) == []
        assert OptimalityMonitor().check(system, result) == []
        # Ground-truth monitors stay silent without ground truth.
        assert PrecisionBoundMonitor().check(system, result) == []
        assert MlsSoundnessMonitor().check(system, result) == []


class TestMonitorsCatchTampering:
    def test_closure_catches_nonzero_diagonal(self, synced):
        system, _, result = synced
        processor = next(iter(result.corrections))
        ms = dict(result.ms_tilde)
        ms[(processor, processor)] = 0.5
        tampered = dataclasses.replace(result, ms_tilde=ms)
        hits = ClosureStructureMonitor().check(system, tampered)
        assert any("expected 0" in v.message for v in hits)

    def test_closure_catches_broken_triangle(self, synced):
        system, _, result = synced
        (p, q), _ = next(
            (e, v) for e, v in result.ms_tilde.items() if e[0] != e[1]
        )
        ms = dict(result.ms_tilde)
        ms[(p, q)] = ms[(p, q)] + 100.0
        tampered = dataclasses.replace(result, ms_tilde=ms)
        hits = ClosureStructureMonitor().check(system, tampered)
        assert hits

    def test_optimality_catches_suboptimal_corrections(self, synced):
        system, _, result = synced
        corrections = dict(result.corrections)
        victim = next(iter(corrections))
        corrections[victim] += 50.0
        tampered = dataclasses.replace(result, corrections=corrections)
        hits = OptimalityMonitor().check(system, tampered)
        assert any("rho_bar" in v.message for v in hits)

    def test_precision_bound_catches_bad_corrections(self, synced):
        system, alpha, result = synced
        corrections = dict(result.corrections)
        victim = next(iter(corrections))
        corrections[victim] += 50.0
        tampered = dataclasses.replace(result, corrections=corrections)
        hits = PrecisionBoundMonitor().check(
            system, tampered, execution=alpha
        )
        assert any("realized spread" in v.message for v in hits)

    def test_soundness_catches_shrunken_bound(self, synced):
        system, alpha, result = synced
        starts = alpha.start_times()
        # Pick a pair with a positive true offset and shrink its bound
        # below the offset: the admissible interval no longer contains
        # the truth -- exactly what a corrupted d~ does.
        edge = max(
            (e for e in result.ms_tilde if e[0] != e[1]),
            key=lambda e: starts[e[0]] - starts[e[1]],
        )
        ms = dict(result.ms_tilde)
        ms[edge] = starts[edge[0]] - starts[edge[1]] - 1.0
        tampered = dataclasses.replace(result, ms_tilde=ms)
        hits = MlsSoundnessMonitor().check(
            system, tampered, execution=alpha
        )
        assert any("outside admissible bound" in v.message for v in hits)

    def test_soundness_identity_only_on_complete_views(self, synced):
        system, alpha, result = synced
        mls = dict(result.mls_tilde)
        edge = next(e for e in mls if e[0] != e[1])
        mls[edge] = mls[edge] + 0.5  # looser estimate: sound but inexact
        tampered = dataclasses.replace(result, mls_tilde=mls)
        monitor = MlsSoundnessMonitor()
        prefix_hits = monitor.check(system, tampered, execution=alpha)
        complete_hits = monitor.check(
            system, tampered, execution=alpha, complete=True
        )
        assert prefix_hits == []  # a looser prefix estimate is legal...
        assert any(  # ...but on complete views the identity must be exact
            "mls + S_p - S_q" in v.message for v in complete_hits
        )


class TestMonitorSuite:
    def test_observes_pipeline_results_via_recorder(self, synced):
        system, alpha, _ = synced
        with recording() as recorder:
            suite = MonitorSuite(execution=alpha)
            recorder.add_observer(suite)
            ClockSynchronizer(system).from_execution(alpha)
        assert suite.checks == 1
        assert suite.ok
        assert recorder.registry.counter("monitor.checks").value == 1.0

    def test_strict_mode_raises(self, synced):
        system, alpha, result = synced
        corrections = {p: x + 50.0 * (p == 0) for p, x in
                       result.corrections.items()}
        tampered = dataclasses.replace(result, corrections=corrections)
        suite = MonitorSuite(strict=True)
        with pytest.raises(MonitorViolationError):
            suite.check(system, tampered)

    def test_inconsistent_event_becomes_violation(self):
        with recording() as recorder:
            suite = MonitorSuite()
            recorder.add_observer(suite)
            recorder.emit(
                "online.inconsistent",
                error="negative cycle", sim_time=4.5, observations=9,
            )
        assert len(suite.violations) == 1
        violation = suite.violations[0]
        assert violation.monitor == "consistency"
        assert violation.sim_time == 4.5
        assert not suite.ok

    def test_check_stamps_sim_time_from_recorder(self, synced):
        system, _, result = synced
        tampered = dataclasses.replace(
            result, ms_tilde={**result.ms_tilde, (0, 0): 1.0}
        )
        with recording() as recorder:
            recorder.set_sim_time(12.25)
            suite = MonitorSuite()
            suite.check(system, tampered)
        assert suite.violations
        assert all(v.sim_time == 12.25 for v in suite.violations)

    def test_summary_table_includes_event_monitors(self, synced):
        system, alpha, _ = synced
        with recording() as recorder:
            suite = MonitorSuite(execution=alpha)
            recorder.add_observer(suite)
            ClockSynchronizer(system).from_execution(alpha)
            recorder.emit("online.inconsistent", error="x", sim_time=0.0)
        rendered = suite.summary_table().format()
        assert "closure-structure" in rendered
        assert "consistency" in rendered

    def test_check_final_enables_identity(self, synced):
        system, alpha, result = synced
        suite = MonitorSuite()
        assert suite.check_final(system, result, alpha) == []
        assert suite.checks == 1
