"""Transport counters through the telemetry plane (satellite of the
reliable-transport PR): heartbeats, fleet status, metrics exports.

Per-link retransmit/timeout/give-up counters flow from the machine's
observer into the ambient metrics registry; shard heartbeats scrape the
totals; ``campaign status`` sums them fleet-wide; the Prometheus text
endpoint exports every series.
"""

import json

from repro.obs import prometheus_text
from repro.obs.recorder import Recorder, recording
from repro.runner.heartbeat import (
    Heartbeat,
    HeartbeatWriter,
    read_heartbeat,
)
from repro.runner.status import FleetStatus, ShardStatus, fleet_status_lines
from repro.transport import (
    PER_LINK_EVENTS,
    ReliableTransport,
    TransportConfig,
    recorder_observer,
    transport_counter_snapshot,
)


def drive_lossy_machine():
    """One give-up's worth of transport traffic, observer attached."""
    machine = ReliableTransport(
        "p0",
        TransportConfig(rto_initial=1.0, rto_max=2.0, jitter=0.0,
                        max_retries=1),
        observer=recorder_observer(),
    )
    machine.send("p1", "payload", now=0.0)
    machine.on_timer(1.0)  # retransmit
    machine.on_timer(3.0)  # give up
    return machine


class TestCounterNamespace:
    def test_totals_and_per_link_series(self):
        with recording(Recorder()) as rec:
            drive_lossy_machine()
            snapshot = transport_counter_snapshot()
        assert snapshot["transport.retransmits"] == 1.0
        assert snapshot["transport.give_ups"] == 1.0
        assert snapshot["transport.link.'p0'->'p1'.retransmits"] == 1.0
        assert snapshot["transport.link.'p0'->'p1'.give_ups"] == 1.0
        # Only the flagged events get per-link series.
        assert "transport.link.'p0'->'p1'.handed" not in snapshot
        assert PER_LINK_EVENTS == {"retransmits", "timeouts", "give_ups"}
        # RTT rides a histogram, not a counter.
        assert rec.registry.histogram("transport.rtt_seconds") is not None

    def test_snapshot_without_per_link(self):
        with recording(Recorder()):
            drive_lossy_machine()
            snapshot = transport_counter_snapshot(per_link=False)
        assert "transport.retransmits" in snapshot
        assert not any(".link." in name for name in snapshot)

    def test_snapshot_empty_when_disabled(self):
        assert transport_counter_snapshot() == {}


class TestHeartbeatField:
    def _roundtrip(self, beat):
        return Heartbeat.from_json(json.loads(json.dumps(beat.to_json())))

    def test_transport_round_trips(self, tmp_path):
        writer = HeartbeatWriter(
            tmp_path,
            transport_source=lambda: {"transport.retransmits": 7.0},
        )
        writer.begin(total=4)
        beat = read_heartbeat(writer.path)
        assert beat.transport == {"transport.retransmits": 7.0}
        assert self._roundtrip(beat).transport == beat.transport

    def test_default_source_scrapes_registry(self, tmp_path):
        with recording(Recorder()):
            drive_lossy_machine()
            writer = HeartbeatWriter(tmp_path)
            writer.begin(total=1)
        beat = read_heartbeat(writer.path)
        assert beat.transport["transport.retransmits"] == 1.0
        # Heartbeats stay shard-level: no per-link series.
        assert not any(".link." in name for name in beat.transport)

    def test_failing_source_never_fails_the_beat(self, tmp_path):
        def broken():
            raise RuntimeError("scrape exploded")

        writer = HeartbeatWriter(tmp_path, transport_source=broken)
        writer.begin(total=1)
        beat = read_heartbeat(writer.path)
        assert beat is not None
        assert beat.transport == {}

    def test_legacy_heartbeat_without_transport_decodes(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, transport_source=lambda: {})
        writer.begin(total=1)
        data = json.loads(writer.path.read_text())
        data.pop("transport")
        assert Heartbeat.from_json(data).transport == {}


def make_shard(index, transport):
    return ShardStatus(
        manifest=f"results/manifest-{index}.json",
        shard=(index, 2),
        state="running",
        cells_own=4,
        cells_completed=2,
        cells_quarantined=0,
        age_seconds=1.0,
        throughput=None,
        eta_seconds=None,
        current_cell=None,
        current_cell_seconds=None,
        pid=None,
        host=None,
        source="heartbeat",
        transport=transport,
    )


class TestFleetStatus:
    def test_fleet_sums_shard_transport(self):
        fleet = FleetStatus(
            shards=(
                make_shard(1, {"transport.retransmits": 3.0,
                               "transport.give_ups": 1.0}),
                make_shard(2, {"transport.retransmits": 2.0}),
            ),
            stall_after=120.0,
            grid_cells=8,
            gap_cells=0,
        )
        assert fleet.transport == {
            "transport.retransmits": 5.0,
            "transport.give_ups": 1.0,
        }
        assert fleet.to_json()["transport"] == fleet.transport
        assert fleet.health_json()["transport"] == fleet.transport

    def test_status_lines_mention_transport(self):
        fleet = FleetStatus(
            shards=(make_shard(1, {"transport.retransmits": 3.0,
                                   "transport.give_ups": 1.0}),),
            stall_after=120.0,
            grid_cells=4,
            gap_cells=0,
        )
        summary = "\n".join(fleet_status_lines(fleet))
        assert "transport: 3 retransmit(s), 1 give-up(s)" in summary

    def test_status_lines_silent_without_transport(self):
        fleet = FleetStatus(
            shards=(make_shard(1, {}),),
            stall_after=120.0,
            grid_cells=4,
            gap_cells=0,
        )
        assert "transport" not in "\n".join(fleet_status_lines(fleet))


class TestPrometheusExport:
    def test_transport_series_exported(self):
        from repro.transport import AckSegment

        with recording(Recorder()) as rec:
            machine = drive_lossy_machine()
            # One clean exchange with another peer: an RTT sample lands
            # in the histogram series.
            machine.send("p2", "payload", now=0.0)
            machine.on_frame(
                AckSegment(src="p2", dst="p0", cum=1), now=0.05
            )
            text = prometheus_text(rec.registry)
        assert "transport_retransmits" in text
        assert "transport_give_ups" in text
        assert "transport_rtt_seconds" in text
