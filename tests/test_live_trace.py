"""Probe logs and their synthetic views (repro.live.trace).

ISSUE requirements covered here:

* a probe log's views feed the batch pipeline and recover exactly the
  estimated delays d~ = recv_clock - send_clock of the live traffic;
* cuts are prefixes: ``views(cut)`` sees exactly the first ``cut``
  admitted observations;
* the JSONL round trip is lossless, torn tails are tolerated (crash
  mid-append), and interior corruption is an error.
"""

import json

import pytest

from repro.core.estimates import estimated_delays
from repro.live.trace import (
    PROBE_RECORD_TYPE,
    ProbeLog,
    ProbeLogError,
    load_probe_log,
    record_from_json,
    record_to_json,
    validate_probe_log_file,
    views_from_probes,
    write_probe_log,
)
from repro.live.wire import Report


def make_records():
    return [
        Report(sender="p", receiver="q", seq=0, send_clock=1.0,
               recv_clock=3.5),
        Report(sender="q", receiver="p", seq=0, send_clock=2.0,
               recv_clock=2.25),
        Report(sender="p", receiver="q", seq=1, send_clock=4.0,
               recv_clock=6.0),
    ]


class TestProbeLog:
    def test_append_returns_cut(self):
        log = ProbeLog()
        cuts = [log.append(r) for r in make_records()]
        assert cuts == [1, 2, 3]
        assert len(log) == 3

    def test_duplicate_rejected(self):
        log = ProbeLog(make_records())
        with pytest.raises(ProbeLogError, match="duplicate"):
            log.append(make_records()[0])

    def test_processors_sorted(self):
        assert ProbeLog(make_records()).processors() == ["p", "q"]

    def test_views_cut_is_a_prefix(self):
        log = ProbeLog(make_records())
        full = log.views(processors=("p", "q"))
        first = log.views(1, processors=("p", "q"))
        # Cut 1 holds only the first record: one send at p, one receive
        # at q, nothing else.
        assert len(first["p"].steps) == 1
        assert len(first["q"].steps) == 1
        assert len(full["p"].steps) == 3
        assert len(full["q"].steps) == 3

    def test_views_recover_live_estimated_delays(self):
        records = make_records()
        views = views_from_probes(records, processors=("p", "q"))
        delays = estimated_delays(views)
        assert delays[("p", "q")] == [2.5, 2.0]
        assert delays[("q", "p")] == [0.25]

    def test_empty_processor_gets_empty_view(self):
        views = views_from_probes(make_records(),
                                  processors=("p", "q", "r"))
        assert views["r"].steps == ()


class TestJsonlRoundTrip:
    def test_lossless(self, tmp_path):
        path = write_probe_log(tmp_path / "probes.jsonl",
                               ProbeLog(make_records()))
        loaded = load_probe_log(path)
        assert list(loaded) == make_records()
        assert validate_probe_log_file(path) == 3

    def test_record_type_tag(self):
        data = record_to_json(make_records()[0])
        assert data["type"] == PROBE_RECORD_TYPE
        assert record_from_json(data) == make_records()[0]

    def test_wrong_type_tag_rejected(self):
        data = record_to_json(make_records()[0])
        data["type"] = "something.else"
        with pytest.raises(ProbeLogError):
            record_from_json(data)

    def test_torn_tail_tolerated(self, tmp_path):
        path = write_probe_log(tmp_path / "probes.jsonl", make_records())
        with path.open("a") as fh:
            fh.write('{"type": "live.probe", "sender": "p", "rec')
        loaded = load_probe_log(path)
        assert len(loaded) == 3  # torn final line dropped

    def test_interior_corruption_is_an_error(self, tmp_path):
        records = make_records()
        path = tmp_path / "probes.jsonl"
        lines = [json.dumps(record_to_json(r)) for r in records]
        lines.insert(1, "not json at all")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ProbeLogError, match=":2:"):
            load_probe_log(path)

    def test_duplicate_in_file_is_an_error(self, tmp_path):
        records = make_records() + [make_records()[0]]
        path = tmp_path / "probes.jsonl"
        path.write_text(
            "\n".join(json.dumps(record_to_json(r)) for r in records)
        )
        with pytest.raises(ProbeLogError, match="duplicate"):
            load_probe_log(path)
