"""Integration tests for the synchronizer facade (repro.core.synchronizer)."""

import pytest

from repro._types import INF
from repro.core.precision import realized_spread, rho_bar
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay, no_bounds
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.model.execution import shift_execution
from repro.workloads.scenarios import bounded_uniform, heterogeneous

from conftest import make_two_node_execution


class TestPipelineOnHandExecutions:
    def test_two_node_symmetric_midpoint_case(self):
        """Delays exactly 2.0 each way under [1, 3]: optimal precision is
        (ub - lb)/2 = 1.0 and corrected starts coincide exactly."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(1.0)
        assert realized_spread(
            alpha.start_times(), result.corrections
        ) == pytest.approx(0.0)

    def test_two_node_tight_delays(self):
        """Delays at the bounds pin the execution: precision 0... not
        quite -- delays at lb both ways still allow shifting within
        (ub - lb); check the exact formula instead."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [1.0], [3.0])
        # mls(0,1) = min(3-3, 1-1) = 0; mls(1,0) = min(3-1, 3-1) = 2.
        # A^max = (0 + 2)/2 = 1.
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(1.0)

    def test_perfectly_constrained_execution(self):
        """lb == ub: delays carry full information, precision is 0."""
        system = System.uniform(line(2), BoundedDelay.symmetric(2.0, 2.0))
        alpha = make_two_node_execution(3.0, 9.0, [2.0], [2.0])
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(0.0)
        assert realized_spread(
            alpha.start_times(), result.corrections
        ) == pytest.approx(0.0)


class TestClaim31:
    """Corrections are a function of views only."""

    def test_equivalent_executions_get_identical_results(self):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=8)
        alpha = scenario.run()
        sync = ClockSynchronizer(scenario.system)
        base = sync.from_execution(alpha)

        shifted = shift_execution(alpha, {0: 0.3, 2: -0.1, 4: 0.05})
        again = sync.from_execution(shifted)
        assert again.corrections == pytest.approx(base.corrections)
        assert again.precision == pytest.approx(base.precision)
        assert again.ms_tilde == pytest.approx(base.ms_tilde)


class TestComponents:
    def test_disconnected_info_splits_components(self):
        system = System.uniform(line(3), no_bounds())
        # Traffic only on link (0,1), both ways; link (1,2) silent.
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [2.0])
        # Extend to 3 processors: give 2 an empty-but-started history.
        from conftest import build_history

        histories = dict(alpha.histories)
        histories[2] = build_history(2, 0.0, [], [])
        from repro.model.execution import Execution

        alpha3 = Execution(histories)
        result = ClockSynchronizer(system).from_execution(alpha3)
        assert result.precision == INF
        assert not result.is_fully_synchronized
        assert len(result.components) == 2
        sizes = sorted(len(c.processors) for c in result.components)
        assert sizes == [1, 2]
        # The 2-processor component still has a finite certified precision.
        big = max(result.components, key=lambda c: len(c.processors))
        assert big.precision == pytest.approx(2.0)  # dmin each way = 2.0

    def test_missing_views_rejected(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=0)
        alpha = scenario.run()
        views = alpha.views()
        del views[2]
        with pytest.raises(ValueError, match="missing"):
            ClockSynchronizer(scenario.system).from_views(views)

    def test_unknown_root_rejected(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=0)
        with pytest.raises(ValueError, match="root"):
            ClockSynchronizer(scenario.system, root=77)

    def test_requested_root_used(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=0)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system, root=3).from_execution(
            alpha
        )
        assert result.components[0].root == 3
        assert result.corrections[3] == pytest.approx(0.0)


class TestGracefulDegradation:
    """allow_partial: incomplete views degrade, never lie (ISSUE 5)."""

    @pytest.fixture
    def crashed(self):
        """A ring-4 run whose processor 2 lost its view entirely."""
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=0)
        alpha = scenario.run()
        views = alpha.views()
        del views[2]
        return scenario, alpha, views

    def test_partial_views_accepted_and_accounted(self, crashed):
        scenario, _, views = crashed
        result = ClockSynchronizer(scenario.system).from_views(
            views, allow_partial=True
        )
        assert result.is_degraded
        assert result.degraded.missing_views == (2,)
        # Receives of messages 2 sent survive in the other views but
        # their sends are lost: skipped and counted, not raised.
        assert result.degraded.orphan_receives > 0
        # Both of 2's links lost all samples, so 2 ends up alone.
        assert result.degraded.isolated_processors == (2,)
        assert len(result.components) == 2

    def test_degraded_corrections_stay_sound(self, crashed):
        """The surviving component's certified precision still covers the
        realized spread of its processors -- degradation is conservative."""
        scenario, alpha, views = crashed
        result = ClockSynchronizer(scenario.system).from_views(
            views, allow_partial=True
        )
        survivors = max(
            result.components, key=lambda c: len(c.processors)
        )
        assert set(survivors.processors) == {0, 1, 3}
        assert survivors.precision != INF
        starts = {
            p: t
            for p, t in alpha.start_times().items()
            if p in survivors.processors
        }
        corrections = {
            p: result.corrections[p] for p in survivors.processors
        }
        assert (
            realized_spread(starts, corrections)
            <= survivors.precision + 1e-9
        )

    def test_partial_estimated_delays_counts_orphans(self, crashed):
        from repro.core.estimates import (
            estimated_delays,
            partial_estimated_delays,
        )

        scenario, alpha, views = crashed
        full = estimated_delays(alpha.views())
        delays, orphans = partial_estimated_delays(views)
        sent_by_2 = sum(
            len(values) for edge, values in full.items() if edge[0] == 2
        )
        assert orphans == sent_by_2 > 0
        # Surviving edges keep exactly their fault-free samples.
        assert delays == {
            edge: values for edge, values in full.items() if 2 not in edge
        }

    def test_clean_run_is_not_degraded(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=0)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        assert not result.is_degraded
        assert result.degraded is None

    def test_root_substitution_is_recorded(self, crashed):
        scenario, _, views = crashed
        result = ClockSynchronizer(scenario.system, root=2).from_views(
            views, allow_partial=True
        )
        (substitution,) = [
            s for s in result.degraded.root_substitutions if s[0] == 2
        ]
        assert substitution[1] in {0, 1, 3}

    def test_degraded_lines_describe_the_damage(self, crashed):
        scenario, _, views = crashed
        result = ClockSynchronizer(scenario.system).from_views(
            views, allow_partial=True
        )
        text = "\n".join(result.degraded.lines())
        assert "orphan" in text
        assert "isolated" in text


class TestSyncResultHelpers:
    def test_corrected_clock(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=1)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        p = 2
        assert result.corrected_clock(p, 10.0) == pytest.approx(
            10.0 + result.corrections[p]
        )

    def test_pair_precision_bounded_by_global(self):
        scenario = heterogeneous(ring(5), seed=2)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        procs = list(scenario.system.processors)
        for p in procs:
            for q in procs:
                if p != q:
                    assert (
                        result.pair_precision(p, q)
                        <= result.precision + 1e-9
                    )

    def test_guaranteed_rho_bar_equals_precision(self):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=5)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        assert result.guaranteed_rho_bar() == pytest.approx(result.precision)

    def test_realized_spread_within_precision(self):
        for seed in range(3):
            scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
            alpha = scenario.run()
            result = ClockSynchronizer(scenario.system).from_execution(alpha)
            assert (
                realized_spread(alpha.start_times(), result.corrections)
                <= result.precision + 1e-9
            )
