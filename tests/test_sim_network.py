"""Unit and integration tests for the network simulator (repro.sim.network)."""

import pytest

from repro.delays.bounds import BoundedDelay, no_bounds
from repro.delays.distributions import Constant, UniformDelay
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.model.events import StartEvent, TimerEvent
from repro.sim.network import (
    NetworkSimulator,
    SimulationConfig,
    SimulationError,
    draw_start_times,
)
from repro.sim.processor import Automaton, IdleAutomaton, Send, SetTimer, Transition
from repro.sim.protocols import probe_automata, probe_schedule


def bounded_system(topo, lb=1.0, ub=3.0):
    return System.uniform(topo, BoundedDelay.symmetric(lb, ub))


def constant_samplers(topo, value=2.0):
    return {link: Constant(value) for link in topo.links}


class TestBasicRuns:
    def test_idle_network_produces_start_only_histories(self):
        topo = line(3)
        sim = NetworkSimulator(
            bounded_system(topo),
            constant_samplers(topo),
            {p: float(p) for p in topo.nodes},
        )
        alpha = sim.run({p: IdleAutomaton() for p in topo.nodes})
        for p in topo.nodes:
            h = alpha.history(p)
            assert len(h) == 1
            assert isinstance(h.steps[0].step.interrupt, StartEvent)
            assert h.start_time == float(p)

    def test_probe_run_validates_and_counts_messages(self):
        topo = ring(4)
        starts = draw_start_times(topo.nodes, 5.0, seed=1)
        sim = NetworkSimulator(
            bounded_system(topo), constant_samplers(topo), starts, seed=1
        )
        alpha = sim.run(dict(probe_automata(topo, probe_schedule(2, 6.0, 2.0))))
        # 4 processors x 2 neighbours x 2 rounds = 16 messages.
        assert len(alpha.message_records()) == 16
        alpha.validate()

    def test_constant_delays_recorded_exactly(self):
        topo = line(2)
        sim = NetworkSimulator(
            bounded_system(topo),
            constant_samplers(topo, 2.5),
            {0: 0.0, 1: 1.0},
        )
        alpha = sim.run(dict(probe_automata(topo, probe_schedule(1, 2.0, 1.0))))
        for record in alpha.message_records().values():
            assert record.delay == pytest.approx(2.5)

    def test_determinism(self):
        topo = ring(5)
        starts = draw_start_times(topo.nodes, 5.0, seed=3)
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}

        def run_once():
            sim = NetworkSimulator(
                bounded_system(topo), samplers, starts, seed=7
            )
            alpha = sim.run(
                dict(probe_automata(topo, probe_schedule(2, 6.0, 2.0)))
            )
            return sorted(
                (r.edge, round(r.delay, 12))
                for r in alpha.message_records().values()
            )

        assert run_once() == run_once()

    def test_draw_start_times_deterministic_and_bounded(self):
        a = draw_start_times(range(10), 5.0, seed=2)
        b = draw_start_times(range(10), 5.0, seed=2)
        assert a == b
        assert all(0.0 <= v <= 5.0 for v in a.values())


class TestDeliveryEdgeCases:
    def test_pre_start_arrival_held_until_start(self):
        """A message to a late starter is delivered at its start instant."""
        topo = line(2)
        system = System.uniform(topo, no_bounds())
        sim = NetworkSimulator(
            system,
            constant_samplers(topo, 0.5),
            {0: 0.0, 1: 100.0},
        )
        alpha = sim.run(
            dict(probe_automata(topo, probe_schedule(1, 1.0, 1.0)))
        )
        record = alpha.records_on_edge(0, 1)[0]
        # Sent at real 1.0 with sampled delay 0.5, but held until S_1.
        assert record.receive_real_time == pytest.approx(100.0)
        assert record.delay == pytest.approx(99.0)
        alpha.validate()


class TestConfigurationErrors:
    def test_missing_sampler(self):
        topo = line(3)
        with pytest.raises(SimulationError, match="without samplers"):
            NetworkSimulator(
                bounded_system(topo),
                {(0, 1): Constant(2.0)},
                {p: 0.0 for p in topo.nodes},
            )

    def test_sampler_for_non_link(self):
        topo = line(3)
        samplers = constant_samplers(topo)
        samplers[(0, 2)] = Constant(2.0)
        with pytest.raises(SimulationError, match="non-link"):
            NetworkSimulator(
                bounded_system(topo), samplers, {p: 0.0 for p in topo.nodes}
            )

    def test_non_canonical_sampler_key(self):
        topo = line(2)
        with pytest.raises(SimulationError, match="non-canonical"):
            NetworkSimulator(
                bounded_system(topo),
                {(1, 0): Constant(2.0)},
                {0: 0.0, 1: 0.0},
            )

    def test_missing_start_time(self):
        topo = line(2)
        with pytest.raises(SimulationError, match="start times"):
            NetworkSimulator(
                bounded_system(topo), constant_samplers(topo), {0: 0.0}
            )

    def test_missing_automaton(self):
        topo = line(2)
        sim = NetworkSimulator(
            bounded_system(topo), constant_samplers(topo), {0: 0.0, 1: 0.0}
        )
        with pytest.raises(SimulationError, match="automata"):
            sim.run({0: IdleAutomaton()})


class _BadTimerAutomaton(Automaton):
    def initial_state(self):
        return 0

    def on_interrupt(self, state, clock_time, event):
        if isinstance(event, StartEvent):
            return Transition.to(1, timers=(SetTimer(0.0),))  # not future
        return Transition.to(state)


class _SendToStrangerAutomaton(Automaton):
    def initial_state(self):
        return 0

    def on_interrupt(self, state, clock_time, event):
        if isinstance(event, StartEvent):
            return Transition.to(1, timers=(SetTimer(1.0),))
        if isinstance(event, TimerEvent):
            return Transition.to(2, sends=(Send(to=99, payload="?"),))
        return Transition.to(state)


class _ForeverAutomaton(Automaton):
    def initial_state(self):
        return 0

    def on_interrupt(self, state, clock_time, event):
        return Transition.to(state + 1, timers=(SetTimer(clock_time + 1.0),))


class _WrongReturnAutomaton(Automaton):
    def initial_state(self):
        return 0

    def on_interrupt(self, state, clock_time, event):
        return "not a transition"


class TestRuntimeErrors:
    def _sim(self, topo=None):
        topo = topo or line(2)
        return NetworkSimulator(
            bounded_system(topo),
            constant_samplers(topo),
            {p: 0.0 for p in topo.nodes},
        )

    def test_non_future_timer_rejected(self):
        with pytest.raises(SimulationError, match="future"):
            self._sim().run({0: _BadTimerAutomaton(), 1: IdleAutomaton()})

    def test_send_to_non_neighbor_rejected(self):
        with pytest.raises(SimulationError, match="no such link"):
            self._sim().run({0: _SendToStrangerAutomaton(), 1: IdleAutomaton()})

    def test_runaway_protocol_hits_event_budget(self):
        topo = line(2)
        sim = NetworkSimulator(
            bounded_system(topo),
            constant_samplers(topo),
            {0: 0.0, 1: 0.0},
            config=SimulationConfig(max_events=50),
        )
        with pytest.raises(SimulationError, match="budget"):
            sim.run({0: _ForeverAutomaton(), 1: IdleAutomaton()})

    def test_wrong_transition_type_rejected(self):
        with pytest.raises(SimulationError, match="Transition"):
            self._sim().run({0: _WrongReturnAutomaton(), 1: IdleAutomaton()})

    def test_sampler_assumption_mismatch_detected(self):
        """A sampler outside the assumption's support fails the run."""
        topo = line(2)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        sim = NetworkSimulator(
            system, {(0, 1): Constant(10.0)}, {0: 0.0, 1: 0.0}
        )
        with pytest.raises(SimulationError, match="violate"):
            sim.run(dict(probe_automata(topo, probe_schedule(1, 1.0, 1.0))))

    def test_validation_can_be_disabled(self):
        topo = line(2)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        sim = NetworkSimulator(
            system,
            {(0, 1): Constant(10.0)},
            {0: 0.0, 1: 0.0},
            config=SimulationConfig(validate=False),
        )
        alpha = sim.run(dict(probe_automata(topo, probe_schedule(1, 1.0, 1.0))))
        assert not system.is_admissible(alpha)


class TestTimerSemantics:
    def test_duplicate_timer_set_fires_once(self):
        class DoubleSet(Automaton):
            def initial_state(self):
                return 0

            def on_interrupt(self, state, clock_time, event):
                if isinstance(event, StartEvent):
                    return Transition.to(
                        1, timers=(SetTimer(5.0), SetTimer(5.0))
                    )
                if isinstance(event, TimerEvent):
                    return Transition.to(state + 1)
                return Transition.to(state)

        topo = line(2)
        sim = NetworkSimulator(
            bounded_system(topo), constant_samplers(topo), {0: 0.0, 1: 0.0}
        )
        alpha = sim.run({0: DoubleSet(), 1: IdleAutomaton()})
        timer_steps = [
            ts
            for ts in alpha.history(0)
            if isinstance(ts.step.interrupt, TimerEvent)
        ]
        assert len(timer_steps) == 1
        alpha.validate()
