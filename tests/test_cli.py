"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import NOOP, get_recorder, validate_metrics_file, validate_trace_file


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["demo"],
            ["experiment", "E1"],
            ["experiment", "E1", "--quick"],
            ["all", "--quick"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "optimal precision" in out
        assert "critical cycle" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "yes" in out

    def test_experiment_lowercase_id(self, capsys):
        assert main(["experiment", "e2", "--quick"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E42"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_demo_prints_run_summary(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "events processed" in out
        assert "messages delivered" in out
        assert "peak queue depth" in out


class TestObservability:
    def test_demo_writes_parseable_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        assert main([
            "demo",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "metrics written" in out
        assert validate_trace_file(trace) > 0
        assert validate_metrics_file(metrics) > 0
        names = {
            json.loads(line)["name"]
            for line in metrics.read_text().splitlines()
        }
        assert any(n.startswith("sim.") for n in names)
        assert any(n.startswith("pipeline.") for n in names)
        assert any(n.startswith("engine.") for n in names)
        # the global recorder is restored to the no-op default
        assert get_recorder() is NOOP

    def test_experiment_timings_flag(self, capsys):
        assert main(["experiment", "E1", "--quick", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "engine stage timings" in out
        assert "global_estimates:" in out

    def test_profile_produces_report_and_files(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main([
            "profile", "E1", "--quick",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "top stages by self time" in out
        assert "sim.run" in out
        assert validate_trace_file(trace) > 0
        assert validate_metrics_file(metrics) > 0
        assert get_recorder() is NOOP

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "E42", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo_timings(self, capsys):
        assert main(["demo", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "engine: " in out
        assert "shifts:" in out

    def test_record_accepts_obs_flags(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main([
            "record", str(tmp_path / "out"),
            "--size", "4",
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "events processed" in out
        assert validate_metrics_file(metrics) > 0
