"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import NOOP, get_recorder, validate_metrics_file, validate_trace_file


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["demo"],
            ["experiment", "E1"],
            ["experiment", "E1", "--quick"],
            ["all", "--quick"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "optimal precision" in out
        assert "critical cycle" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "yes" in out

    def test_experiment_lowercase_id(self, capsys):
        assert main(["experiment", "e2", "--quick"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E42"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_demo_prints_run_summary(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "events processed" in out
        assert "messages delivered" in out
        assert "peak queue depth" in out


class TestObservability:
    def test_demo_writes_parseable_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        assert main([
            "demo",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "metrics written" in out
        assert validate_trace_file(trace) > 0
        assert validate_metrics_file(metrics) > 0
        names = {
            json.loads(line)["name"]
            for line in metrics.read_text().splitlines()
        }
        assert any(n.startswith("sim.") for n in names)
        assert any(n.startswith("pipeline.") for n in names)
        assert any(n.startswith("engine.") for n in names)
        # the global recorder is restored to the no-op default
        assert get_recorder() is NOOP

    def test_experiment_timings_flag(self, capsys):
        assert main(["experiment", "E1", "--quick", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "engine stage timings" in out
        assert "global_estimates:" in out

    def test_profile_produces_report_and_files(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main([
            "profile", "E1", "--quick",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "top stages by self time" in out
        assert "sim.run" in out
        assert validate_trace_file(trace) > 0
        assert validate_metrics_file(metrics) > 0
        assert get_recorder() is NOOP

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "E42", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo_timings(self, capsys):
        assert main(["demo", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "engine: " in out
        assert "shifts:" in out

    def test_record_accepts_obs_flags(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main([
            "record", str(tmp_path / "out"),
            "--size", "4",
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "events processed" in out
        assert validate_metrics_file(metrics) > 0


class TestMonitorCommand:
    def test_parser_accepts_monitor_variants(self):
        parser = build_parser()
        for argv in (
            ["monitor", "bounded"],
            ["monitor", "hetero", "--size", "4", "--seed", "3"],
            ["monitor", "E8", "--quick", "--show-tables"],
            ["monitor", "bounded", "--corrupt"],
            ["monitor", "bounded", "--corrupt", "-2.5", "--strict"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_honest_workload_reports_zero_violations(self, capsys):
        assert main(["monitor", "bounded", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "online convergence over simulated time" in out
        assert "per-link delay-estimate error" in out
        assert "0 violations" in out
        assert "all invariants held" in out
        assert get_recorder() is NOOP

    def test_corruption_is_reported_but_exit_zero_by_default(self, capsys):
        assert main(["monitor", "bounded", "--corrupt"]) == 0
        out = capsys.readouterr().out
        assert "injecting corrupted delay estimate" in out
        assert "violation(s):" in out

    def test_corruption_with_strict_exits_nonzero(self, capsys):
        assert main(["monitor", "bounded", "--corrupt", "--strict"]) == 1

    def test_artifacts_written_and_valid(self, tmp_path, capsys):
        from repro.obs import validate_flow_trace_file
        from repro.obs.timeline import validate_timeline_file

        flow = tmp_path / "flow.json"
        timeline = tmp_path / "timeline.jsonl"
        assert main([
            "monitor", "bounded", "--size", "4",
            "--flow-out", str(flow),
            "--timeline-out", str(timeline),
        ]) == 0
        out = capsys.readouterr().out
        assert "flows written" in out and "timeline written" in out
        assert validate_flow_trace_file(flow) > 0
        assert validate_timeline_file(timeline) > 0

    def test_experiment_mode_checks_pipeline_results(self, capsys):
        assert main(["monitor", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        # E2 never runs the synchronization pipeline: the suite must say
        # so instead of vacuously claiming the invariants held.
        assert "nothing" in out and "all invariants held" not in out

    def test_unknown_workload(self, capsys):
        assert main(["monitor", "nonsense"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestCampaignCommand:
    def test_parser_accepts_campaign_variants(self):
        parser = build_parser()
        for argv in (
            ["campaign"],
            ["campaign", "--preset", "e9c", "--quick"],
            ["campaign", "--workers", "4", "--shard", "2/4"],
            ["campaign", "--resume", "--cells"],
            ["campaign", "--cache-dir", "x", "--results-out", "y.jsonl"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_workers_flag_on_other_subcommands(self):
        parser = build_parser()
        for argv in (
            ["experiment", "E1", "--workers", "2"],
            ["all", "--quick", "--workers", "2"],
            ["monitor", "bounded", "--workers", "2"],
        ):
            assert parser.parse_args(argv).workers == 2

    def test_demo_preset_runs_and_summarises(self, capsys):
        assert main(["campaign", "--quick", "--cells"]) == 0
        out = capsys.readouterr().out
        assert "Campaign (2 seeds per cell)" in out
        assert "campaign cells (grid order)" in out
        assert "bounded[1,3]" in out
        assert "cache:    0 hit(s)" in out

    def test_shard_runs_subset(self, capsys):
        assert main([
            "campaign", "--preset", "e9c", "--quick", "--shard", "1/2",
        ]) == 0
        out = capsys.readouterr().out
        assert "(shard 1/2)" in out

    def test_cache_resume_hits_on_second_run(self, tmp_path, capsys):
        argv = [
            "campaign", "--preset", "e9c", "--quick",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hit(s), 4 miss(es)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 hit(s), 0 miss(es)" in second

    def test_results_out_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.runner import validate_cell_results_file

        path = tmp_path / "cells.jsonl"
        assert main([
            "campaign", "--quick", "--results-out", str(path),
        ]) == 0
        assert "results written" in capsys.readouterr().out
        assert validate_cell_results_file(path) == 12

    def test_campaign_obs_flags(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main([
            "campaign", "--quick", "--metrics-out", str(metrics),
            "--timings",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine stage timings" in out
        assert validate_metrics_file(metrics) > 0
        names = {
            json.loads(line)["name"]
            for line in metrics.read_text().splitlines()
        }
        assert "campaign.cells.total" in names
        assert "campaign.cell.seconds" in names
        assert get_recorder() is NOOP


class TestRecordTelemetry:
    def test_record_with_telemetry_writes_v2_trace(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main([
            "record", str(out_dir), "--size", "4", "--with-telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "(+telemetry)" in out
        data = json.loads((out_dir / "trace.json").read_text())
        assert data["version"] == 2
        assert data["telemetry"]["messages"]
        assert data["telemetry"]["timeseries"]

    def test_record_without_telemetry_stays_v1(self, tmp_path):
        out_dir = tmp_path / "out"
        assert main(["record", str(out_dir), "--size", "4"]) == 0
        data = json.loads((out_dir / "trace.json").read_text())
        assert data["version"] == 1
        assert "telemetry" not in data


class TestBenchCommand:
    def _run_smoke(self, tmp_path, name="engine.karp[backend=numpy,n=32]"):
        out = tmp_path / "bench.json"
        history = tmp_path / "history.jsonl"
        code = main([
            "bench", "run", "--suite", "smoke", "--name", name,
            "--repeats", "2", "--warmup", "0",
            "--out", str(out), "--history", str(history),
        ])
        return code, out, history

    def test_parser_knows_bench_actions(self):
        parser = build_parser()
        for argv in (
            ["bench", "run", "--suite", "full"],
            ["bench", "compare", "cur.json", "--tolerance", "ci"],
            ["bench", "report", "--from", "r.json"],
        ):
            assert callable(parser.parse_args(argv).func)

    def test_bench_run_writes_valid_report_and_history(
        self, tmp_path, capsys
    ):
        from repro.bench import read_bench_report, validate_bench_file

        code, out, history = self._run_smoke(tmp_path)
        assert code == 0
        printed = capsys.readouterr().out
        assert "bench timings" in printed
        assert "bench memory" in printed
        assert validate_bench_file(out) == 1
        assert validate_bench_file(history) == 1
        report = read_bench_report(out)
        assert report.env.fingerprint
        (result,) = report.results
        assert result.wall.min > 0
        assert result.peak_tracemalloc_bytes > 0

    def test_bench_run_no_history(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "run", "--name", "engine.karp[backend=numpy,n=32]",
            "--repeats", "1", "--warmup", "0",
            "--out", str(out), "--no-history",
            "--history", str(tmp_path / "history.jsonl"),
        ]) == 0
        assert not (tmp_path / "history.jsonl").exists()

    def test_bench_run_unknown_selection_fails(self, tmp_path, capsys):
        assert main([
            "bench", "run", "--name", "no.such.bench", "--no-history",
            "--history", str(tmp_path / "h.jsonl"),
        ]) == 2
        assert "no benchmarks selected" in capsys.readouterr().err

    def test_bench_compare_identical_passes(self, tmp_path, capsys):
        code, out, _ = self._run_smoke(tmp_path)
        assert code == 0
        assert main([
            "bench", "compare", str(out), "--baseline", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "bench compare" in printed

    def test_bench_compare_detects_injected_2x_slowdown(
        self, tmp_path, capsys
    ):
        code, out, _ = self._run_smoke(tmp_path)
        assert code == 0
        slowed = tmp_path / "slowed.json"
        data = json.loads(out.read_text())
        for result in data["results"]:
            for series in ("wall", "cpu"):
                stats = result[series]
                stats["samples"] = [s * 2 for s in stats["samples"]]
                for key in ("min", "median", "mean", "trimmed_mean", "max"):
                    stats[key] *= 2
        slowed.write_text(json.dumps(data))
        capsys.readouterr()
        assert main([
            "bench", "compare", str(slowed), "--baseline", str(out),
        ]) == 1
        printed = capsys.readouterr().out
        assert "REGRESSION" in printed

    def test_bench_compare_unreadable_is_exit_2(self, tmp_path, capsys):
        assert main([
            "bench", "compare", str(tmp_path / "missing.json"),
            "--baseline", str(tmp_path / "missing.json"),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_bench_report_from_archived_file(self, tmp_path, capsys):
        code, out, _ = self._run_smoke(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main(["bench", "report", "--from", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "bench timings" in printed
        assert "engine.karp" in printed

    def test_profile_prints_peak_memory(self, capsys):
        assert main(["profile", "E1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "peak memory:" in out
        assert "process.tracemalloc_peak_bytes" in out
        assert "process.peak_rss_bytes" in out


class TestLiveCommand:
    def test_parser_accepts_live_variants(self):
        parser = build_parser()
        for argv in (
            ["live", "smoke"],
            ["live", "smoke", "--peers", "3", "--queries", "100",
             "--min-qps", "50", "--json"],
            ["live", "replay", "probes.jsonl"],
            ["serve", "--peers", "4", "--duration", "1",
             "--serve-metrics", "0"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_live_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["live"])

    def test_live_smoke_audits_and_reports(self, tmp_path, capsys):
        log_out = tmp_path / "probes.jsonl"
        assert main([
            "live", "smoke", "--peers", "3", "--queries", "120",
            "--warmup", "12", "--interval", "0.005",
            "--probe-log-out", str(log_out), "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok_answers"] == 120
        assert summary["replay_ok"] is True
        assert summary["request_p99_seconds"] > 0
        assert log_out.exists()

    def test_live_smoke_min_qps_gate(self, capsys):
        # An impossible threshold must turn into exit code 1.
        assert main([
            "live", "smoke", "--peers", "2", "--queries", "50",
            "--warmup", "6", "--interval", "0.005",
            "--min-qps", "1e12",
        ]) == 1
        assert "below the --min-qps" in capsys.readouterr().err

    def test_live_replay_round_trip(self, tmp_path, capsys):
        log_out = tmp_path / "probes.jsonl"
        assert main([
            "live", "smoke", "--peers", "2", "--queries", "40",
            "--warmup", "6", "--interval", "0.005",
            "--probe-log-out", str(log_out), "--json",
        ]) == 0
        capsys.readouterr()
        assert main(["live", "replay", str(log_out)]) == 0
        out = capsys.readouterr().out
        assert "precision:" in out and "corrections:" in out

    def test_live_replay_missing_file_is_exit_2(self, capsys):
        assert main(["live", "replay", "/nonexistent/probes.jsonl"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_serve_runs_for_duration_and_serves_metrics(self, capsys):
        """The foreground server scrapes clean while it is alive."""
        import socket
        import threading
        import time
        import urllib.request

        # Reserve an ephemeral port for the sidecar; the tiny window
        # between closing and serve reusing it is fine for a test.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        exit_code = {}

        def run_serve():
            exit_code["value"] = main([
                "serve", "--peers", "2", "--duration", "3.0",
                "--serve-metrics", str(port),
            ])

        thread = threading.Thread(target=run_serve)
        thread.start()
        url = f"http://127.0.0.1:{port}"
        health = metrics = None
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    url + "/healthz", timeout=2
                ) as response:
                    health = json.loads(response.read())
                with urllib.request.urlopen(
                    url + "/metrics", timeout=2
                ) as response:
                    metrics = response.read().decode()
                break
            except OSError:
                time.sleep(0.1)
        thread.join(timeout=15)
        assert exit_code["value"] == 0
        assert health is not None and health["status"] == "pending"
        assert health["healthy"] is True
        assert metrics is not None  # the Prometheus surface answered
        out = capsys.readouterr().out
        assert "correction server on" in out
