"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["demo"],
            ["experiment", "E1"],
            ["experiment", "E1", "--quick"],
            ["all", "--quick"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "optimal precision" in out
        assert "critical cycle" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "yes" in out

    def test_experiment_lowercase_id(self, capsys):
        assert main(["experiment", "e2", "--quick"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E42"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
