"""Unit tests for topology builders (repro.graphs.topology)."""

import pytest

from repro.graphs.topology import (
    Topology,
    binary_tree,
    complete,
    grid,
    hypercube,
    line,
    random_connected,
    ring,
    star,
)


class TestValidation:
    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="self-link"):
            Topology(name="bad", nodes=(0, 1), links=((0, 0),))

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(name="bad", nodes=(0, 1), links=((0, 1), (1, 0)))

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Topology(name="bad", nodes=(0, 1), links=((0, 2),))


class TestBuilders:
    def test_line(self):
        t = line(5)
        assert t.n == 5
        assert len(t.links) == 4
        assert t.is_connected()
        assert t.neighbors(0) == [1]
        assert sorted(t.neighbors(2)) == [1, 3]

    def test_line_of_one(self):
        t = line(1)
        assert t.n == 1 and t.links == ()
        assert t.is_connected()

    def test_ring(self):
        t = ring(6)
        assert len(t.links) == 6
        assert all(len(t.neighbors(v)) == 2 for v in t.nodes)
        assert t.is_connected()

    def test_ring_requires_three(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_star(self):
        t = star(7)
        assert len(t.neighbors(0)) == 6
        assert all(t.neighbors(v) == [0] for v in range(1, 7))

    def test_complete(self):
        t = complete(5)
        assert len(t.links) == 10
        assert all(len(t.neighbors(v)) == 4 for v in t.nodes)

    def test_grid(self):
        t = grid(3, 4)
        assert t.n == 12
        assert len(t.links) == 3 * 3 + 2 * 4  # horizontal + vertical
        assert t.is_connected()
        # Corner has 2 neighbours, interior has 4.
        assert len(t.neighbors(0)) == 2
        assert len(t.neighbors(5)) == 4

    def test_binary_tree(self):
        t = binary_tree(3)
        assert t.n == 15
        assert len(t.links) == 14
        assert t.is_connected()

    def test_hypercube(self):
        t = hypercube(3)
        assert t.n == 8
        assert len(t.links) == 12
        assert all(len(t.neighbors(v)) == 3 for v in t.nodes)

    def test_random_connected_is_connected(self):
        for seed in range(5):
            t = random_connected(12, extra_link_prob=0.1, seed=seed)
            assert t.is_connected()
            assert t.n == 12

    def test_random_connected_deterministic(self):
        a = random_connected(10, 0.3, seed=4)
        b = random_connected(10, 0.3, seed=4)
        assert a.links == b.links

    def test_random_connected_prob_bounds(self):
        with pytest.raises(ValueError):
            random_connected(5, 1.5, seed=0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            line(0)
        with pytest.raises(ValueError):
            grid(0, 3)
        with pytest.raises(ValueError):
            binary_tree(-1)
        with pytest.raises(ValueError):
            hypercube(0)


class TestDirectedEdges:
    def test_both_orientations(self):
        t = line(3)
        edges = t.directed_edges()
        assert len(edges) == 4
        assert (0, 1) in edges and (1, 0) in edges

    def test_has_link_orientation_free(self):
        t = line(3)
        assert t.has_link(0, 1) and t.has_link(1, 0)
        assert not t.has_link(0, 2)

    def test_disconnected_detection(self):
        t = Topology(name="disc", nodes=(0, 1, 2, 3), links=((0, 1), (2, 3)))
        assert not t.is_connected()
