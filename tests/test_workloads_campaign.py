"""Tests for the campaign sweep API (repro.workloads.campaign)."""

import pytest

from repro.graphs.topology import line, ring
from repro.workloads.campaign import Campaign
from repro.workloads.scenarios import bounded_uniform, round_trip_bias


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


def bias_builder(topology, seed):
    return round_trip_bias(topology, bias=0.5, seed=seed)


class TestCampaign:
    def test_full_sweep_table(self):
        campaign = Campaign(seeds=range(2))
        campaign.add("bounded", bounded_builder).add("bias", bias_builder)
        table = campaign.run([ring(4), line(4)])
        assert len(table.rows) == 4  # 2 builders x 2 topologies
        assert all(row[-1] for row in table.rows)  # all sound
        names = {row[0] for row in table.rows}
        assert names == {"bounded", "bias"}

    def test_cells_hold_raw_data(self):
        campaign = Campaign(seeds=range(3))
        campaign.add("bounded", bounded_builder)
        cells = campaign.run_cells([ring(4)])
        assert len(cells) == 1
        cell = cells[0]
        assert len(cell.precisions) == 3
        assert len(cell.realized) == 3
        assert all(r <= p + 1e-9 for r, p in zip(cell.realized, cell.precisions))
        assert cell.certified

    def test_deterministic(self):
        def run_once():
            campaign = Campaign(seeds=range(2))
            campaign.add("bounded", bounded_builder)
            return campaign.run_cells([ring(4)])[0].precisions

        assert run_once() == run_once()

    def test_duplicate_builder_rejected(self):
        campaign = Campaign(seeds=range(1))
        campaign.add("x", bounded_builder)
        with pytest.raises(ValueError, match="already"):
            campaign.add("x", bias_builder)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="no scenario builders"):
            Campaign(seeds=range(1)).run([ring(4)])
        with pytest.raises(ValueError, match="seed"):
            Campaign(seeds=[])

    def test_chaining_returns_self(self):
        campaign = Campaign(seeds=range(1))
        assert campaign.add("a", bounded_builder) is campaign
