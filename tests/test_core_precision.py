"""Unit tests for precision measures (repro.core.precision)."""

import pytest

from repro._types import INF
from repro.core.precision import (
    corrected_starts,
    realized_spread,
    rho_bar,
    rho_bar_true,
)


class TestRealizedSpread:
    def test_perfect_corrections_zero_spread(self):
        starts = {0: 5.0, 1: 8.0, 2: 2.0}
        corrections = {0: 5.0, 1: 8.0, 2: 2.0}
        assert realized_spread(starts, corrections) == pytest.approx(0.0)

    def test_hand_computed(self):
        starts = {0: 5.0, 1: 8.0}
        corrections = {0: 0.0, 1: 2.0}  # residuals: 5, 6
        assert realized_spread(starts, corrections) == pytest.approx(1.0)

    def test_single_processor(self):
        assert realized_spread({0: 3.0}, {0: 0.0}) == 0.0

    def test_translation_invariance(self):
        starts = {0: 5.0, 1: 8.0, 2: 1.0}
        base = {0: 0.0, 1: 2.0, 2: -1.0}
        shifted = {p: x + 42.0 for p, x in base.items()}
        assert realized_spread(starts, base) == pytest.approx(
            realized_spread(starts, shifted)
        )

    def test_corrected_starts(self):
        assert corrected_starts({0: 5.0}, {0: 2.0}) == {0: 3.0}


class TestRhoBar:
    def test_zero_corrections(self):
        ms = {(0, 1): 2.0, (1, 0): 1.0}
        x = {0: 0.0, 1: 0.0}
        assert rho_bar(ms, x) == pytest.approx(2.0)

    def test_corrections_shift_the_max(self):
        ms = {(0, 1): 2.0, (1, 0): 1.0}
        # x_1 - x_0 = -0.5 balances: max(2 - 0.5, 1 + 0.5) = 1.5 = optimum.
        assert rho_bar(ms, {0: 0.0, 1: -0.5}) == pytest.approx(1.5)

    def test_translation_invariance(self):
        ms = {(0, 1): 2.0, (1, 0): 1.0}
        a = rho_bar(ms, {0: 0.0, 1: -0.5})
        b = rho_bar(ms, {0: 100.0, 1: 99.5})
        assert a == pytest.approx(b)

    def test_infinite_pair_gives_inf(self):
        ms = {(0, 1): INF, (1, 0): 1.0}
        assert rho_bar(ms, {0: 0.0, 1: 0.0}) == INF

    def test_missing_pair_treated_infinite(self):
        assert rho_bar({(0, 1): 1.0}, {0: 0.0, 1: 0.0}) == INF

    def test_single_processor(self):
        assert rho_bar({}, {0: 0.0}) == 0.0

    def test_never_below_max_cycle_mean(self):
        """rho_bar(x) >= mean of any cycle, whatever x (Theorem 4.4)."""
        ms = {(0, 1): 3.0, (1, 0): -1.0}
        for x1 in [-5.0, -2.0, 0.0, 2.0, 5.0]:
            assert rho_bar(ms, {0: 0.0, 1: x1}) >= 1.0 - 1e-12


class TestRhoBarTrue:
    def test_matches_estimated_formulation(self):
        """rho_bar from (ms, starts) == rho_bar from ms~ (Lemma 4.5)."""
        starts = {0: 4.0, 1: 9.0}
        ms_true = {(0, 1): 1.0, (1, 0): 0.5}
        ms_tilde = {
            (0, 1): ms_true[(0, 1)] + starts[0] - starts[1],
            (1, 0): ms_true[(1, 0)] + starts[1] - starts[0],
        }
        x = {0: 0.0, 1: -4.8}
        assert rho_bar_true(ms_true, starts, x) == pytest.approx(
            rho_bar(ms_tilde, x)
        )

    def test_realized_never_exceeds_rho_bar(self):
        """rho(alpha, x) <= rho_bar(x): the identity shift is admissible."""
        starts = {0: 4.0, 1: 9.0}
        ms_true = {(0, 1): 1.0, (1, 0): 0.5}  # both >= 0 as in any alpha
        for x1 in [-6.0, -5.0, -4.0]:
            x = {0: 0.0, 1: x1}
            assert realized_spread(starts, x) <= rho_bar_true(
                ms_true, starts, x
            ) + 1e-12

    def test_infinite(self):
        starts = {0: 0.0, 1: 0.0}
        assert rho_bar_true({(0, 1): INF, (1, 0): 0.0}, starts, {0: 0, 1: 0}) == INF
