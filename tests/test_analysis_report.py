"""Tests for sync reports and markdown tables
(repro.analysis.report, Table.to_markdown)."""

import pytest

from repro.analysis.report import (
    components_table,
    corrections_table,
    pairwise_table,
    sync_report,
)
from repro.analysis.reporting import Table
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import no_bounds
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.workloads.scenarios import bounded_uniform

from conftest import make_two_node_execution


@pytest.fixture
def result():
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=3)
    return ClockSynchronizer(scenario.system).from_execution(scenario.run())


class TestSyncReport:
    def test_three_tables(self, result):
        tables = sync_report(result)
        assert len(tables) == 3
        for table in tables:
            assert table.rows
            table.format()  # renders without error

    def test_corrections_table_contents(self, result):
        table = corrections_table(result)
        assert len(table.rows) == 5
        roots = [row for row in table.rows if row[-1]]
        assert len(roots) == 1  # single component, single root
        root_row = roots[0]
        assert result.corrections[root_row[0]] == pytest.approx(0.0)

    def test_components_table_single(self, result):
        table = components_table(result)
        assert len(table.rows) == 1
        assert "->" in table.rows[0][-1]  # critical cycle rendered

    def test_components_table_multi(self):
        system = System.uniform(line(2), no_bounds())
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        result = ClockSynchronizer(system).from_execution(alpha)
        table = components_table(result)
        assert len(table.rows) == 2
        assert table.notes  # the multi-component warning

    def test_pairwise_table_counts(self, result):
        table = pairwise_table(result)
        assert len(table.rows) == 5 * 4 // 2  # unordered pairs

    def test_pairwise_table_truncation(self):
        scenario = bounded_uniform(ring(15), lb=1.0, ub=3.0, seed=0)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        table = pairwise_table(result, max_processors=4)
        assert len(table.rows) == 4 * 3 // 2
        assert any("showing 4 of 15" in note for note in table.notes)

    def test_pairwise_unbounded_interval_rendered(self):
        system = System.uniform(line(2), no_bounds())
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        result = ClockSynchronizer(system).from_execution(alpha)
        table = pairwise_table(result)
        assert any("unbounded" in str(row[-1]) for row in table.rows)


class TestMarkdown:
    def test_to_markdown_structure(self):
        table = Table(title="Demo", headers=["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("a note")
        md = table.to_markdown()
        assert md.startswith("**Demo**")
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "| 1 | 2.5 |" in md
        assert "*a note*" in md

    def test_markdown_handles_inf(self):
        table = Table(title="T", headers=["x"])
        table.add_row(float("inf"))
        assert "| inf |" in table.to_markdown()
