"""Unit tests for the round-trip bias assumption (repro.delays.bias).

Lemma 6.5 / Corollary 6.6 with hand-computed values, plus the paper's own
decomposition argument (A[b] = nonneg ∩ unsigned-bias).
"""

import pytest

from repro._types import INF
from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bias import RoundTripBias, RoundTripBiasUnsigned
from repro.delays.bounds import no_bounds
from repro.delays.composite import Composite


def timing(fwd, rev) -> PairTiming:
    return PairTiming(
        forward=DirectionStats.of(list(fwd)),
        reverse=DirectionStats.of(list(rev)),
    )


class TestConstruction:
    def test_negative_bias_rejected(self):
        with pytest.raises(ValueError):
            RoundTripBias(-0.1)
        with pytest.raises(ValueError):
            RoundTripBiasUnsigned(-0.1)

    def test_self_flip(self):
        a = RoundTripBias(0.5)
        assert a.flipped() is a


class TestMlsFormula:
    """Lemma 6.5: mls = min(dmin_fwd, (b + dmin_fwd - dmax_rev) / 2)."""

    def test_hand_computed_bias_binding(self):
        a = RoundTripBias(1.0)
        t = timing([10.0, 10.4], [10.2, 10.6])
        # bias term: (1.0 + 10.0 - 10.6) / 2 = 0.2; nonneg term: 10.0.
        assert a.mls_bound(t) == pytest.approx(0.2)

    def test_hand_computed_nonneg_binding(self):
        a = RoundTripBias(100.0)
        t = timing([0.5, 0.7], [0.6])
        # bias term: (100 + 0.5 - 0.6)/2 = 49.95; nonneg term: 0.5.
        assert a.mls_bound(t) == pytest.approx(0.5)

    def test_symmetric_delays_give_half_bias(self):
        a = RoundTripBias(0.8)
        t = timing([5.0], [5.0])
        assert a.mls_bound(t) == pytest.approx(0.4)

    def test_no_reverse_messages(self):
        a = RoundTripBias(1.0)
        t = timing([5.0], [])
        # dmax_rev = -inf -> bias term inf; only nonneg binds.
        assert a.mls_bound(t) == pytest.approx(5.0)

    def test_no_forward_messages(self):
        a = RoundTripBias(1.0)
        t = timing([], [5.0])
        assert a.mls_bound(t) == INF

    def test_bias_term_can_be_negative(self):
        """Observed bias at the limit makes the shift bound 0 (or less in
        estimated coordinates -- legal for mls~)."""
        a = RoundTripBias(0.5)
        t = timing([10.0], [10.5])
        assert a.mls_bound(t) == pytest.approx(0.0)


class TestDecompositionOfLemma65:
    """The paper proves Lemma 6.5 via Theorem 5.6: A[b] = A' ∩ A''."""

    def test_bias_equals_composite_of_nonneg_and_unsigned(self):
        b = 0.9
        signed = RoundTripBias(b)
        decomposed = Composite.of(no_bounds(), RoundTripBiasUnsigned(b))
        for fwd, rev in [
            ([10.0, 10.3], [10.1, 10.8]),
            ([0.2], [0.3, 0.4]),
            ([5.0], []),
            ([3.0, 3.1, 3.2], [3.05]),
        ]:
            t = timing(fwd, rev)
            assert signed.mls_bound(t) == pytest.approx(
                decomposed.mls_bound(t)
            ), (fwd, rev)


class TestAdmits:
    def test_within_bias(self):
        a = RoundTripBias(1.0)
        assert a.admits([10.0, 10.5], [10.2, 10.9])

    def test_bias_violated(self):
        a = RoundTripBias(1.0)
        assert not a.admits([10.0], [11.5])
        assert not a.admits([11.5], [10.0])

    def test_negative_delay_rejected_by_signed_only(self):
        signed = RoundTripBias(1.0)
        unsigned = RoundTripBiasUnsigned(1.0)
        assert not signed.admits([-0.5], [0.0])
        assert unsigned.admits([-0.5], [0.0])

    def test_one_sided_traffic_always_biased_ok(self):
        a = RoundTripBias(0.1)
        assert a.admits([1.0, 50.0], [])  # no opposite pairs exist

    def test_extreme_pairs_bind(self):
        a = RoundTripBias(1.0)
        # max_fwd - min_rev = 10.9 - 10.0 = 0.9 <= 1 and
        # max_rev - min_fwd = 10.8 - 10.1 = 0.7 <= 1.
        assert a.admits([10.1, 10.9], [10.0, 10.8])
        # Push one extreme out.
        assert not a.admits([10.1, 11.1], [10.0, 10.8])
