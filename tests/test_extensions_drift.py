"""Tests for drifting clocks and periodic resync (repro.extensions.drift)."""

import random

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import Constant, UniformDelay
from repro.delays.system import System
from repro.extensions.drift import (
    DriftingClocks,
    corrected_spread,
    periodic_resync,
    probe_round_stats,
)
from repro.graphs.topology import line, ring


def perfect_clocks(processors, starts=None):
    starts = starts or {p: float(p) for p in processors}
    return DriftingClocks(
        start_times=starts, rates={p: 1.0 for p in processors}
    )


class TestDriftingClocks:
    def test_clock_reading(self):
        clocks = DriftingClocks(start_times={0: 5.0}, rates={0: 1.001})
        assert clocks.clock(0, 15.0) == pytest.approx(10.0 * 1.001)

    def test_real_time_roundtrip(self):
        clocks = DriftingClocks(start_times={0: 5.0}, rates={0: 0.999})
        t = clocks.real_time_of(0, 20.0)
        assert clocks.clock(0, t) == pytest.approx(20.0)

    def test_draw_respects_bounds(self):
        clocks = DriftingClocks.draw(range(20), 5.0, 1e-4, seed=1)
        assert all(0.0 <= s <= 5.0 for s in clocks.start_times.values())
        assert all(abs(r - 1.0) <= 1e-4 for r in clocks.rates.values())

    def test_draw_deterministic(self):
        a = DriftingClocks.draw(range(5), 5.0, 1e-4, seed=2)
        b = DriftingClocks.draw(range(5), 5.0, 1e-4, seed=2)
        assert a == b


class TestProbeRoundStats:
    def test_zero_drift_matches_analytic_estimates(self):
        """With rate 1 and constant delay d the estimate is exactly
        d + S_p - S_q for every probe."""
        topo = line(2)
        system = System.uniform(topo, BoundedDelay.symmetric(2.0, 2.0))
        samplers = {(0, 1): Constant(2.0)}
        clocks = perfect_clocks(topo.nodes, {0: 1.0, 1: 4.0})
        stats = probe_round_stats(
            system,
            samplers,
            clocks,
            {0: [10.0, 12.0], 1: [10.0, 12.0]},
            random.Random(0),
        )
        assert stats[(0, 1)].min_delay == pytest.approx(2.0 + 1.0 - 4.0)
        assert stats[(0, 1)].max_delay == pytest.approx(-1.0)
        assert stats[(1, 0)].min_delay == pytest.approx(2.0 + 4.0 - 1.0)
        assert stats[(0, 1)].count == 2

    def test_zero_drift_pipeline_matches_drift_free_formula(self):
        topo = ring(4)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        clocks = perfect_clocks(topo.nodes)
        stats = probe_round_stats(
            system, samplers, clocks,
            {p: [50.0, 52.0, 54.0] for p in topo.nodes},
            random.Random(5),
        )
        mls = system.mls_from_stats(stats)
        result = ClockSynchronizer(system).from_local_estimates(mls)
        # Drift-free: corrected spread realized must be within precision.
        spread = corrected_spread(clocks, result.corrections, 100.0)
        assert spread <= result.precision + 1e-9

    def test_corrected_spread_constant_over_time_without_drift(self):
        clocks = perfect_clocks([0, 1], {0: 0.0, 1: 3.0})
        x = {0: 0.0, 1: 1.0}
        assert corrected_spread(clocks, x, 10.0) == pytest.approx(
            corrected_spread(clocks, x, 1000.0)
        )

    def test_spread_grows_with_drift(self):
        clocks = DriftingClocks(
            start_times={0: 0.0, 1: 0.0}, rates={0: 1.0, 1: 1.001}
        )
        x = {0: 0.0, 1: 0.0}
        early = corrected_spread(clocks, x, 10.0)
        late = corrected_spread(clocks, x, 1000.0)
        assert late > early


class TestPeriodicResync:
    def _setup(self, drift):
        topo = ring(4)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        clocks = DriftingClocks.draw(topo.nodes, 5.0, drift, seed=11)
        return system, samplers, clocks

    def test_rounds_structure(self):
        system, samplers, clocks = self._setup(1e-5)
        rounds = periodic_resync(
            system, samplers, clocks, period=50.0, rounds=3, seed=1
        )
        assert [r.round_index for r in rounds] == [0, 1, 2]
        for r in rounds:
            assert r.claimed_precision > 0

    def test_small_drift_keeps_spread_near_claim(self):
        system, samplers, clocks = self._setup(1e-6)
        rounds = periodic_resync(
            system, samplers, clocks, period=100.0, rounds=3, seed=2
        )
        for r in rounds:
            # drift error over the period is ~2e-4, negligible vs claim.
            assert r.spread_after_sync <= r.claimed_precision + 1e-2
            assert r.spread_before_next <= r.claimed_precision + 1e-2

    def test_larger_drift_or_period_grows_residual(self):
        system, samplers, clocks_small = self._setup(1e-6)
        _, _, clocks_large = self._setup(1e-3)
        small = periodic_resync(
            system, samplers, clocks_small, period=200.0, rounds=3, seed=3
        )
        large = periodic_resync(
            system, samplers, clocks_large, period=200.0, rounds=3, seed=3
        )
        drift_gap_small = sum(
            abs(r.spread_before_next - r.spread_after_sync) for r in small
        )
        drift_gap_large = sum(
            abs(r.spread_before_next - r.spread_after_sync) for r in large
        )
        assert drift_gap_large > drift_gap_small
