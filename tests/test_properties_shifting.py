"""Property-based tests for shifting and views (hypothesis).

These are the paper's foundational invariants: shifting is a group action
on histories that preserves views (Lemma 4.1), and anything computed from
views is invariant under it (Claim 3.1).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.estimates import estimated_delays
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay
from repro.delays.system import System
from repro.graphs.topology import line
from repro.model.execution import (
    executions_equivalent,
    shift_execution,
    shift_vector_between,
)
from repro.model.steps import shift_history
from repro.model.views import View, views_equal

from conftest import make_two_node_execution

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
small_delays = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
starts = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def two_node_executions(draw):
    s_p = draw(starts)
    s_q = draw(starts)
    n_fwd = draw(st.integers(min_value=0, max_value=4))
    n_rev = draw(st.integers(min_value=0, max_value=4))
    fwd = [draw(small_delays) for _ in range(n_fwd)]
    rev = [draw(small_delays) for _ in range(n_rev)]
    return make_two_node_execution(s_p, s_q, fwd, rev)


def histories_approx_equal(a, b, tol=1e-9):
    """Same steps, real times equal up to float rounding."""
    if a.processor != b.processor or len(a) != len(b):
        return False
    return all(
        x.step == y.step and abs(x.real_time - y.real_time) <= tol
        for x, y in zip(a.steps, b.steps)
    )


class TestShiftGroupAction:
    @given(two_node_executions(), finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_shift_then_unshift_is_identity(self, alpha, s):
        h = alpha.history(0)
        assert histories_approx_equal(shift_history(shift_history(h, s), -s), h)

    @given(two_node_executions(), finite_floats, finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_shifts_compose(self, alpha, s1, s2):
        h = alpha.history(0)
        assert histories_approx_equal(
            shift_history(shift_history(h, s1), s2), shift_history(h, s1 + s2)
        )

    @given(two_node_executions(), finite_floats, finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_shifted_executions_are_equivalent(self, alpha, s0, s1):
        beta = shift_execution(alpha, {0: s0, 1: s1})
        assert executions_equivalent(alpha, beta)
        beta.validate()

    @given(two_node_executions(), finite_floats, finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_shift_vector_recovered(self, alpha, s0, s1):
        beta = shift_execution(alpha, {0: s0, 1: s1})
        recovered = shift_vector_between(alpha, beta)
        assert abs(recovered[0] - s0) < 1e-9
        assert abs(recovered[1] - s1) < 1e-9

    @given(two_node_executions(), finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_views_invariant(self, alpha, s):
        h = alpha.history(1)
        assert views_equal(View.of(h), View.of(shift_history(h, s)))


class TestClaim31:
    @given(two_node_executions(), finite_floats, finite_floats)
    @settings(max_examples=30, deadline=None)
    def test_estimated_delays_shift_invariant(self, alpha, s0, s1):
        beta = shift_execution(alpha, {0: s0, 1: s1})
        assert estimated_delays(alpha.views()) == estimated_delays(
            beta.views()
        )

    @given(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.lists(
            st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=3,
        ),
        st.lists(
            st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=3,
        ),
        finite_floats,
        finite_floats,
    )
    @settings(max_examples=25, deadline=None)
    def test_corrections_shift_invariant(self, s_p, s_q, fwd, rev, t0, t1):
        """The full pipeline output is a function of views only."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, fwd, rev)
        beta = shift_execution(alpha, {0: t0, 1: t1})
        sync = ClockSynchronizer(system)
        a = sync.from_execution(alpha)
        b = sync.from_execution(beta)
        assert a.precision == b.precision
        assert a.corrections == b.corrections
