"""Unit tests for the NTP-style and Cristian-style baselines
(repro.baselines.ntp_like, repro.baselines.cristian)."""

import pytest

from repro.baselines.cristian import (
    best_round_trip_offset,
    cristian_corrections,
    cristian_error_bound,
)
from repro.baselines.ntp_like import (
    BaselineError,
    bfs_tree,
    link_offset_estimate,
    ntp_corrections,
)
from repro.core.optimality import beats_or_ties
from repro.core.precision import realized_spread
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import Topology, line, ring, star
from repro.workloads.scenarios import asymmetric_bounded, bounded_uniform

from conftest import make_two_node_execution


class TestBfsTree:
    def test_star_tree(self):
        tree = bfs_tree(star(5), root=0)
        assert sorted(tree) == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_line_tree_from_middle(self):
        tree = bfs_tree(line(5), root=2)
        assert set(tree) == {(2, 1), (2, 3), (1, 0), (3, 4)}

    def test_disconnected_rejected(self):
        topo = Topology(name="disc", nodes=(0, 1, 2), links=((0, 1),))
        with pytest.raises(BaselineError, match="connected"):
            bfs_tree(topo, 0)

    def test_unknown_root(self):
        with pytest.raises(BaselineError):
            bfs_tree(line(3), 99)


class TestOffsetEstimates:
    def test_symmetric_delays_recover_offset_exactly(self):
        s_p, s_q, d = 5.0, 8.0, 2.0
        alpha = make_two_node_execution(s_p, s_q, [d], [d])
        from repro.core.estimates import estimated_delays

        est = estimated_delays(alpha.views())
        offset = link_offset_estimate(est, 0, 1)
        assert offset == pytest.approx(s_p - s_q)

    def test_asymmetric_delays_bias_the_estimate(self):
        s_p, s_q = 0.0, 0.0
        alpha = make_two_node_execution(s_p, s_q, [1.0], [3.0])
        from repro.core.estimates import estimated_delays

        est = estimated_delays(alpha.views())
        # (1 - 3)/2 = -1: a phantom offset of 1 time unit.
        assert link_offset_estimate(est, 0, 1) == pytest.approx(-1.0)

    def test_one_way_fallback(self):
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        from repro.core.estimates import estimated_delays

        est = estimated_delays(alpha.views())
        assert link_offset_estimate(est, 0, 1) == pytest.approx(2.0)
        assert link_offset_estimate(est, 1, 0) == pytest.approx(-2.0)

    def test_silent_link_gives_none(self):
        assert link_offset_estimate({}, 0, 1) is None

    def test_best_round_trip(self):
        alpha = make_two_node_execution(0.0, 0.0, [1.0, 2.0], [1.5, 3.0])
        from repro.core.estimates import estimated_delays

        est = estimated_delays(alpha.views())
        offset, rtt = best_round_trip_offset(est, 0, 1)
        assert rtt == pytest.approx(2.5)
        assert offset == pytest.approx((1.0 - 1.5) / 2)
        assert best_round_trip_offset({(0, 1): [1.0]}, 0, 1) is None

    def test_cristian_error_bound(self):
        est = {(0, 1): [1.0], (1, 0): [1.5]}
        assert cristian_error_bound(est, 0, 1, min_delay=0.5) == pytest.approx(
            2.5 / 2 - 0.5
        )
        assert cristian_error_bound({}, 0, 1) is None


class TestTreeCorrections:
    def test_ntp_exact_on_symmetric_constant_delays(self):
        """With identical constant delays the baselines are exact too."""
        scenario = bounded_uniform(ring(5), lb=2.0, ub=2.0, seed=1)
        alpha = scenario.run()
        corrections = ntp_corrections(scenario.topology, alpha.views())
        assert realized_spread(
            alpha.start_times(), corrections
        ) == pytest.approx(0.0, abs=1e-9)

    def test_cristian_exact_on_symmetric_constant_delays(self):
        scenario = bounded_uniform(ring(5), lb=2.0, ub=2.0, seed=1)
        alpha = scenario.run()
        corrections = cristian_corrections(scenario.topology, alpha.views())
        assert realized_spread(
            alpha.start_times(), corrections
        ) == pytest.approx(0.0, abs=1e-9)

    def test_silent_tree_link_raises(self):
        alpha = make_two_node_execution(0.0, 0.0, [], [])
        with pytest.raises(BaselineError, match="traffic|round trip"):
            ntp_corrections(line(2), alpha.views())
        with pytest.raises(BaselineError):
            cristian_corrections(line(2), alpha.views())

    def test_root_defaults_to_first_node(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=2)
        alpha = scenario.run()
        corrections = ntp_corrections(scenario.topology, alpha.views())
        assert corrections[0] == 0.0


class TestOptimalAlwaysBeatsBaselines:
    """Theorem 4.4 in action: no baseline ever achieves smaller rho_bar."""

    @pytest.mark.parametrize("seed", range(4))
    def test_symmetric_workloads(self, seed):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        views = alpha.views()
        assert beats_or_ties(result, ntp_corrections(scenario.topology, views))
        assert beats_or_ties(
            result, cristian_corrections(scenario.topology, views)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_asymmetric_workloads(self, seed):
        scenario = asymmetric_bounded(
            ring(5), lb=1.0, ub=5.0, skew_factor=0.8, seed=seed
        )
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        views = alpha.views()
        assert beats_or_ties(result, ntp_corrections(scenario.topology, views))
        assert beats_or_ties(
            result, cristian_corrections(scenario.topology, views)
        )
