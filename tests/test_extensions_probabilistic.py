"""Tests for probabilistic delay knowledge (repro.extensions.probabilistic)."""

import math
import random

import pytest

from repro.core.global_estimates import InconsistentViewsError
from repro.core.precision import realized_spread
from repro.delays.distributions import DelaySampler, Direction
from repro.delays.system import System
from repro.extensions.probabilistic import (
    EmpiricalDelay,
    ExponentialDelay,
    ProbabilisticResult,
    UniformDelayDistribution,
    derive_bounded_system,
    probabilistic_synchronize,
)
from repro.graphs.topology import ring
from repro.sim.network import NetworkSimulator, draw_start_times
from repro.sim.protocols import probe_automata, probe_schedule


class _DistributionSampler(DelaySampler):
    """Adapter: drive the simulator with a DelayDistribution."""

    def __init__(self, dist):
        self._dist = dist

    def sample(self, rng: random.Random, direction: Direction):
        return self._dist.sample(rng)


def run_probabilistic(topo, dist, delta, seed, probes=3):
    """Simulate reality = dist, then synchronize probabilistically."""
    from repro.delays.bounds import no_bounds

    # The simulator needs *some* declared system; use no-bounds so any
    # draw is admissible (reality has no hard bounds here).
    system = System.uniform(topo, no_bounds())
    samplers = {link: _DistributionSampler(dist) for link in topo.links}
    starts = draw_start_times(topo.nodes, 10.0, seed)
    sim = NetworkSimulator(system, samplers, starts, seed=seed)
    alpha = sim.run(
        dict(probe_automata(topo, probe_schedule(probes, 11.0, 3.0)))
    )
    dists = {link: dist for link in topo.links}
    result = probabilistic_synchronize(topo, alpha.views(), dists, delta)
    return alpha, result


class TestQuantiles:
    def test_exponential_closed_form(self):
        dist = ExponentialDelay(minimum=1.0, mean_extra=2.0)
        assert dist.quantile(0.0) == pytest.approx(1.0)
        assert dist.quantile(1 - math.exp(-1)) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            dist.quantile(1.0)  # unbounded support

    def test_uniform_closed_form(self):
        dist = UniformDelayDistribution(1.0, 3.0)
        assert dist.quantile(0.0) == 1.0
        assert dist.quantile(0.5) == 2.0
        assert dist.quantile(1.0) == 3.0

    def test_empirical_interpolation(self):
        dist = EmpiricalDelay(samples=(1.0, 2.0, 3.0, 4.0, 5.0))
        assert dist.quantile(0.0) == 1.0
        assert dist.quantile(1.0) == 5.0
        assert dist.quantile(0.5) == 3.0
        assert dist.quantile(0.125) == pytest.approx(1.5)

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDelay(samples=(1.0,))
        with pytest.raises(ValueError):
            EmpiricalDelay(samples=(1.0, -2.0))

    def test_interval_coverage_and_clamping(self):
        dist = ExponentialDelay(minimum=0.0, mean_extra=1.0)
        low, high = dist.interval(0.1)
        assert low >= 0.0
        assert high == pytest.approx(dist.quantile(0.95))
        with pytest.raises(ValueError):
            dist.interval(0.0)

    def test_samples_match_support(self):
        rng = random.Random(1)
        exp = ExponentialDelay(minimum=1.0, mean_extra=2.0)
        assert all(exp.sample(rng) >= 1.0 for _ in range(100))
        emp = EmpiricalDelay(samples=(1.0, 2.0, 3.0))
        assert all(emp.sample(rng) in {1.0, 2.0, 3.0} for _ in range(20))


class TestDerivedSystem:
    def test_bounds_from_quantiles(self):
        topo = ring(3)
        dist = UniformDelayDistribution(1.0, 3.0)
        system = derive_bounded_system(
            topo, {link: dist for link in topo.links}, epsilon_per_message=0.1
        )
        assumption = system.assumptions[topo.links[0]]
        assert assumption.lb_forward == pytest.approx(dist.quantile(0.05))
        assert assumption.ub_forward == pytest.approx(dist.quantile(0.95))

    def test_missing_distribution_rejected(self):
        topo = ring(3)
        with pytest.raises(KeyError):
            derive_bounded_system(topo, {}, epsilon_per_message=0.1)


class TestSynchronization:
    def test_finite_precision_from_unbounded_distribution(self):
        """The headline: exponential (unbounded) delays + distributional
        knowledge yields a finite high-confidence precision."""
        dist = ExponentialDelay(minimum=0.5, mean_extra=1.0)
        _, result = run_probabilistic(ring(4), dist, delta=0.05, seed=3)
        assert not math.isinf(result.precision)
        assert result.confidence == pytest.approx(0.95)

    def test_delta_validation(self):
        dist = UniformDelayDistribution(1.0, 3.0)
        alpha, result = run_probabilistic(ring(4), dist, delta=0.1, seed=1)
        views = alpha.views()
        dists = {link: dist for link in ring(4).links}
        with pytest.raises(ValueError):
            probabilistic_synchronize(ring(4), views, dists, delta=0.0)
        with pytest.raises(ValueError):
            probabilistic_synchronize(ring(4), views, dists, delta=1.0)

    def test_larger_delta_gives_tighter_precision(self):
        """Spending more failure budget narrows the intervals, which can
        only improve (never worsen) the claimed precision."""
        dist = ExponentialDelay(minimum=0.5, mean_extra=1.0)
        alpha, _ = run_probabilistic(ring(4), dist, delta=0.5, seed=7)
        views = alpha.views()
        dists = {link: dist for link in ring(4).links}
        previous = math.inf
        for delta in (0.001, 0.01, 0.1, 0.5):
            try:
                result = probabilistic_synchronize(ring(4), views, dists, delta)
            except InconsistentViewsError:
                # Aggressive budgets can be contradicted by this very
                # sample -- a *detected* failure, allowed with prob <= delta.
                break
            assert result.precision <= previous + 1e-9
            previous = result.precision

    def test_empirical_coverage_respects_confidence(self):
        """Over many runs, the derived bounds must hold (and hence the
        deterministic guarantee apply) in at least ~1 - delta of them."""
        dist = ExponentialDelay(minimum=0.5, mean_extra=1.5)
        delta = 0.2
        held = 0
        spread_ok = 0
        trials = 30
        for seed in range(trials):
            try:
                alpha, result = run_probabilistic(
                    ring(4), dist, delta=delta, seed=seed
                )
            except InconsistentViewsError:
                # A *detected* bound failure: the derived assumptions were
                # contradicted by the sample.  Allowed with prob <= delta.
                continue
            if result.bounds_held(alpha):
                held += 1
                spread = realized_spread(
                    alpha.start_times(), result.corrections
                )
                if spread <= result.precision + 1e-9:
                    spread_ok += 1
        coverage = held / trials
        # Union bound is conservative; allow generous sampling slack.
        assert coverage >= 1.0 - 2 * delta
        # Whenever the bounds held, the deterministic guarantee held too.
        assert spread_ok == held

    def test_no_messages_rejected(self):
        from repro.model.builder import ExecutionBuilder

        alpha = (
            ExecutionBuilder()
            .processor(0, start=0.0)
            .processor(1, start=0.0)
            .build()
        )
        from repro.graphs.topology import line

        dists = {(0, 1): UniformDelayDistribution(1.0, 3.0)}
        with pytest.raises(ValueError, match="no messages"):
            probabilistic_synchronize(line(2), alpha.views(), dists, 0.1)
