"""Tests for the runner layer: cells, sharding, cache, executors, shims."""

import math
import pickle
import warnings

import pytest

from repro.graphs import line, ring
from repro.obs.metrics import MetricsRegistry, registry_from_snapshot
from repro.runner import (
    AsyncExecutor,
    CellFailure,
    CellResult,
    CellSpec,
    CellTask,
    ProcessExecutor,
    ResultCache,
    RobustProcessExecutor,
    RobustSequentialExecutor,
    SequentialExecutor,
    cell_cache_key,
    create_executor,
    execute_cell,
    filter_shard,
    in_shard,
    parse_shard,
    resolve_workers,
    set_default_workers,
    shard_index,
    validate_cell_results_file,
    write_cell_results_jsonl,
)
from repro.runner.executor import WORKERS_ENV, default_workers
from repro.workloads import bounded_uniform, round_trip_bias


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


def bias_builder(topology, seed):
    return round_trip_bias(topology, bias=0.5, seed=seed)


def make_task(topology=None, seed=0, name="bounded", **kwargs):
    return CellTask(
        spec=CellSpec(
            builder=name, topology=topology or ring(4), seed=seed
        ),
        build=bounded_builder,
        **kwargs,
    )


class TestCellSpec:
    def test_scenario_key_and_identity(self):
        spec = CellSpec(builder="b", topology=ring(4), seed=3)
        assert spec.scenario_key == "b:ring-4"
        assert spec.key == ("b", "ring-4", 3)


class TestExecuteCell:
    def test_produces_sound_certified_result(self):
        outcome = execute_cell(make_task())
        result = outcome.result
        assert result.scenario == "bounded"
        assert result.topology == "ring-4"
        assert result.seed == 0
        assert math.isfinite(result.precision)
        assert result.sound
        assert result.realized <= result.precision + 1e-9
        # optimal pipeline: rho_bar == A^max
        assert result.rho_bar == pytest.approx(result.precision)
        assert result.timings  # engine stage seconds were collected
        assert not result.cache_hit

    def test_metrics_snapshot_is_picklable_and_rebuildable(self):
        outcome = execute_cell(make_task())
        snapshot = pickle.loads(pickle.dumps(outcome.metrics))
        registry = registry_from_snapshot(snapshot)
        names = set(registry.names())
        assert any(n.startswith("sim.") for n in names)
        assert any(n.startswith("pipeline.") for n in names)


class TestCellResultSerialization:
    def test_json_roundtrip(self):
        result = execute_cell(make_task()).result
        clone = CellResult.from_json(result.to_json())
        assert clone.fingerprint() == result.fingerprint()
        assert clone.timings == result.timings

    def test_infinite_precision_roundtrips(self):
        result = CellResult(
            scenario="s", topology="t", seed=0, precision=math.inf,
            rho_bar=math.inf, realized=1.0, sound=True, backend="python",
            seconds=0.1,
        )
        clone = CellResult.from_json(result.to_json())
        assert math.isinf(clone.precision)

    def test_rejects_foreign_records(self):
        with pytest.raises(ValueError, match="campaign.cell"):
            CellResult.from_json({"type": "metrics.counter"})

    def test_jsonl_file_roundtrip(self, tmp_path):
        results = [execute_cell(make_task(seed=s)).result for s in (0, 1)]
        path = write_cell_results_jsonl(tmp_path / "cells.jsonl", results)
        assert validate_cell_results_file(path) == 2

    def test_jsonl_validation_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "campaign.cell"}\n')
        with pytest.raises(ValueError, match="invalid cell record"):
            validate_cell_results_file(path)


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/4") == (1, 4)
        assert parse_shard("4/4") == (4, 4)

    @pytest.mark.parametrize(
        "spec", ["0/4", "5/4", "1/0", "x/4", "1", "1/4/2", ""]
    )
    def test_parse_shard_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_shard(spec)

    def test_shards_partition_the_grid(self):
        specs = [
            CellSpec(builder=name, topology=topo, seed=seed)
            for name in ("a", "b", "c")
            for topo in (ring(4), line(5))
            for seed in range(5)
        ]
        count = 4
        owners = [shard_index(s, count) for s in specs]
        assert set(owners) <= set(range(count))
        # each spec lives in exactly one shard
        for spec in specs:
            assert sum(
                in_shard(spec, (i, count)) for i in range(1, count + 1)
            ) == 1
        # filter_shard unions back to the full grid, order preserved
        union = []
        for i in range(1, count + 1):
            union.extend(filter_shard(specs, (i, count)))
        assert sorted(s.key for s in union) == sorted(s.key for s in specs)

    def test_assignment_is_stable_across_processes(self):
        # hashlib-based, not hash(): the mapping must not depend on
        # PYTHONHASHSEED, or shards run on different machines overlap.
        spec = CellSpec(builder="bounded", topology=ring(4), seed=1)
        assert shard_index(spec, 4) == shard_index(spec, 4)
        assert in_shard(spec, (shard_index(spec, 4) + 1, 4))

    def test_seed_changes_shard_sometimes(self):
        specs = [
            CellSpec(builder="bounded", topology=ring(4), seed=s)
            for s in range(20)
        ]
        owners = {shard_index(s, 4) for s in specs}
        assert len(owners) > 1  # not all in one shard


class TestResultCache:
    def test_key_is_deterministic_and_seed_sensitive(self):
        key_a = cell_cache_key(make_task(seed=0))
        key_b = cell_cache_key(make_task(seed=0))
        key_c = cell_cache_key(make_task(seed=1))
        assert key_a == key_b
        assert key_a != key_c

    def test_key_sensitive_to_options_and_topology(self):
        base = cell_cache_key(make_task())
        assert base != cell_cache_key(make_task(certify=False))
        assert base != cell_cache_key(make_task(backend="python"))
        assert base != cell_cache_key(make_task(topology=ring(5)))

    def test_key_sensitive_to_sampler_not_builder_name(self):
        # The key is content-addressed: what the scenario *is*, not what
        # the campaign called it.
        renamed = CellTask(
            spec=CellSpec(builder="other-name", topology=ring(4), seed=0),
            build=bounded_builder,
        )
        other_model = CellTask(
            spec=CellSpec(builder="bounded", topology=ring(4), seed=0),
            build=bias_builder,
        )
        base = cell_cache_key(make_task())
        assert cell_cache_key(renamed) != base  # scenario name differs
        assert cell_cache_key(other_model) != base

    def test_roundtrip_marks_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        key = cell_cache_key(task)
        assert cache.get(key) is None
        result = execute_cell(task).result
        cache.put(key, result)
        assert len(cache) == 1
        restored = cache.get(key)
        assert restored is not None
        assert restored.cache_hit
        assert restored.fingerprint() == result.fingerprint()

    def test_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        key = cell_cache_key(task)
        cache.put(key, execute_cell(task).result)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        assert cache.get(key) is None

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)
        assert ResultCache(tmp_path, max_entries=5).max_entries == 5
        assert ResultCache(tmp_path).max_entries is None

    def test_lru_eviction_is_by_use_not_insertion(self, tmp_path):
        import os as _os

        cache = ResultCache(tmp_path, max_entries=2)
        tasks = [make_task(seed=s) for s in range(3)]
        keys = [cell_cache_key(t) for t in tasks]
        results = [execute_cell(t).result for t in tasks[:2]]
        cache.put(keys[0], results[0])
        cache.put(keys[1], results[1])
        # Pin distinct mtimes, oldest first, then *use* entry 0: the hit
        # must refresh its recency so entry 1 becomes the LRU victim.
        for age, key in ((100, keys[0]), (200, keys[1])):
            _os.utime(tmp_path / f"{key}.json", (age, age))
        assert cache.get(keys[0]) is not None
        cache.put(keys[2], execute_cell(tasks[2]).result)
        assert len(cache) == 2
        assert cache.evicted_entries == 1
        assert cache.get(keys[1]) is None  # evicted: least recently used
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            task = make_task(seed=seed)
            cache.put(cell_cache_key(task), execute_cell(task).result)
        assert len(cache) == 3
        assert cache.evicted_entries == 0


class TestExecutors:
    def test_sequential_preserves_order(self):
        tasks = [make_task(seed=s) for s in range(3)]
        registry = MetricsRegistry()
        outcomes = SequentialExecutor().execute(tasks, registry=registry)
        assert [o.result.seed for o in outcomes] == [0, 1, 2]
        depth = registry.get("campaign.queue.depth")
        assert depth is not None and depth.count == 3

    def test_process_pool_matches_sequential(self):
        tasks = [make_task(seed=s) for s in range(4)]
        sequential = SequentialExecutor().execute(tasks)
        pooled = ProcessExecutor(2).execute(tasks)
        assert [o.result.fingerprint() for o in pooled] == [
            o.result.fingerprint() for o in sequential
        ]

    def test_process_executor_rejects_single_worker(self):
        with pytest.raises(ValueError, match=">= 2 workers"):
            ProcessExecutor(1)

    def test_resolve_workers_precedence(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers() == 2
        assert resolve_workers(5) == 5  # explicit beats env
        with default_workers(4):
            assert resolve_workers() == 4  # default beats env
            assert resolve_workers(6) == 6  # explicit beats default
        assert resolve_workers() == 2  # context restored

    def test_resolve_workers_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_set_default_workers_returns_previous(self):
        assert set_default_workers(3) is None
        try:
            assert set_default_workers(None) == 3
        finally:
            set_default_workers(None)


def raising_builder(topology, seed):
    raise RuntimeError(f"cell (seed={seed}) is broken")


class TestAsyncExecutor:
    def test_matches_sequential_fingerprints(self):
        tasks = [make_task(seed=s) for s in range(4)]
        sequential = SequentialExecutor().execute(tasks)
        overlapped = AsyncExecutor(3).execute(tasks)
        assert [o.result.fingerprint() for o in overlapped] == [
            o.result.fingerprint() for o in sequential
        ]

    def test_queue_depth_telemetry_flows(self):
        registry = MetricsRegistry()
        AsyncExecutor(2).execute(
            [make_task(seed=s) for s in range(3)], registry=registry
        )
        depth = registry.get("campaign.queue.depth")
        assert depth is not None and depth.count == 3

    def test_robust_quarantines_raising_cells(self):
        broken = CellTask(
            spec=CellSpec(builder="broken", topology=ring(4), seed=7),
            build=raising_builder,
        )
        outcomes = AsyncExecutor(2, robust=True).execute(
            [make_task(seed=0), broken]
        )
        assert isinstance(outcomes[0].result, CellResult)
        failure = outcomes[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "error"
        assert failure.key == ("broken", "ring-4", 7)
        assert "broken" in failure.message

    def test_non_robust_propagates_errors(self):
        broken = CellTask(
            spec=CellSpec(builder="broken", topology=ring(4), seed=7),
            build=raising_builder,
        )
        with pytest.raises(RuntimeError, match="is broken"):
            AsyncExecutor(2).execute([make_task(seed=0), broken])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            AsyncExecutor(0)


class TestCreateExecutor:
    def test_dispatch_table(self):
        cases = [
            (dict(workers=1), SequentialExecutor),
            (dict(workers=4, cells=1), SequentialExecutor),
            (dict(workers=4, cells=8), ProcessExecutor),
            (dict(workers=1, robust=True), RobustSequentialExecutor),
            (dict(workers=4, cells=8, robust=True), RobustProcessExecutor),
            (dict(workers=1, kind="async"), AsyncExecutor),
            (dict(workers=4, cells=1, kind="async"), AsyncExecutor),
        ]
        for kwargs, expected in cases:
            workers = kwargs.pop("workers")
            assert isinstance(
                create_executor(workers, **kwargs), expected
            ), (workers, kwargs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            create_executor(2, kind="threads")


class TestKeywordOnlyEnforced:
    """The one-release positional shims are gone (DESIGN.md section 9):
    option arguments are now genuinely keyword-only."""

    def test_campaign_positional_seeds_raise(self):
        from repro.workloads import Campaign

        with pytest.raises(TypeError):
            Campaign(range(2))

    def test_synchronizer_positional_root_raises(self):
        from repro.core.synchronizer import ClockSynchronizer

        scenario = bounded_builder(ring(4), 0)
        root = next(iter(scenario.system.processors))
        with pytest.raises(TypeError):
            ClockSynchronizer(scenario.system, root)

    def test_from_matrices_positional_raises(self):
        from repro.core.synchronizer import ClockSynchronizer

        scenario = bounded_builder(ring(4), 0)
        alpha = scenario.run()
        sync = ClockSynchronizer(scenario.system)
        from repro.core.estimates import local_shift_estimates

        mls = local_shift_estimates(scenario.system, alpha.views())
        mls_matrix = sync.index.matrix(mls)
        ms_matrix = sync.engine.global_estimates(mls_matrix)
        with pytest.raises(TypeError):
            sync.from_matrices(mls, mls_matrix, ms_matrix)
        result = sync.from_matrices(
            mls, mls_matrix=mls_matrix, ms_matrix=ms_matrix
        )
        assert result.precision == pytest.approx(
            sync.from_execution(alpha).precision
        )

    def test_keyword_calls_do_not_warn(self):
        from repro.workloads import Campaign

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Campaign(seeds=range(2), certify=False)

    def test_shim_module_is_gone(self):
        with pytest.raises(ImportError):
            import repro._compat  # noqa: F401
