"""The correction server and the live == offline contract.

ISSUE requirements covered here:

* served corrections equal the batch pipeline run offline on the probe
  log's prefix at the served cut -- byte-identical, across multiple
  cuts (the tentpole's replay-equality acceptance criterion);
* concurrent clients are answered, query bursts coalesce onto a
  single-flight refresh (the ``live.server.coalesced`` counter), and
  the freshness bound limits how stale a served cut can be;
* transport and ingest defects (torn datagrams, duplicate reports,
  unknown edges, unknown clients) degrade via counters, never crash.
"""

import asyncio

import pytest

from repro.graphs.topology import complete
from repro.live.cluster import ClusterConfig, LiveCluster, live_system
from repro.live.replay import replay_cut, verify_replay_equality
from repro.live.server import (
    CorrectionServer,
    start_client,
    start_correction_server,
)
from repro.live.wire import Query, Report, encode
from repro.obs.recorder import Recorder, recording


def make_reports(rounds=4, n=3, spacing=1.0):
    """Deterministic bidirectional traffic on the complete graph K_n."""
    processors = list(range(n))
    reports = []
    seq = 0
    for k in range(rounds):
        base = k * spacing * n * n
        for i in processors:
            for j in processors:
                if i == j:
                    continue
                send = base + (i * n + j) * spacing
                reports.append(Report(
                    sender=i, receiver=j, seq=seq,
                    send_clock=send,
                    recv_clock=send + 0.5 + 0.01 * ((i + j + k) % 3),
                ))
        seq += 1
    return reports


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_server(**options):
    system = live_system(complete(3))
    return CorrectionServer(system, **options)


async def ingest(server, reports):
    for report in reports:
        server._ingest(report)


class TestIngest:
    def test_reports_enter_log_in_order(self):
        server = make_server()
        reports = make_reports(rounds=2)
        asyncio.run(ingest(server, reports))
        assert list(server.probe_log) == reports
        assert server.reports_ingested == len(reports)

    def test_duplicate_report_dropped(self):
        server = make_server()
        reports = make_reports(rounds=1)
        with recording(Recorder()) as rec:
            asyncio.run(ingest(server, reports + [reports[0]]))
        assert len(server.probe_log) == len(reports)
        assert rec.registry.counter(
            "live.server.reports_duplicate"
        ).value == 1

    def test_unknown_edge_dropped(self):
        server = make_server()
        with recording(Recorder()) as rec:
            asyncio.run(ingest(server, [
                Report(sender=0, receiver=99, seq=0,
                       send_clock=0.0, recv_clock=0.5),
            ]))
        assert len(server.probe_log) == 0
        assert rec.registry.counter(
            "live.server.reports_unknown_edge"
        ).value == 1

    def test_torn_datagram_counted_not_crashing(self):
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            try:
                with recording(Recorder()) as rec:
                    server.datagram_received(b"\xff torn",
                                             ("127.0.0.1", 1))
                    await asyncio.sleep(0)
                return rec.registry.counter(
                    "live.server.datagrams_invalid"
                ).value
            finally:
                server.close()

        assert asyncio.run(scenario()) == 1


class TestServing:
    def test_pending_before_enough_traffic(self):
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            try:
                client = await start_client(server.address, 0)
                answer = await client.query(timeout=2.0)
                client.close()
                return answer
            finally:
                server.close()

        answer = asyncio.run(scenario())
        assert answer.status == "pending"
        assert answer.correction is None and answer.precision is None

    def test_unknown_client_flagged(self):
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            await ingest(server, make_reports())
            try:
                client = await start_client(server.address, "nobody")
                answer = await client.query(timeout=2.0)
                client.close()
                return answer
            finally:
                server.close()

        assert asyncio.run(scenario()).status == "unknown"

    def test_concurrent_clients_all_answered(self):
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            await ingest(server, make_reports())
            clients = [
                await start_client(server.address, i % 3) for i in range(6)
            ]
            try:
                answers = await asyncio.gather(
                    *(c.query(timeout=2.0) for c in clients)
                )
            finally:
                for c in clients:
                    c.close()
                server.close()
            return answers

        answers = asyncio.run(scenario())
        assert [a.status for a in answers] == ["ok"] * 6
        by_client = {a.client: a.correction for a in answers}
        # Same cut, same result object: identical corrections per client.
        assert len({a.cut for a in answers}) == 1
        assert len(by_client) == 3

    def test_query_burst_coalesces_onto_one_refresh(self):
        async def scenario():
            clock = FakeClock()
            server = await start_correction_server(
                live_system(complete(3)), time_fn=clock
            )
            await ingest(server, make_reports())
            try:
                with recording(Recorder()) as rec:
                    # A burst of concurrent cache misses: all but the
                    # first must coalesce onto the in-flight refresh.
                    await asyncio.gather(
                        *(server._current_result() for _ in range(8))
                    )
                    refreshes = rec.registry.counter(
                        "live.server.refreshes"
                    ).value
                    coalesced = rec.registry.counter(
                        "live.server.coalesced"
                    ).value
                return refreshes, coalesced
            finally:
                server.close()

        refreshes, coalesced = asyncio.run(scenario())
        assert refreshes == 1
        assert coalesced == 7

    def test_freshness_bounds_served_staleness(self):
        async def scenario():
            clock = FakeClock()
            server = await start_correction_server(
                live_system(complete(3)), freshness=0.5, time_fn=clock
            )
            reports = make_reports(rounds=4)
            await ingest(server, reports[:18])
            first = await server._current_result()
            # New traffic arrives: the cache is stale but young.
            await ingest(server, reports[18:])
            clock.now += 0.25
            young = await server._current_result()
            # Same query after the freshness window: must recompute.
            clock.now += 0.5
            refreshed = await server._current_result()
            server.close()
            return first, young, refreshed, len(server.probe_log)

        first, young, refreshed, total = asyncio.run(scenario())
        assert first.cut == 18
        assert young is first  # served stale within the bound
        assert refreshed.cut == total  # caught up after the bound

    def test_exact_cache_served_forever(self):
        async def scenario():
            clock = FakeClock()
            server = await start_correction_server(
                live_system(complete(3)), freshness=0.01, time_fn=clock
            )
            await ingest(server, make_reports())
            first = await server._current_result()
            clock.now += 1000.0  # way past freshness; no new traffic
            again = await server._current_result()
            server.close()
            return first, again

        first, again = asyncio.run(scenario())
        assert again is first  # cut still == len(log): exact, no refresh

    def test_health_transitions(self):
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            try:
                empty = server.health_json()
                await ingest(server, make_reports())
                client = await start_client(server.address, 0)
                await client.query(timeout=2.0)
                client.close()
                serving = server.health_json()
                return empty, serving
            finally:
                server.close()

        empty, serving = asyncio.run(scenario())
        assert empty["status"] == "pending" and empty["healthy"]
        assert serving["status"] == "ok" and serving["healthy"]
        assert serving["served_cut"] == serving["admitted"]


class TestReplayEquality:
    def test_served_answers_replay_byte_identical(self):
        """The tentpole contract, over multiple distinct cuts."""
        async def scenario():
            clock = FakeClock()
            server = await start_correction_server(
                live_system(complete(3)), freshness=0.01, time_fn=clock
            )
            reports = make_reports(rounds=6)
            clients = [
                await start_client(server.address, i) for i in range(3)
            ]
            try:
                for cut in (18, 30, len(reports)):
                    await ingest(server, reports[len(server.probe_log):cut])
                    clock.now += 1.0  # expire the freshness window
                    for client in clients:
                        await client.query(timeout=2.0)
            finally:
                for c in clients:
                    c.close()
                server.close()
            return server

        server = asyncio.run(scenario())
        report = verify_replay_equality(
            server.probe_log, server.answers, server.system
        )
        assert report.ok, report.describe()
        assert report.checked == 9
        assert report.cuts == (18, 30, 36)

    def test_replay_detects_a_forged_answer(self):
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            await ingest(server, make_reports())
            client = await start_client(server.address, 1)
            try:
                await client.query(timeout=2.0)
            finally:
                client.close()
                server.close()
            return server

        server = asyncio.run(scenario())
        [answer] = server.answers
        forged = type(answer)(
            qid=answer.qid, client=answer.client, status=answer.status,
            correction=(answer.correction or 0.0) + 1e-9,
            precision=answer.precision, cut=answer.cut,
            observations=answer.observations,
        )
        report = verify_replay_equality(
            server.probe_log, [forged], server.system
        )
        assert not report.ok
        assert report.mismatches[0].field_name == "correction"

    def test_replay_cut_matches_online_result(self):
        server = make_server()
        reports = make_reports()
        asyncio.run(ingest(server, reports))
        live = server.online.result()
        offline = replay_cut(server.probe_log, server.system)
        assert offline.corrections == live.corrections
        assert offline.precision == live.precision


class TestClusterEndToEnd:
    def test_loopback_cluster_serves_and_replays(self):
        """4 real peers + server + concurrent clients on loopback UDP."""
        async def scenario():
            cluster = LiveCluster(ClusterConfig(peers=4, interval=0.005))
            async with cluster:
                await cluster.wait_for_observations(24, timeout=15.0)
                load = await cluster.query_load(120, concurrency=6)
                replay = cluster.verify_replay()
                realized = cluster.realized()
            return load, replay, realized

        with recording(Recorder()):
            load, replay, realized = asyncio.run(scenario())
        assert load.ok_answers == 120
        assert replay.ok, replay.describe()
        assert replay.checked == 120
        # Injected offsets span 0.5s; corrected clocks must land well
        # inside that (loopback delays are microseconds).
        assert realized is not None and realized < 0.05

    def test_cluster_rejects_too_few_peers(self):
        with pytest.raises(ValueError, match="at least 2"):
            LiveCluster(ClusterConfig(peers=1))

    def test_query_datagram_via_raw_socket(self):
        """A query encoded by hand gets a well-formed answer back."""
        async def scenario():
            server = await start_correction_server(live_system(complete(3)))
            await ingest(server, make_reports())

            answers = []
            done = asyncio.get_running_loop().create_future()

            class RawClient(asyncio.DatagramProtocol):
                def connection_made(self, transport):
                    transport.sendto(
                        encode(Query(client=2, qid=7)), server.address
                    )

                def datagram_received(self, data, addr):
                    from repro.live.wire import decode

                    answers.append(decode(data))
                    if not done.done():
                        done.set_result(None)

            transport, _ = await (
                asyncio.get_running_loop().create_datagram_endpoint(
                    RawClient, local_addr=("127.0.0.1", 0)
                )
            )
            try:
                await asyncio.wait_for(done, timeout=5.0)
            finally:
                transport.close()
                server.close()
            return answers

        [answer] = asyncio.run(scenario())
        assert answer.qid == 7 and answer.client == 2
        assert answer.status == "ok"
