"""Property tests for the simulator transport driver.

Two halves of the determinism contract (module docstring of
:mod:`repro.sim.transport`):

* **byte-equality**: with no loss, an rto above the worst round trip
  and a roomy window, the transport run reproduces the transport-free
  reference path report-for-report;
* **replayability**: same ``(seed, plan)`` means identical frames,
  retransmit schedules, emergent delays, and reports.

Plus the accounting invariant: handed = delivered + undelivered +
dropped_unreachable on every directed edge, under loss and partitions.
"""

import pytest

from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import UniformDelay
from repro.delays.system import System
from repro.faults.plan import FaultPlan, LinkDown, MessageLoss
from repro.graphs import complete, ring
from repro.sim.network import draw_start_times
from repro.sim.transport import (
    TransportTrace,
    direct_probe_reports,
    run_transport_probes,
)
from repro.transport import TransportConfig

LB, UB = 1.0, 2.0

#: rto above the worst round trip (2 * UB, jittered) so zero loss means
#: zero retransmissions; window above rounds so nothing queues.
CLEAN_CONFIG = TransportConfig(
    rto_initial=4.5, rto_max=24.0, backoff=2.0, jitter=0.1,
    window=64, max_retries=5,
)


def _setup(topo, seed):
    system = System.uniform(topo, BoundedDelay.symmetric(LB, UB))
    samplers = {link: UniformDelay(LB, UB) for link in topo.links}
    starts = draw_start_times(topo.nodes, max_skew=3.0, seed=seed)
    return system, samplers, starts


def _run(topo, seed, plan=None, rounds=6, config=CLEAN_CONFIG):
    system, samplers, starts = _setup(topo, seed)
    return run_transport_probes(
        system, samplers, starts,
        probe_times=tuple(5.0 * (k + 1) for k in range(rounds)),
        seed=seed, plan=plan, config=config,
    )


class TestByteEquality:
    @pytest.mark.parametrize("topo_factory", [lambda: ring(4),
                                              lambda: complete(3)])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_zero_loss_trace_matches_direct_path(self, topo_factory, seed):
        topo = topo_factory()
        system, samplers, starts = _setup(topo, seed)
        probe_times = tuple(5.0 * (k + 1) for k in range(6))
        trace = run_transport_probes(
            system, samplers, starts, probe_times=probe_times,
            seed=seed, config=CLEAN_CONFIG,
        )
        direct = direct_probe_reports(
            system, samplers, starts, probe_times=probe_times, seed=seed,
        )
        by_key = {(r.sender, r.receiver, r.seq): r for r in trace.reports}
        assert set(by_key) == set(direct)
        for key, report in direct.items():
            # Dataclass equality: every field byte-identical (floats
            # compared exactly -- same draws, same arithmetic).
            assert by_key[key] == report, key
        assert trace.retransmits() == 0
        assert trace.max_emergent_delay() <= UB

    def test_zero_loss_views_synchronize_identically(self):
        from repro.core.synchronizer import ClockSynchronizer

        topo = ring(4)
        system, samplers, starts = _setup(topo, seed=3)
        probe_times = tuple(5.0 * (k + 1) for k in range(6))
        trace = run_transport_probes(
            system, samplers, starts, probe_times=probe_times,
            seed=3, config=CLEAN_CONFIG,
        )
        result = ClockSynchronizer(system).from_views(trace.views())
        assert result.precision > 0.0


class TestDeterminism:
    def test_same_seed_same_trace_under_loss(self):
        topo = ring(4)
        plan = FaultPlan(
            faults=(MessageLoss(rate=0.3),), seed=11, name="det"
        )
        a = _run(topo, seed=11, plan=plan)
        b = _run(topo, seed=11, plan=plan)
        assert a.reports == b.reports
        assert a.real_delays == b.real_delays
        assert a.retransmits() == b.retransmits()
        assert a.summary == b.summary
        assert a.retransmits() > 0  # the loss actually bit

    def test_different_seed_different_trace(self):
        topo = ring(4)
        plan = FaultPlan(faults=(MessageLoss(rate=0.3),), seed=11)
        a = _run(topo, seed=11, plan=plan)
        b = _run(topo, seed=12, plan=plan)
        assert a.reports != b.reports


class TestAccounting:
    def test_fully_accounted_under_loss(self):
        trace = _run(
            ring(4), seed=5,
            plan=FaultPlan(faults=(MessageLoss(rate=0.4),), seed=5),
        )
        assert trace.fully_accounted
        for row in trace.accounting().values():
            assert row["handed"] == (
                row["delivered"] + row["undelivered"]
                + row["dropped_unreachable"]
            )
        # Emergent delays exceed the frame bound once retransmission bites.
        assert trace.max_emergent_delay() > UB

    def test_link_down_gives_up_and_stays_accounted(self):
        topo = ring(4)
        plan = FaultPlan(
            faults=(LinkDown(edge=(0, 1)),), seed=0, name="partition"
        )
        trace = _run(topo, seed=0, plan=plan, rounds=8)
        # Both directions of the dead link eventually give up.
        assert set(trace.unreachable) == {(0, 1), (1, 0)}
        assert trace.fully_accounted
        summary_01 = trace.edge_summary(0, 1)
        assert summary_01["give_ups"] == 1
        assert summary_01["undelivered"] > 0
        assert summary_01["delivered"] == 0
        # The rest of the ring still delivered everything.
        assert trace.edge_summary(1, 2)["delivered"] == 8

    def test_asymmetric_loss_inflates_only_one_direction(self):
        topo = ring(4)
        plan = FaultPlan(
            faults=(MessageLoss(rate=0.5, edge=(0, 1)),), seed=2
        )
        trace = _run(topo, seed=2, plan=plan, rounds=8)
        assert trace.edge_summary(0, 1)["retransmits"] > 0
        # Loss on the 0 -> 1 direction also eats acks for 1 -> 0 data,
        # so 1 may *retransmit* -- but its first copies always get
        # through: reverse delivery delays stay inside the frame bounds
        # while forward ones escape them.
        fwd = [d for (s, r, _), d in trace.real_delays.items()
               if (s, r) == (0, 1)]
        rev = [d for (s, r, _), d in trace.real_delays.items()
               if (s, r) == (1, 0)]
        assert max(fwd) > UB
        assert max(rev) <= UB


class TestTraceArtifacts:
    def test_views_and_probe_log_round_trip(self):
        trace = _run(ring(4), seed=1)
        views = trace.views()
        assert set(views) == set(trace.processors)
        assert len(trace.probe_log) == len(trace.reports)

    def test_trace_is_a_plain_dataclass(self):
        trace = _run(ring(4), seed=1)
        assert isinstance(trace, TransportTrace)
        assert trace.summary["frames_dropped"] == 0
        assert trace.fault_log is None
