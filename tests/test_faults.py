"""Fault plans + the simulator-level injector (repro.faults).

Covers the plan data model (validation, JSON round trip), determinism of
seeded injection, every fault class end to end through the simulator,
and the observability surface (``fault.injected`` events, run-summary
counters, the inadmissibility downgrade for corruption).
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DuplicateDelivery,
    FaultPlan,
    FaultPlanError,
    LinkDown,
    MessageLoss,
    ProcessorCrash,
    TimestampCorruption,
    dump_fault_plan,
    example_plan,
    load_fault_plan,
)
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform


def scenario_for(plan=None, seed=0, probes=3):
    base = bounded_uniform(ring(5), lb=1.0, ub=3.0, probes=probes, seed=seed)
    return base if plan is None else base.with_faults(plan)


def delivery_map(alpha):
    """Cross-run-comparable delivery records.

    Message uids are process-global (each run allocates fresh ones), so
    runs are compared by the uid-independent identity
    (sender, receiver, payload) -- unique for probe traffic.
    """
    return {
        (r.message.sender, r.message.receiver, r.message.payload): (
            r.send_real_time,
            r.receive_real_time,
        )
        for r in alpha.message_records().values()
    }


class TestFaultValidation:
    def test_message_loss_needs_rate_or_pattern(self):
        with pytest.raises(FaultPlanError):
            MessageLoss()
        with pytest.raises(FaultPlanError):
            MessageLoss(rate=1.5)
        with pytest.raises(FaultPlanError):
            MessageLoss(pattern=(-1,))

    def test_link_down_window_must_be_nonempty(self):
        with pytest.raises(FaultPlanError):
            LinkDown(edge=(0, 1), start=5.0, end=5.0)

    def test_crash_restart_must_follow_crash(self):
        with pytest.raises(FaultPlanError):
            ProcessorCrash(processor=0, at=10.0, restart=10.0)

    def test_corruption_needs_a_perturbation(self):
        with pytest.raises(FaultPlanError):
            TimestampCorruption()
        with pytest.raises(FaultPlanError):
            TimestampCorruption(offset=1.0, jitter=-0.5)

    def test_duplicate_needs_positive_rate_and_delay(self):
        with pytest.raises(FaultPlanError):
            DuplicateDelivery()
        with pytest.raises(FaultPlanError):
            DuplicateDelivery(rate=0.5, extra_delay=0.0)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(faults=("not a fault",))

    def test_validate_for_unknown_edge(self):
        plan = FaultPlan(faults=(LinkDown(edge=(0, 2)),))
        with pytest.raises(FaultPlanError, match="not a link"):
            plan.validate_for(scenario_for().system)

    def test_validate_for_unknown_processor(self):
        plan = FaultPlan(faults=(ProcessorCrash(processor=99, at=1.0),))
        with pytest.raises(FaultPlanError, match="not a processor"):
            plan.validate_for(scenario_for().system)

    def test_example_plan_validates_for_ring5(self):
        example_plan().validate_for(scenario_for().system)


class TestPlanJson:
    def test_round_trip(self, tmp_path):
        plan = example_plan()
        path = dump_fault_plan(plan, tmp_path / "plan.json")
        assert load_fault_plan(path) == plan

    def test_infinity_survives_the_round_trip(self):
        plan = FaultPlan(faults=(LinkDown(edge=(0, 1), start=1.0),))
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.faults[0].end == float("inf")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_json(
                {"type": "fault.plan", "faults": [{"kind": "gremlins"}]}
            )

    def test_wrong_record_type_rejected(self):
        with pytest.raises(FaultPlanError, match="not a fault.plan"):
            FaultPlan.from_json({"type": "campaign.cell"})

    def test_unreadable_file_is_a_plan_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="cannot read"):
            load_fault_plan(bad)


class TestDeterminism:
    def test_same_plan_same_seed_identical_executions(self):
        plan = FaultPlan(faults=(MessageLoss(rate=0.3),), seed=7)
        a = scenario_for(plan).run()
        b = scenario_for(plan).run()
        assert delivery_map(a) == delivery_map(b)

    def test_surviving_messages_keep_fault_free_delays(self):
        """The plan RNG is separate from the delay RNG (plan docstring)."""
        plan = FaultPlan(faults=(MessageLoss(rate=0.3),), seed=7)
        clean = delivery_map(scenario_for().run())
        faulted = delivery_map(scenario_for(plan).run())
        assert faulted  # some messages survived
        for key, times in faulted.items():
            assert times == clean[key]

    def test_different_plan_seed_different_drops(self):
        # 30 messages at rate 0.4: identical surviving *sets* under
        # different plan seeds would be astronomically unlikely.
        survivors = []
        for plan_seed in (1, 2):
            alpha = scenario_for(
                FaultPlan(faults=(MessageLoss(rate=0.4),), seed=plan_seed)
            ).run()
            survivors.append(set(delivery_map(alpha)))
        assert survivors[0] != survivors[1]


class TestMessageLoss:
    def test_rate_drops_and_counts(self):
        plan = FaultPlan(faults=(MessageLoss(rate=0.5),), seed=1)
        scenario = scenario_for(plan)
        scenario.run()
        summary = scenario.last_run_summary
        assert summary.messages_dropped > 0
        assert summary.faults_injected == summary.messages_dropped
        assert (
            summary.messages_delivered
            == summary.messages_sent - summary.messages_dropped
        )

    def test_pattern_drops_exact_ordinals(self):
        plan = FaultPlan(
            faults=(MessageLoss(pattern=(0,), edge=(0, 1)),), seed=0
        )
        scenario = scenario_for(plan)
        scenario.run()
        log = scenario.last_fault_log
        assert len(log) == 1
        assert log.entries[0].edge == (0, 1)
        # Deterministic: the same delivery set survives every run.
        b = scenario_for(plan)
        alpha_b = b.run()
        assert len(b.last_fault_log) == 1
        assert set(delivery_map(alpha_b)) == set(delivery_map(scenario.run()))


class TestLinkDown:
    def test_link_drops_both_directions_in_window(self):
        plan = FaultPlan(faults=(LinkDown(edge=(0, 1)),), seed=0)
        scenario = scenario_for(plan)
        alpha = scenario.run()
        for record in alpha.message_records().values():
            assert {record.message.sender, record.message.receiver} != {0, 1}
        assert scenario.last_fault_log.count("link-down") > 0


class TestProcessorCrash:
    def test_crashed_processor_goes_silent(self):
        plan = FaultPlan(faults=(ProcessorCrash(processor=2, at=0.0),), seed=0)
        scenario = scenario_for(plan)
        alpha = scenario.run()
        summary = scenario.last_run_summary
        assert summary.crash_suppressed > 0
        # Fail-silent from the start: 2 receives nothing and, beyond its
        # start bookkeeping, sends nothing after the crash instant.
        view = alpha.views()[2]
        assert not view.receive_clock_times()

    def test_crash_window_recovers(self):
        plan = FaultPlan(
            faults=(ProcessorCrash(processor=2, at=0.0, restart=21.0),),
            seed=0,
        )
        scenario = scenario_for(plan)
        alpha = scenario.run()
        # Probes continue past the restart, so 2 hears something again.
        assert alpha.views()[2].receive_clock_times()


class TestDuplicateDelivery:
    def test_duplicates_are_tolerated_and_counted(self):
        plan = FaultPlan(faults=(DuplicateDelivery(rate=1.0),), seed=0)
        scenario = scenario_for(plan)
        alpha = scenario.run()
        summary = scenario.last_run_summary
        assert summary.messages_duplicated > 0
        assert alpha.duplicate_receives  # model kept first-wins records
        # First delivery wins: delay statistics match the clean run.
        assert delivery_map(alpha) == delivery_map(scenario_for().run())


class TestTimestampCorruption:
    def test_breaking_corruption_downgrades_to_inadmissible(self):
        plan = FaultPlan(
            faults=(TimestampCorruption(offset=-5.0, edge=(0, 1)),), seed=0
        )
        scenario = scenario_for(plan)
        scenario.run()  # must not raise SimulationError
        summary = scenario.last_run_summary
        assert summary.inadmissible
        assert scenario.last_fault_log.count("timestamp-corruption") > 0
        assert scenario.last_fault_log.count("inadmissible-execution") == 1

    def test_mild_corruption_stays_admissible(self):
        # Bounds are [1, 3] and true delays U[1, 3]; a tiny jitter can
        # stay inside them for some messages but the flag only trips
        # when the assumptions actually break.
        plan = FaultPlan(
            faults=(TimestampCorruption(offset=0.0, jitter=1e-9),), seed=0
        )
        scenario = scenario_for(plan)
        scenario.run()
        assert scenario.last_run_summary.faults_injected > 0


class TestObservability:
    def test_every_injected_fault_emits_an_event(self):
        from repro.obs import Recorder, set_recorder

        class Sink:
            def __init__(self):
                self.events = []

            def on_telemetry(self, name, payload):
                self.events.append((name, payload))

        plan = FaultPlan(
            faults=(MessageLoss(rate=0.5), DuplicateDelivery(rate=0.5)),
            seed=3,
        )
        scenario = scenario_for(plan)
        recorder = Recorder()
        sink = Sink()
        recorder.add_observer(sink)
        previous = set_recorder(recorder)
        try:
            scenario.run()
        finally:
            set_recorder(previous)
        injected = [e for e in sink.events if e[0] == "fault.injected"]
        assert len(injected) == len(scenario.last_fault_log)
        kinds = {e[1]["fault"].kind for e in injected}
        assert "message-loss" in kinds
        assert "duplicate-delivery" in kinds

    def test_summary_lines_surface_fault_counters(self):
        plan = FaultPlan(faults=(MessageLoss(rate=0.5),), seed=1)
        scenario = scenario_for(plan)
        scenario.run()
        labels = dict(scenario.last_run_summary.lines())
        assert labels["faults injected"] == scenario.last_run_summary.faults_injected


class TestInjectorUnit:
    def test_injector_seed_mixes_run_and_plan_seeds(self):
        plan = FaultPlan(faults=(MessageLoss(rate=0.5),), seed=9)
        system = scenario_for().system
        a = FaultInjector(plan, system, run_seed=1)
        b = FaultInjector(plan, system, run_seed=2)
        draws_a = [a._rng.random() for _ in range(4)]
        draws_b = [b._rng.random() for _ in range(4)]
        assert draws_a != draws_b

    def test_scenario_with_faults_renames_and_clears(self):
        plan = FaultPlan(faults=(MessageLoss(rate=0.1),), seed=5, name="x")
        scenario = scenario_for()
        faulted = scenario.with_faults(plan)
        assert faulted.name.endswith("+faults[x:5]")
        assert faulted.with_faults(None).name == scenario.name
