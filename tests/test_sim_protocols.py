"""Unit tests for the ready-made protocols (repro.sim.protocols)."""

import pytest

from repro.delays.bounds import no_bounds
from repro.delays.distributions import Constant
from repro.delays.system import System
from repro.graphs.topology import line, ring, star
from repro.model.events import MessageReceiveEvent
from repro.sim.network import NetworkSimulator
from repro.sim.protocols import (
    Echo,
    Probe,
    echo_automata,
    flood_automata,
    probe_automata,
    probe_schedule,
)


def run(topo, automata, seed=0, starts=None, delay=1.0):
    system = System.uniform(topo, no_bounds())
    samplers = {link: Constant(delay) for link in topo.links}
    starts = starts or {p: 0.0 for p in topo.nodes}
    return NetworkSimulator(system, samplers, starts, seed=seed).run(automata)


class TestProbeSchedule:
    def test_schedule_values(self):
        assert probe_schedule(3, 5.0, 2.0) == (5.0, 7.0, 9.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            probe_schedule(0, 5.0, 2.0)
        with pytest.raises(ValueError):
            probe_schedule(1, 0.0, 2.0)
        with pytest.raises(ValueError):
            probe_schedule(1, 5.0, -1.0)


class TestProbeAutomaton:
    def test_message_count_and_payload_rounds(self):
        topo = ring(4)
        alpha = run(topo, dict(probe_automata(topo, probe_schedule(3, 1.0, 1.0))))
        records = alpha.message_records().values()
        assert len(records) == 4 * 2 * 3
        rounds = {r.message.payload.round for r in records}
        assert rounds == {0, 1, 2}
        origins = {r.message.payload.origin for r in records}
        assert origins == set(topo.nodes)

    def test_probes_cover_both_directions(self):
        topo = line(3)
        alpha = run(topo, dict(probe_automata(topo, probe_schedule(1, 1.0, 1.0))))
        edges = {r.edge for r in alpha.message_records().values()}
        assert edges == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_rejects_nonpositive_probe_times(self):
        with pytest.raises(ValueError):
            probe_automata(line(2), [0.0])


class TestEchoAutomaton:
    def test_each_probe_gets_an_echo(self):
        topo = line(2)
        automata = dict(
            echo_automata(topo, {0: probe_schedule(2, 1.0, 1.0)})
        )
        alpha = run(topo, automata)
        records = list(alpha.message_records().values())
        probes = [r for r in records if isinstance(r.message.payload, Probe)]
        echoes = [r for r in records if isinstance(r.message.payload, Echo)]
        assert len(probes) == 2
        assert len(echoes) == 2
        # Every echo references one of the probes and goes backwards.
        for echo in echoes:
            assert echo.edge == (1, 0)
            assert echo.message.payload.probe in [
                p.message.payload for p in probes
            ]

    def test_echo_automaton_rejects_bad_times(self):
        from repro.sim.protocols import EchoAutomaton

        with pytest.raises(ValueError):
            EchoAutomaton(me=0, probe_times=[-1.0])


class TestFloodAutomaton:
    def test_flood_reaches_everyone_once(self):
        topo = star(5)
        alpha = run(topo, dict(flood_automata(topo, origins=[1])))
        # Leaf 1 -> hub 0 -> other leaves; every processor sees the token.
        for p in topo.nodes:
            if p == 1:
                continue
            received = [
                ts
                for ts in alpha.history(p)
                if isinstance(ts.step.interrupt, MessageReceiveEvent)
            ]
            assert any(
                ts.step.interrupt.message.payload == ("flood", 1)
                for ts in received
            )

    def test_flood_terminates_on_cycle(self):
        topo = ring(6)
        alpha = run(topo, dict(flood_automata(topo, origins=[0])))
        alpha.validate()  # termination is implied by run() returning

    def test_multiple_origins(self):
        topo = ring(4)
        alpha = run(topo, dict(flood_automata(topo, origins=[0, 2])))
        final_states = {
            p: alpha.history(p).steps[-1].step.new_state for p in topo.nodes
        }
        for state in final_states.values():
            assert state == frozenset({0, 2})
