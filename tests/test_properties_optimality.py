"""Property-based tests for the optimality theorems (hypothesis).

Theorem 4.4/4.6 end to end: on random admissible ``ms~`` matrices, the
SHIFTS corrections achieve the maximum cycle mean exactly and no other
correction vector does better; on random simulated executions the
realized spread under any admissible re-timing stays within the claimed
precision.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.adversary import random_admissible_shift_vector
from repro.analysis.ground_truth import shift_vector_is_admissible
from repro.core.precision import realized_spread, rho_bar
from repro.core.shifts import shifts
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import ring
from repro.model.execution import shift_execution
from repro.workloads.scenarios import bounded_uniform


@st.composite
def ms_matrices(draw, max_n=5):
    """Random ms~ matrices consistent with *some* execution.

    Generated the honest way: pick true non-negative local shifts and
    start times, then translate -- exactly how real ms~ arise.  This
    guarantees no negative cycles.
    """
    n = draw(st.integers(min_value=2, max_value=max_n))
    starts = [
        draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
        for _ in range(n)
    ]
    ms_true = {}
    for p in range(n):
        for q in range(n):
            if p != q:
                ms_true[(p, q)] = draw(
                    st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
                )
    # Close under shortest paths so the matrix is a genuine distance-like
    # object (ms is one by Lemma 5.3).
    for k in range(n):
        for p in range(n):
            for q in range(n):
                if p != q and p != k and q != k:
                    via = ms_true[(p, k)] + ms_true[(k, q)]
                    if via < ms_true[(p, q)]:
                        ms_true[(p, q)] = via
    ms_tilde = {
        (p, q): v + starts[p] - starts[q] for (p, q), v in ms_true.items()
    }
    return list(range(n)), ms_tilde


class TestShiftsOptimality:
    @given(ms_matrices())
    @settings(max_examples=60, deadline=None)
    def test_achieves_claimed_precision(self, instance):
        processors, ms_tilde = instance
        outcome = shifts(processors, ms_tilde)
        achieved = rho_bar(ms_tilde, outcome.corrections)
        scale = max(1.0, abs(outcome.precision))
        assert achieved <= outcome.precision + 1e-7 * scale

    @given(
        ms_matrices(),
        st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=5,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_correction_vector_beats_shifts(self, instance, raw):
        processors, ms_tilde = instance
        outcome = shifts(processors, ms_tilde)
        rival = {
            p: raw[i % len(raw)] for i, p in enumerate(processors)
        }
        assert rho_bar(ms_tilde, rival) >= outcome.precision - 1e-7 * max(
            1.0, abs(outcome.precision)
        )

    @given(ms_matrices())
    @settings(max_examples=40, deadline=None)
    def test_critical_cycle_witnesses_precision(self, instance):
        processors, ms_tilde = instance
        outcome = shifts(processors, ms_tilde)
        cycle = outcome.critical_cycle
        assert cycle is not None
        total = sum(
            ms_tilde[(cycle[i], cycle[(i + 1) % len(cycle)])]
            for i in range(len(cycle))
        )
        scale = max(1.0, abs(outcome.precision))
        assert abs(total / len(cycle) - outcome.precision) < 1e-7 * scale


class TestEndToEndSoundness:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_no_admissible_retiming_exceeds_precision(self, seed):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=seed)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        rng = random.Random(seed)
        for _ in range(10):
            vec = random_admissible_shift_vector(scenario.system, alpha, rng)
            assert shift_vector_is_admissible(scenario.system, alpha, vec)
            spread = realized_spread(
                shift_execution(alpha, vec).start_times(), result.corrections
            )
            assert spread <= result.precision + 1e-6
