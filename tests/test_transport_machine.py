"""Unit tests for the pure reliable-delivery state machine.

The machine (:mod:`repro.transport.machine`) is driver-agnostic: these
tests drive it directly with explicit clocks and hand-carried frames --
no scheduler, no sockets -- and pin the protocol invariants both the
simulator and the live service rely on.
"""

import pytest

from repro.transport import (
    AckSegment,
    ChannelStats,
    DataSegment,
    Deliver,
    Emit,
    PeerUnreachable,
    ReliableTransport,
    TransportConfig,
    TransportError,
    aggregate_stats,
)


def carry(actions, machines, now):
    """Deliver every emitted frame to its destination machine; return
    the non-Emit actions plus whatever the receivers produced."""
    out = []
    for action in actions:
        if isinstance(action, Emit):
            frame = action.frame
            out.extend(carry(
                machines[frame.dst].on_frame(frame, now), machines, now
            ))
        else:
            out.append(action)
    return out


class TestConfig:
    def test_defaults_valid(self):
        TransportConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rto_initial": 0.0},
            {"rto_initial": 2.0, "rto_max": 1.0},
            {"backoff": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.0},
            {"window": 0},
            {"max_retries": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(TransportError):
            TransportConfig(**kwargs)

    def test_retry_offsets_back_off_and_cap(self):
        config = TransportConfig(
            rto_initial=1.0, rto_max=4.0, backoff=2.0, jitter=0.0,
            max_retries=4,
        )
        # rto sequence 1, 2, 4, 4 (capped); offsets are cumulative.
        assert config.retry_offsets() == (1.0, 3.0, 7.0, 11.0)

    def test_worst_case_delay_adds_frame_bound(self):
        config = TransportConfig(
            rto_initial=1.0, rto_max=4.0, backoff=2.0, jitter=0.0,
            max_retries=4,
        )
        assert config.worst_case_delay(2.0) == 13.0
        zero = TransportConfig(jitter=0.0, max_retries=0)
        assert zero.worst_case_delay(2.0) == 2.0

    def test_jitter_widens_offsets(self):
        plain = TransportConfig(rto_initial=1.0, rto_max=8.0, jitter=0.0)
        jittered = TransportConfig(rto_initial=1.0, rto_max=8.0, jitter=0.2)
        for lo, hi in zip(plain.retry_offsets(), jittered.retry_offsets()):
            assert hi == pytest.approx(lo * 1.2)


class TestHappyPath:
    def test_send_deliver_ack_roundtrip(self):
        machines = {
            p: ReliableTransport(p, TransportConfig(jitter=0.0))
            for p in ("a", "b")
        }
        actions = machines["a"].send("b", "hello", now=0.0)
        (emit,) = actions
        assert isinstance(emit.frame, DataSegment)
        assert emit.frame.seq == 0
        delivered = carry(actions, machines, now=0.05)
        assert delivered == [Deliver(src="a", seq=0, payload="hello")]
        assert machines["a"].idle
        assert machines["a"].stats("b").rtt_samples == [pytest.approx(0.05)]
        assert machines["b"].stats("a").delivered == 1
        assert machines["b"].stats("a").acks_sent == 1

    def test_self_send_rejected(self):
        machine = ReliableTransport("a")
        with pytest.raises(TransportError):
            machine.send("a", "x", now=0.0)

    def test_non_frame_rejected(self):
        machine = ReliableTransport("a")
        with pytest.raises(TransportError):
            machine.on_frame("not a frame", now=0.0)


class TestWindow:
    def test_excess_sends_queue_and_drain_on_ack(self):
        config = TransportConfig(window=2, jitter=0.0)
        machine = ReliableTransport("a", config)
        emits = []
        for k in range(5):
            emits.extend(machine.send("b", f"p{k}", now=0.0))
        # Only the window went out; the rest queued.
        assert [e.frame.seq for e in emits] == [0, 1]
        assert machine.pending("b") == 5
        # Cumulative ack for both in-flight segments frees two slots.
        actions = machine.on_frame(
            AckSegment(src="b", dst="a", cum=2), now=0.1
        )
        assert [a.frame.seq for a in actions] == [2, 3]
        assert machine.pending("b") == 3

    def test_sack_releases_out_of_order_segment(self):
        config = TransportConfig(window=4, jitter=0.0)
        machine = ReliableTransport("a", config)
        for k in range(3):
            machine.send("b", f"p{k}", now=0.0)
        machine.on_frame(
            AckSegment(src="b", dst="a", cum=0, sacks=(1,)), now=0.1
        )
        # seq 1 is acked selectively; 0 and 2 still pending.
        assert machine.pending("b") == 2
        assert sorted(machine._send["b"].in_flight) == [0, 2]


class TestReceiver:
    def test_duplicate_suppressed_but_reacked(self):
        machine = ReliableTransport("b")
        frame = DataSegment(src="a", dst="b", seq=0, payload="x")
        first = machine.on_frame(frame, now=0.0)
        assert any(isinstance(a, Deliver) for a in first)
        second = machine.on_frame(frame, now=0.1)
        # No second delivery, but the ack is resent (ours may have died).
        assert not any(isinstance(a, Deliver) for a in second)
        acks = [a for a in second
                if isinstance(a, Emit) and isinstance(a.frame, AckSegment)]
        assert len(acks) == 1 and acks[0].frame.cum == 1
        assert machine.stats("a").duplicates == 1
        assert machine.stats("a").acks_sent == 2

    def test_out_of_order_sacked_then_cum_advances(self):
        machine = ReliableTransport("b")
        out = machine.on_frame(
            DataSegment(src="a", dst="b", seq=1, payload="y"), now=0.0
        )
        ack = [a.frame for a in out if isinstance(a, Emit)
               and isinstance(a.frame, AckSegment)][0]
        assert ack.cum == 0 and ack.sacks == (1,)
        out = machine.on_frame(
            DataSegment(src="a", dst="b", seq=0, payload="x"), now=0.1
        )
        ack = [a.frame for a in out if isinstance(a, Emit)
               and isinstance(a.frame, AckSegment)][0]
        assert ack.cum == 2 and ack.sacks == ()


class TestRetransmission:
    def test_timer_backs_off_then_gives_up(self):
        config = TransportConfig(
            rto_initial=1.0, rto_max=4.0, backoff=2.0, jitter=0.0,
            max_retries=2,
        )
        machine = ReliableTransport("a", config)
        machine.send("b", "x", now=0.0)
        assert machine.next_timeout() == pytest.approx(1.0)
        # First retransmission at 1.0; next timer doubles.
        (emit,) = machine.on_timer(1.0)
        assert isinstance(emit.frame, DataSegment)
        assert machine.next_timeout() == pytest.approx(3.0)
        (emit,) = machine.on_timer(3.0)
        assert isinstance(emit.frame, DataSegment)
        assert machine.next_timeout() == pytest.approx(7.0)
        # max_retries exhausted: the third firing gives up.
        (give_up,) = machine.on_timer(7.0)
        assert isinstance(give_up, PeerUnreachable)
        assert give_up.undelivered == ("x",)
        assert machine.unreachable == {"b"}
        assert machine.next_timeout() is None
        stats = machine.stats("b")
        assert stats.retransmits == 2
        assert stats.timeouts == 3
        assert stats.give_ups == 1
        assert stats.undelivered == 1

    def test_give_up_surfaces_queue_and_kills_channel(self):
        config = TransportConfig(
            rto_initial=1.0, rto_max=1.0, jitter=0.0, window=1,
            max_retries=0,
        )
        machine = ReliableTransport("a", config)
        machine.send("b", "x", now=0.0)
        machine.send("b", "y", now=0.0)  # queued behind the window
        (give_up,) = machine.on_timer(1.0)
        assert give_up.undelivered == ("x", "y")
        # Later sends are refused, loudly.
        assert machine.send("b", "z", now=2.0) == []
        assert machine.stats("b").dropped_unreachable == 1
        assert machine.idle

    def test_timer_is_noop_before_deadline(self):
        config = TransportConfig(rto_initial=1.0, rto_max=8.0, jitter=0.0)
        machine = ReliableTransport("a", config)
        machine.send("b", "x", now=0.0)
        assert machine.on_timer(0.5) == []
        assert machine.stats("b").timeouts == 0

    def test_karn_rule_skips_retransmitted_rtt(self):
        config = TransportConfig(rto_initial=1.0, rto_max=8.0, jitter=0.0)
        machine = ReliableTransport("a", config)
        machine.send("b", "x", now=0.0)
        machine.on_timer(1.0)  # retransmitted: ack now ambiguous
        machine.on_frame(AckSegment(src="b", dst="a", cum=1), now=1.2)
        assert machine.stats("b").rtt_samples == []
        assert machine.idle


class TestDeterminism:
    def _schedule(self, seed):
        config = TransportConfig(
            rto_initial=1.0, rto_max=16.0, backoff=2.0, jitter=0.3,
            max_retries=4,
        )
        machine = ReliableTransport("a", config, seed=seed)
        machine.send("b", "x", now=0.0)
        deadlines = []
        while (t := machine.next_timeout()) is not None:
            deadlines.append(t)
            machine.on_timer(t)
        return deadlines

    def test_same_seed_same_retransmit_schedule(self):
        assert self._schedule(7) == self._schedule(7)

    def test_different_seed_different_jitter(self):
        assert self._schedule(7) != self._schedule(8)

    def test_seed_streams_keyed_by_endpoint(self):
        config = TransportConfig(jitter=0.5)
        a = ReliableTransport("a", config, seed=0)
        b = ReliableTransport("b", config, seed=0)
        a.send("b", "x", now=0.0)
        b.send("a", "x", now=0.0)
        # Same seed, different endpoints: no lockstep retransmission.
        assert a.next_timeout() != b.next_timeout()


class TestObserverAndStats:
    def test_observer_sees_every_counter(self):
        events = []
        machine = ReliableTransport(
            "a",
            TransportConfig(rto_initial=1.0, rto_max=1.0, jitter=0.0,
                            max_retries=0),
            observer=lambda ev, src, dst, v: events.append((ev, src, dst, v)),
        )
        machine.send("b", "x", now=0.0)
        machine.on_timer(1.0)
        names = [e[0] for e in events]
        assert names == [
            "handed", "segments_sent", "timeouts", "give_ups", "undelivered",
        ]
        assert all(src == "a" and dst == "b" for _, src, dst, _ in events)

    def test_aggregate_stats_sums_channels(self):
        a = ChannelStats(handed=2, delivered=1, rtt_samples=[0.1])
        b = ChannelStats(handed=3, delivered=3, rtt_samples=[0.2, 0.3])
        total = aggregate_stats({"x": a, "y": b})
        assert total["handed"] == 5.0
        assert total["delivered"] == 4.0
        assert total["rtt_count"] == 3.0
