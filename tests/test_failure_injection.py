"""Failure-injection tests: hostile inputs and misbehaving components.

Each scenario injects one specific failure and asserts the system fails
*loudly and precisely* (specific exception, specific message) or degrades
*honestly* (weaker but still sound results) -- never silently corrupting
an answer.
"""

import math

import pytest

from repro.core.global_estimates import InconsistentViewsError
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay, no_bounds
from repro.delays.distributions import Constant, UniformDelay
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.model.events import Event, StartEvent, TimerEvent
from repro.sim.network import NetworkSimulator, SimulationError
from repro.sim.processor import Automaton, IdleAutomaton, Send, SetTimer, Transition
from repro.sim.protocols import probe_automata, probe_schedule

from conftest import make_two_node_execution


class _CrashingAutomaton(Automaton):
    """Raises on its second interrupt (mid-run crash)."""

    def initial_state(self):
        return 0

    def on_interrupt(self, state, clock_time, event):
        if isinstance(event, StartEvent):
            return Transition.to(1, timers=(SetTimer(5.0),))
        raise RuntimeError("injected automaton crash")


class _SelfSendAutomaton(Automaton):
    def initial_state(self):
        return 0

    def on_interrupt(self, state, clock_time, event):
        if isinstance(event, StartEvent):
            return Transition.to(1, timers=(SetTimer(1.0),))
        if isinstance(event, TimerEvent):
            return Transition.to(2, sends=(Send(to=0, payload="me"),))
        return Transition.to(state)


class TestSimulatorFailures:
    def _sim(self, topo=None, **kwargs):
        topo = topo or line(2)
        return NetworkSimulator(
            System.uniform(topo, no_bounds()),
            {link: Constant(1.0) for link in topo.links},
            {p: 0.0 for p in topo.nodes},
            **kwargs,
        )

    def test_automaton_crash_propagates(self):
        """User-code exceptions must surface, not be swallowed."""
        with pytest.raises(RuntimeError, match="injected"):
            self._sim().run({0: _CrashingAutomaton(), 1: IdleAutomaton()})

    def test_self_send_rejected(self):
        """Processor 0 sending to itself: no self-links exist."""
        with pytest.raises(SimulationError, match="no such link"):
            self._sim().run({0: _SelfSendAutomaton(), 1: IdleAutomaton()})

    def test_extra_automata_tolerated(self):
        """Automata for unknown processors are ignored (not an error:
        the mapping may come from a larger deployment)."""
        alpha = self._sim().run(
            {0: IdleAutomaton(), 1: IdleAutomaton(), 99: IdleAutomaton()}
        )
        assert set(alpha.processors) == {0, 1}

    def test_negative_start_times_work(self):
        """Real time has no distinguished zero; negative starts are fine."""
        topo = line(2)
        sim = NetworkSimulator(
            System.uniform(topo, no_bounds()),
            {(0, 1): Constant(1.0)},
            {0: -50.0, 1: -49.0},
        )
        alpha = sim.run(
            dict(probe_automata(topo, probe_schedule(1, 2.0, 1.0)))
        )
        alpha.validate()
        assert alpha.start_time(0) == -50.0


class TestPoisonedViews:
    def test_contradictory_bounds_raise_inconsistent(self):
        """Delays wildly outside the declared bounds: the pipeline must
        refuse with InconsistentViewsError, not return garbage."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 2.0))
        alpha = make_two_node_execution(0.0, 0.0, [10.0], [10.0])
        with pytest.raises(InconsistentViewsError):
            ClockSynchronizer(system).from_execution(alpha)

    def test_foreign_messages_in_views_rejected(self):
        """A view containing a receive whose send is in no view."""
        from repro.core.estimates import IncompleteViewsError, estimated_delays

        alpha = make_two_node_execution(0.0, 0.0, [2.0], [2.0])
        views = alpha.views()
        views.pop(0)
        with pytest.raises(IncompleteViewsError):
            estimated_delays(views)

    def test_empty_views_synchronize_to_components(self):
        """No traffic at all: every processor is its own component, the
        precision is honestly infinite, corrections all zero."""
        from repro.model.builder import ExecutionBuilder

        builder = ExecutionBuilder()
        for p in range(3):
            builder.processor(p, start=float(p))
        alpha = builder.build()
        system = System.uniform(line(3), no_bounds())
        result = ClockSynchronizer(system).from_execution(alpha)
        assert math.isinf(result.precision)
        assert len(result.components) == 3
        assert all(x == 0.0 for x in result.corrections.values())


class TestNumericalExtremes:
    def test_huge_start_skews(self):
        """Start offsets ~1e9 with delays ~1: estimates are huge numbers
        but cycle cancellation keeps the precision exact."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 1.0e9, [2.0], [2.0])
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(1.0, abs=1e-5)
        from repro.core.precision import realized_spread

        assert realized_spread(
            alpha.start_times(), result.corrections
        ) <= result.precision + 1e-5

    def test_tiny_delays(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(0.0, 1e-9))
        alpha = make_two_node_execution(0.0, 0.0, [5e-10], [5e-10])
        result = ClockSynchronizer(system).from_execution(alpha)
        assert 0.0 <= result.precision <= 1e-9

    def test_zero_width_bounds_zero_precision(self):
        system = System.uniform(ring(4), BoundedDelay.symmetric(2.0, 2.0))
        samplers = {link: Constant(2.0) for link in ring(4).links}
        sim = NetworkSimulator(
            system, samplers, {p: float(p) for p in range(4)}
        )
        alpha = sim.run(
            dict(probe_automata(ring(4), probe_schedule(1, 5.0, 1.0)))
        )
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(0.0, abs=1e-12)


class TestPartialTraffic:
    def test_single_silent_link_on_ring_degrades_gracefully(self):
        """One silent link under finite bounds still constrains (the
        bounds hold vacuously... no: no messages means no estimates, but
        finite ub still bounds shifts via the OTHER direction).  Verify
        precision stays finite thanks to the ring's redundancy."""
        topo = ring(4)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        sim = NetworkSimulator(
            system, samplers, {p: 0.5 * p for p in topo.nodes}, seed=1,
            loss={topo.links[0]: 1.0},
        )
        alpha = sim.run(
            dict(probe_automata(topo, probe_schedule(3, 5.0, 2.0)))
        )
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.is_fully_synchronized
        assert not math.isinf(result.precision)
