"""Tests for the leader-based distributed protocol (repro.extensions.leader)."""

import pytest

from repro.core.global_estimates import global_shift_estimates
from repro.core.precision import realized_spread, rho_bar
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.base import DirectionStats
from repro.extensions.leader import (
    LeaderSyncAutomaton,
    NodeState,
    ProtocolIncomplete,
    corrections_from_execution,
    leader_automata,
    tree_routing,
)
from repro.graphs.topology import Topology, line, ring, star
from repro.sim.network import NetworkSimulator
from repro.workloads.scenarios import bounded_uniform, heterogeneous


def run_protocol(scenario, leader=0, probe_times=(12.0, 16.0), report_time=60.0):
    automata = leader_automata(
        scenario.system,
        leader=leader,
        probe_times=list(probe_times),
        report_time=report_time,
    )
    sim = NetworkSimulator(
        scenario.system, scenario.samplers, scenario.start_times,
        seed=scenario.seed,
    )
    return sim.run(automata)


class TestTreeRouting:
    def test_star_routes_direct(self):
        routing = tree_routing(star(4), leader=0)
        assert routing[1][0] == 0
        assert routing[0][3] == 3
        # Leaf to leaf goes through the hub.
        assert routing[1][2] == 0

    def test_line_routes_along_path(self):
        routing = tree_routing(line(4), leader=0)
        assert routing[3][0] == 2
        assert routing[2][0] == 1
        assert routing[0][3] == 1
        assert routing[1][3] == 2

    def test_disconnected_rejected(self):
        topo = Topology(name="disc", nodes=(0, 1, 2), links=((0, 1),))
        with pytest.raises(ValueError, match="connected"):
            tree_routing(topo, 0)


class TestProtocolRuns:
    @pytest.mark.parametrize("leader", [0, 2])
    def test_everyone_gets_a_correction(self, leader):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=4)
        alpha = run_protocol(scenario, leader=leader)
        corrections = corrections_from_execution(alpha)
        assert set(corrections) == set(scenario.system.processors)

    def test_corrections_bounded_by_probe_phase_optimum(self):
        """The protocol achieves exactly the optimum for the statistics the
        leader saw (optimality relative to the probe phase, Section 7)."""
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=4)
        alpha = run_protocol(scenario)
        corrections = corrections_from_execution(alpha)

        leader_state = alpha.history(0).steps[-1].step.new_state
        stats = {}
        for report in leader_state.reports:
            for entry in report.entries:
                stats[(entry.sender, report.origin)] = DirectionStats(
                    count=entry.count,
                    min_delay=entry.min_delay,
                    max_delay=entry.max_delay,
                )
        mls = scenario.system.mls_from_stats(stats)
        ms = global_shift_estimates(
            list(scenario.system.processors), mls
        )
        probe_opt = (
            ClockSynchronizer(scenario.system)
            .from_local_estimates(mls)
            .precision
        )
        achieved = rho_bar(ms, corrections)
        assert achieved == pytest.approx(probe_opt, abs=1e-9)

    def test_realized_spread_within_claimed_precision(self):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=6)
        alpha = run_protocol(scenario)
        corrections = corrections_from_execution(alpha)
        full = ClockSynchronizer(scenario.system).from_execution(alpha)
        spread = realized_spread(alpha.start_times(), corrections)
        probe_rho = rho_bar(full.ms_tilde, corrections)
        assert spread <= probe_rho + 1e-9

    def test_works_on_heterogeneous_systems(self):
        scenario = heterogeneous(line(4), seed=2)
        alpha = run_protocol(scenario, report_time=80.0)
        corrections = corrections_from_execution(alpha)
        assert len(corrections) == 4

    def test_incomplete_protocol_detected(self):
        """If the run is cut before assignments, extraction fails loudly."""
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=1)
        # Report time far beyond any probe, but run plain probe automata
        # (i.e. a run that never assigns corrections).
        from repro.sim.protocols import probe_automata, probe_schedule

        sim = NetworkSimulator(
            scenario.system,
            scenario.samplers,
            scenario.start_times,
            seed=1,
        )
        alpha = sim.run(
            dict(probe_automata(scenario.topology, probe_schedule(1, 12.0, 1.0)))
        )
        with pytest.raises(ProtocolIncomplete):
            corrections_from_execution(alpha)

    def test_report_time_must_follow_probes(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=1)
        with pytest.raises(ValueError, match="report_time"):
            leader_automata(
                scenario.system,
                leader=0,
                probe_times=[10.0, 20.0],
                report_time=15.0,
            )

    def test_protocol_histories_validate(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=9)
        alpha = run_protocol(scenario)
        alpha.validate()
