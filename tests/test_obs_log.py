"""Structured JSONL logging (repro.obs.log) and its producers.

ISSUE requirements covered here:

* ``log_event`` records carry level/event/logger/ts plus structured
  fields, are correlated with the ambient recorder's span and simulated
  time when one is installed, and mirror a human-readable line to
  stdlib logging (so ``--log-level`` keeps working);
* ``validate_log_file`` enforces the record contract line by line;
* the converted runner paths actually emit: cache corruption and
  torn-tail stream recovery produce structured events.
"""

import json
import logging

import pytest

from repro.obs.log import (
    LOG_LEVELS,
    LOG_RECORD_TYPE,
    add_log_sink,
    get_logger,
    jsonl_logging,
    log_event,
    validate_log_file,
)
from repro.obs.recorder import recording


def read_records(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestLogEvent:
    def test_record_shape(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with jsonl_logging(target):
            record = log_event(
                "warning", "cache.corrupt_entry",
                logger="repro.test", path="/x.json", reason="torn",
            )
        assert record["record"] == LOG_RECORD_TYPE
        assert record["level"] == "warning"
        assert record["event"] == "cache.corrupt_entry"
        assert record["logger"] == "repro.test"
        assert isinstance(record["ts"], float)
        assert record["path"] == "/x.json"
        (stored,) = read_records(target)
        assert stored == json.loads(json.dumps(record))

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log_event("loud", "some.event")

    def test_all_levels_accepted(self):
        for level in LOG_LEVELS:
            assert log_event(level, "test.event")["level"] == level

    def test_span_and_sim_time_correlation(self, tmp_path):
        with recording() as recorder:
            with recorder.span("campaign.run") as span:
                recorder.set_sim_time(42.5)
                record = log_event("info", "test.correlated")
        assert record["span"] == span.span_id
        assert record["span_name"] == "campaign.run"
        assert record["sim_time"] == 42.5

    def test_no_recorder_no_correlation(self):
        record = log_event("info", "test.bare")
        assert "span" not in record
        assert "sim_time" not in record

    def test_stdlib_mirror(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.mirror"):
            log_event(
                "warning", "sink.recovered_torn_tail",
                logger="repro.mirror", truncated_bytes=17,
            )
        (entry,) = caplog.records
        assert "sink.recovered_torn_tail" in entry.message
        assert "truncated_bytes=17" in entry.message

    def test_structured_logger_facade(self, tmp_path):
        target = tmp_path / "events.jsonl"
        log = get_logger("repro.facade")
        with jsonl_logging(target):
            log.info("a.b", x=1)
            log.error("c.d")
        first, second = read_records(target)
        assert (first["level"], first["event"]) == ("info", "a.b")
        assert (second["level"], second["logger"]) == ("error", "repro.facade")

    def test_nonfinite_fields_survive_json(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with jsonl_logging(target):
            log_event("info", "test.inf", value=float("inf"))
        (record,) = read_records(target)
        assert record["value"] == "inf"

    def test_closed_sink_stops_receiving(self, tmp_path):
        target = tmp_path / "events.jsonl"
        sink = add_log_sink(target)
        log_event("info", "test.one")
        sink.close()
        log_event("info", "test.two")
        assert len(read_records(target)) == 1


class TestValidator:
    def write_and_validate(self, tmp_path, lines):
        target = tmp_path / "events.jsonl"
        target.write_text("\n".join(lines) + "\n")
        return validate_log_file(target)

    def good_line(self, **overrides):
        record = {
            "record": "log", "ts": 1.0, "level": "info",
            "logger": "repro", "event": "a.b",
        }
        record.update(overrides)
        return json.dumps(record)

    def test_counts_valid_records(self, tmp_path):
        assert self.write_and_validate(
            tmp_path, [self.good_line(), self.good_line(level="error")]
        ) == 2

    def test_rejects_bad_json(self, tmp_path):
        with pytest.raises(ValueError, match="not valid JSON"):
            self.write_and_validate(tmp_path, [self.good_line(), "{torn"])

    def test_rejects_wrong_record_type(self, tmp_path):
        with pytest.raises(ValueError, match="record type"):
            self.write_and_validate(tmp_path, [self.good_line(record="metric")])

    def test_rejects_unknown_level(self, tmp_path):
        with pytest.raises(ValueError, match="unknown level"):
            self.write_and_validate(tmp_path, [self.good_line(level="loud")])

    def test_rejects_missing_event(self, tmp_path):
        with pytest.raises(ValueError, match="event"):
            self.write_and_validate(tmp_path, [self.good_line(event="")])

    def test_rejects_missing_ts(self, tmp_path):
        with pytest.raises(ValueError, match="ts"):
            self.write_and_validate(tmp_path, [self.good_line(ts="soon")])

    def test_rejects_empty_file(self, tmp_path):
        target = tmp_path / "events.jsonl"
        target.write_text("")
        with pytest.raises(ValueError, match="no log records"):
            validate_log_file(target)

    def test_real_emitter_output_validates(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with jsonl_logging(target):
            log_event("warning", "campaign.cell.quarantined", seed=3)
            log_event("info", "test.other")
        assert validate_log_file(target) == 2


class TestRunnerPathsEmit:
    """The converted ad-hoc warnings actually produce structured events."""

    def test_cache_corruption_emits_event(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        entry = cache.directory / ("0" * 64 + ".json")
        entry.write_text("{garbage")
        target = tmp_path / "events.jsonl"
        with jsonl_logging(target):
            assert cache.get("0" * 64) is None
        (record,) = read_records(target)
        assert record["event"] == "cache.corrupt_entry"
        assert record["logger"] == "repro.runner.cache"
        assert record["action"] == "treated_as_miss"
        assert validate_log_file(target) == 1

    def test_torn_tail_recovery_emits_event(self, tmp_path):
        from repro.runner.sink import ResultSink
        from repro.runner.cells import CellResult

        grid = [("bounded", "ring-4", seed) for seed in range(2)]
        result = CellResult(
            scenario="bounded", topology="ring-4", seed=0, precision=2.0,
            rho_bar=2.0, realized=1.0, sound=True, backend="python",
            seconds=0.01,
        )
        with ResultSink(tmp_path) as sink:
            sink.begin(grid, range(2))
            sink.append_result(0, result)
            stream = sink.data_path
        with open(stream, "ab") as handle:
            handle.write(b'{"type": "campaign.cell", "ind')  # torn append
        target = tmp_path / "events.jsonl"
        with jsonl_logging(target):
            fresh = ResultSink(tmp_path)
            recovery = fresh.begin(grid, range(2))
            fresh.close()
        assert list(recovery.results) == [0]
        events = [r["event"] for r in read_records(target)]
        assert "sink.recovered_torn_tail" in events
        record = next(
            r for r in read_records(target)
            if r["event"] == "sink.recovered_torn_tail"
        )
        assert record["truncated_bytes"] > 0
        assert record["logger"] == "repro.runner.sink"
