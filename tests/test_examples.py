"""The examples are part of the public surface: they must run.

Each example module is imported and executed in-process (stdout captured)
so a README-level regression -- renamed API, changed signature, broken
scenario -- fails the suite, not the first user.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def load_module(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_module("quickstart").main()
        out = capsys.readouterr().out
        assert "optimal precision" in out
        assert "certified optimal" in out

    def test_heterogeneous_wan(self, capsys):
        load_module("heterogeneous_wan").main()
        out = capsys.readouterr().out
        assert "optimal guaranteed precision" in out
        assert "anchoring" in out

    def test_asynchronous_ring(self, capsys):
        load_module("asynchronous_ring").main()
        out = capsys.readouterr().out
        assert "Act 1" in out and "Act 3" in out
        assert "adversarial equivalent execution" in out

    def test_distributed_leader(self, capsys):
        module = load_module("distributed_leader")
        module.leader_protocol_demo()
        module.drift_demo()
        out = capsys.readouterr().out
        assert "centralized optimum" in out
        assert "resync" in out

    def test_campaign_study(self, capsys):
        load_module("campaign_study").main()
        out = capsys.readouterr().out
        assert "Campaign" in out
        assert "markdown rendering" in out

    def test_operations_toolkit(self, capsys):
        module = load_module("operations_toolkit")
        module.streaming_demo()
        module.diagnosis_demo()
        module.probabilistic_demo()
        out = capsys.readouterr().out
        assert "identical: True" in out
        assert "convicted" in out
        assert "confidence" in out


class TestExampleHygiene:
    def test_every_example_has_docstring_and_main_guard(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith('"""'), path.name
            assert '__main__' in source, path.name

    def test_readme_lists_every_example(self):
        readme = (EXAMPLES.parent / "README.md").read_text()
        for path in sorted(EXAMPLES.glob("*.py")):
            assert path.name in readme, f"{path.name} missing from README"
