"""Unit tests for steps and histories (repro.model.steps).

The six history conditions of Section 2.1 each get a violation test, and
Lemma 4.1 (shift preserves history-hood, moves the start time) is checked
directly.
"""

import pytest

from repro.model.events import (
    Message,
    MessageReceiveEvent,
    MessageSendEvent,
    StartEvent,
    TimerEvent,
    TimerSetEvent,
)
from repro.model.steps import History, ModelError, Step, TimedStep, shift_history
from repro.model.views import View

from conftest import build_history


def simple_history(start: float = 5.0) -> History:
    return build_history(
        me=0,
        start=start,
        sends=[(10.0, Message(sender=0, receiver=1))],
        receives=[(12.0, Message(sender=1, receiver=0))],
    )


class TestStep:
    def test_rejects_non_interrupt(self):
        m = Message(sender=0, receiver=1)
        with pytest.raises(ModelError):
            Step(
                old_state=0,
                clock_time=0.0,
                interrupt=MessageSendEvent(message=m),
                new_state=1,
            )

    def test_sent_messages(self):
        m1 = Message(sender=0, receiver=1)
        m2 = Message(sender=0, receiver=2)
        step = Step(
            old_state=0,
            clock_time=1.0,
            interrupt=TimerEvent(clock_time=1.0),
            new_state=1,
            sends=(MessageSendEvent(message=m1), MessageSendEvent(message=m2)),
        )
        assert step.sent_messages() == (m1, m2)


class TestHistoryBasics:
    def test_start_time(self):
        assert simple_history(start=5.0).start_time == 5.0

    def test_empty_history_has_no_start(self):
        with pytest.raises(ModelError):
            History(processor=0).start_time

    def test_validate_passes(self):
        simple_history().validate()

    def test_sends_and_receives_in_order(self):
        h = simple_history(start=5.0)
        sends = h.sends()
        receives = h.receives()
        assert len(sends) == 1 and len(receives) == 1
        assert sends[0][0] == 15.0  # real time = start + clock
        assert receives[0][0] == 17.0

    def test_send_and_receive_real_time_lookup(self):
        h = simple_history(start=5.0)
        sent = h.sends()[0][1].message
        received = h.receives()[0][1].message
        assert h.send_real_time(sent.uid) == 15.0
        assert h.receive_real_time(received.uid) == 17.0
        with pytest.raises(KeyError):
            h.send_real_time(999999)
        with pytest.raises(KeyError):
            h.receive_real_time(999999)

    def test_steps_at(self):
        h = simple_history(start=5.0)
        assert len(h.steps_at(5.0)) == 1
        assert h.steps_at(99.0) == ()

    def test_from_steps_sorts(self):
        h = simple_history()
        shuffled = History.from_steps(0, reversed(h.steps))
        assert [ts.real_time for ts in shuffled] == [
            ts.real_time for ts in h.steps
        ]


class TestHistoryConditions:
    """One violation test per condition of Section 2.1."""

    def test_condition2_first_step_must_be_start(self):
        m = Message(sender=1, receiver=0)
        bad = History(
            processor=0,
            steps=(
                TimedStep(
                    real_time=1.0,
                    step=Step(
                        old_state=0,
                        clock_time=0.0,
                        interrupt=MessageReceiveEvent(message=m),
                        new_state=1,
                    ),
                ),
            ),
        )
        with pytest.raises(ModelError):
            bad.validate()

    def test_condition3_no_second_start(self):
        h = simple_history()
        extra = TimedStep(
            real_time=100.0,
            step=Step(
                old_state=h.steps[-1].step.new_state,
                clock_time=95.0,
                interrupt=StartEvent(),
                new_state=99,
            ),
        )
        bad = History(processor=0, steps=h.steps + (extra,))
        with pytest.raises(ModelError, match="start"):
            bad.validate()

    def test_condition3_states_must_chain(self):
        h = simple_history()
        broken_step = Step(
            old_state="wrong",
            clock_time=h.steps[1].step.clock_time,
            interrupt=h.steps[1].step.interrupt,
            new_state=h.steps[1].step.new_state,
            sends=h.steps[1].step.sends,
            timer_sets=h.steps[1].step.timer_sets,
        )
        bad = History(
            processor=0,
            steps=(
                h.steps[0],
                TimedStep(real_time=h.steps[1].real_time, step=broken_step),
            )
            + h.steps[2:],
        )
        with pytest.raises(ModelError, match="state"):
            bad.validate()

    def test_condition4_clock_equals_real_minus_start(self):
        h = simple_history()
        wrong = Step(
            old_state=h.steps[1].step.old_state,
            clock_time=h.steps[1].step.clock_time + 1.0,
            interrupt=h.steps[1].step.interrupt,
            new_state=h.steps[1].step.new_state,
            sends=h.steps[1].step.sends,
            timer_sets=h.steps[1].step.timer_sets,
        )
        bad = History(
            processor=0,
            steps=(h.steps[0], TimedStep(h.steps[1].real_time, wrong))
            + h.steps[2:],
        )
        with pytest.raises(ModelError, match="clock"):
            bad.validate()

    def test_condition5_at_most_one_timer_per_instant(self):
        start = TimedStep(
            real_time=0.0,
            step=Step(
                old_state=0,
                clock_time=0.0,
                interrupt=StartEvent(),
                new_state=1,
                timer_sets=(TimerSetEvent(5.0),),
            ),
        )
        t1 = TimedStep(
            real_time=5.0,
            step=Step(
                old_state=1,
                clock_time=5.0,
                interrupt=TimerEvent(clock_time=5.0),
                new_state=2,
            ),
        )
        t2 = TimedStep(
            real_time=5.0,
            step=Step(
                old_state=2,
                clock_time=5.0,
                interrupt=TimerEvent(clock_time=5.0),
                new_state=3,
            ),
        )
        with pytest.raises(ModelError, match="timer"):
            History(processor=0, steps=(start, t1, t2)).validate()

    def test_condition5_timer_ordered_last_within_instant(self):
        m = Message(sender=1, receiver=0)
        start = TimedStep(
            real_time=0.0,
            step=Step(
                old_state=0,
                clock_time=0.0,
                interrupt=StartEvent(),
                new_state=1,
                timer_sets=(TimerSetEvent(5.0),),
            ),
        )
        timer_first = TimedStep(
            real_time=5.0,
            step=Step(
                old_state=1,
                clock_time=5.0,
                interrupt=TimerEvent(clock_time=5.0),
                new_state=2,
            ),
        )
        recv_after = TimedStep(
            real_time=5.0,
            step=Step(
                old_state=2,
                clock_time=5.0,
                interrupt=MessageReceiveEvent(message=m),
                new_state=3,
            ),
        )
        with pytest.raises(ModelError, match="timer"):
            History(
                processor=0, steps=(start, timer_first, recv_after)
            ).validate()

    def test_condition6_timer_must_have_been_set(self):
        start = TimedStep(
            real_time=0.0,
            step=Step(
                old_state=0,
                clock_time=0.0,
                interrupt=StartEvent(),
                new_state=1,
            ),
        )
        phantom = TimedStep(
            real_time=5.0,
            step=Step(
                old_state=1,
                clock_time=5.0,
                interrupt=TimerEvent(clock_time=5.0),
                new_state=2,
            ),
        )
        with pytest.raises(ModelError, match="never set"):
            History(processor=0, steps=(start, phantom)).validate()


class TestShiftHistory:
    """Lemma 4.1: shift(pi, s) is a history with start time S - s."""

    def test_shift_moves_start_time(self):
        h = simple_history(start=5.0)
        assert shift_history(h, 2.0).start_time == 3.0
        assert shift_history(h, -4.0).start_time == 9.0

    def test_shift_preserves_validity(self):
        shift_history(simple_history(), 7.5).validate()

    def test_shift_preserves_view(self):
        h = simple_history()
        assert View.of(shift_history(h, 123.0)) == View.of(h)

    def test_shift_is_invertible(self):
        h = simple_history()
        assert shift_history(shift_history(h, 3.3), -3.3) == h

    def test_zero_shift_is_identity(self):
        h = simple_history()
        assert shift_history(h, 0.0) == h

    def test_shifts_compose_additively(self):
        h = simple_history()
        assert shift_history(shift_history(h, 1.5), 2.5) == shift_history(
            h, 4.0
        )
