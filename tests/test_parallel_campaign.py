"""Determinism contract of the sharded parallel campaign runner.

ISSUE requirement: workers=1, workers=4 and the union of ``--shard``
slices must produce byte-identical merged tables and metrics (modulo
wall-clock series).
"""

import json

import pytest

from repro.graphs import line, ring
from repro.obs import Recorder, recording
from repro.workloads import (
    Campaign,
    CampaignOutcome,
    bounded_uniform,
    heterogeneous,
    run_campaign,
)


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


def hetero_builder(topology, seed):
    return heterogeneous(topology, seed=seed)


def make_campaign(seeds=range(2)):
    campaign = Campaign(seeds=seeds)
    campaign.add("bounded", bounded_builder)
    campaign.add("hetero", hetero_builder)
    return campaign


TOPOLOGIES = [ring(4), line(4)]


def deterministic_metrics(registry):
    """The registry's snapshot minus wall-clock (``*.seconds``) series."""
    return {
        name: series
        for name, series in registry.snapshot().items()
        if not name.endswith(".seconds")
    }


class TestWorkerCountInvariance:
    def test_tables_byte_identical_across_worker_counts(self):
        campaign = make_campaign()
        table_seq = campaign.run(TOPOLOGIES, workers=1)
        table_pool = campaign.run(TOPOLOGIES, workers=4)
        assert table_pool.format() == table_seq.format()

    def test_metrics_identical_modulo_wall_clock(self):
        campaign = make_campaign()
        seq = campaign.run_results(TOPOLOGIES, workers=1)
        pool = campaign.run_results(TOPOLOGIES, workers=4)
        assert deterministic_metrics(pool.registry) == \
            deterministic_metrics(seq.registry)

    def test_results_identical_and_ordered(self):
        campaign = make_campaign()
        seq = campaign.run_results(TOPOLOGIES, workers=1)
        pool = campaign.run_results(TOPOLOGIES, workers=4)
        assert [r.fingerprint() for r in seq.results] == [
            r.fingerprint() for r in pool.results
        ]
        # canonical grid order: builders outer, topologies, then seeds
        assert [
            (r.scenario, r.topology, r.seed) for r in seq.results
        ] == [
            (name, topo.name, seed)
            for name in ("bounded", "hetero")
            for topo in TOPOLOGIES
            for seed in range(2)
        ]


class TestExecutorKindInvariance:
    def test_async_executor_matches_sequential(self):
        campaign = make_campaign()
        seq = campaign.run_results(TOPOLOGIES, workers=1)
        overlapped = campaign.run_results(
            TOPOLOGIES, workers=3, executor="async"
        )
        assert [r.fingerprint() for r in overlapped.results] == [
            r.fingerprint() for r in seq.results
        ]
        assert deterministic_metrics(overlapped.registry) == \
            deterministic_metrics(seq.registry)

    def test_async_table_byte_identical(self):
        campaign = make_campaign()
        assert campaign.run(
            TOPOLOGIES, workers=3, executor="async"
        ).format() == campaign.run(TOPOLOGIES, workers=1).format()


class TestShardInvariance:
    @pytest.mark.parametrize("count", [2, 4])
    def test_shard_union_equals_full_run(self, count):
        campaign = make_campaign()
        full = campaign.run_results(TOPOLOGIES)
        union = []
        for i in range(1, count + 1):
            part = campaign.run_results(
                TOPOLOGIES, shard=f"{i}/{count}", workers=2
            )
            union.extend(part.results)
        assert sorted(r.fingerprint() for r in union) == sorted(
            r.fingerprint() for r in full.results
        )

    def test_sharded_tables_merge_to_full_table(self):
        campaign = make_campaign()
        full = campaign.run(TOPOLOGIES)
        parts = []
        for i in (1, 2):
            parts.extend(
                campaign.run_results(TOPOLOGIES, shard=f"{i}/2").results
            )
        # regroup in canonical order before summarising
        order = {
            r.fingerprint(): position
            for position, r in enumerate(
                campaign.run_results(TOPOLOGIES).results
            )
        }
        parts.sort(key=lambda r: order[r.fingerprint()])
        assert campaign.summarize(parts).format() == full.format()

    def test_invalid_shard_rejected(self):
        campaign = make_campaign()
        with pytest.raises(ValueError, match="shard"):
            campaign.run_results(TOPOLOGIES, shard="0/2")


class TestCacheResume:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        campaign = make_campaign()
        first = campaign.run_results(TOPOLOGIES, cache_dir=str(tmp_path))
        second = campaign.run_results(TOPOLOGIES, cache_dir=str(tmp_path))
        assert first.cache_hits == 0
        assert first.cache_misses == len(first.results)
        assert second.cache_hits == len(second.results)
        assert second.cache_misses == 0
        assert all(r.cache_hit for r in second.results)
        assert [r.fingerprint() for r in second.results] == [
            r.fingerprint() for r in first.results
        ]
        assert campaign.summarize(second.results).format() == \
            campaign.summarize(first.results).format()

    def test_cache_bound_evicts_and_counts(self, tmp_path):
        campaign = make_campaign()
        outcome = campaign.run_results(
            TOPOLOGIES, cache_dir=str(tmp_path), cache_max_entries=3
        )
        # 8 cells through a 3-entry bound: 5 LRU evictions, counted
        assert outcome.cache_evicted == 5
        assert len(list(tmp_path.glob("*.json"))) == 3
        snapshot = outcome.registry.snapshot()
        assert snapshot["campaign.cache.evicted"]["value"] == 5.0
        assert outcome.summary()["cache_evicted"] == 5

    def test_sharded_runs_share_one_cache(self, tmp_path):
        campaign = make_campaign()
        for i in (1, 2):
            campaign.run_results(
                TOPOLOGIES, shard=f"{i}/2", cache_dir=str(tmp_path)
            )
        resumed = campaign.run_results(TOPOLOGIES, cache_dir=str(tmp_path))
        assert resumed.cache_hits == len(resumed.results)
        assert resumed.cache_misses == 0

    def test_cache_does_not_leak_across_campaign_options(self, tmp_path):
        certified = Campaign(seeds=range(1))
        certified.add("bounded", bounded_builder)
        uncertified = Campaign(seeds=range(1), certify=False)
        uncertified.add("bounded", bounded_builder)
        certified.run_results([ring(4)], cache_dir=str(tmp_path))
        outcome = uncertified.run_results([ring(4)], cache_dir=str(tmp_path))
        assert outcome.cache_hits == 0  # different certify => different key


class TestCampaignOutcome:
    def test_outcome_summary_and_engine_stats(self):
        campaign = make_campaign()
        outcome = campaign.run_results(TOPOLOGIES, workers=1)
        assert isinstance(outcome, CampaignOutcome)
        summary = outcome.summary()
        assert summary["cells"] == len(outcome.results) == 8
        assert summary["workers"] == 1
        assert summary["shard"] is None
        assert outcome.engine_stats.timings  # merged per-stage seconds
        counters = outcome.registry
        assert counters.get("campaign.cells.total").value == 8
        assert counters.get("campaign.cache.misses").value == 8

    def test_queue_depth_and_latency_histograms_recorded(self):
        campaign = make_campaign()
        outcome = campaign.run_results(TOPOLOGIES)
        depth = outcome.registry.get("campaign.queue.depth")
        latency = outcome.registry.get("campaign.cell.seconds")
        assert depth is not None and depth.count == 8
        assert latency is not None and latency.count == 8

    def test_results_serialize_to_jsonl(self, tmp_path):
        from repro.runner import (
            validate_cell_results_file,
            write_cell_results_jsonl,
        )

        outcome = make_campaign().run_results(TOPOLOGIES)
        path = write_cell_results_jsonl(
            tmp_path / "cells.jsonl", outcome.results
        )
        assert validate_cell_results_file(path) == len(outcome.results)
        record = json.loads(path.read_text().splitlines()[0])
        assert record["type"] == "campaign.cell"


class TestAmbientTelemetry:
    def test_campaign_metrics_reach_ambient_recorder(self):
        recorder = Recorder()
        with recording(recorder):
            run_campaign(
                make_campaign().tasks(TOPOLOGIES), workers=1
            )
        names = set(recorder.registry.names())
        assert "campaign.cells.total" in names
        assert "campaign.cell.seconds" in names
        assert any(n.startswith("engine.") for n in names)
        spans = {s.name for s in recorder.tracer.finished()}
        assert "campaign.run" in spans
        assert "campaign.execute" in spans

    def test_noop_recorder_costs_nothing(self):
        # No ambient recorder: run_campaign must not install one.
        from repro.obs import NOOP, get_recorder

        outcome = make_campaign().run_results(TOPOLOGIES)
        assert get_recorder() is NOOP
        assert outcome.results


class TestLegacyCompat:
    def test_run_cells_matches_group_results(self):
        campaign = make_campaign()
        cells = campaign.run_cells(TOPOLOGIES)
        regrouped = campaign.group_results(
            campaign.run_results(TOPOLOGIES).results
        )
        assert cells == regrouped
        assert all(len(c.precisions) == 2 for c in cells)
        assert all(c.certified for c in cells)
