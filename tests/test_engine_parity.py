"""Property test: the numpy engine is exchangeable with the reference.

Satellite of the engine-layer refactor: across ~50 seeded random
systems -- including negative ``mls~`` weights, sparse/disconnected
graphs, multi-component decompositions, and inconsistent views -- the
``"numpy"`` backend must agree with the ``"python"`` reference backend
on every observable of the pipeline:

* the ``ms~`` closure matrix (``A^max`` inputs),
* the synchronization components (sets *and* order),
* per-component ``A^max`` and corrections (up to root normalization,
  which both backends pin to ``x_root = 0``),
* the error behaviour (``InconsistentViewsError`` for negative cycles,
  ``UnboundedPrecisionError`` with the same offending pairs).

A second layer runs real simulated systems through the
:class:`~repro.core.synchronizer.ClockSynchronizer` facade with each
backend and requires *certified* results of identical precision.
"""

import random

import numpy as np
import pytest

from repro._types import INF
from repro.core.global_estimates import InconsistentViewsError
from repro.core.optimality import verify_certificate
from repro.core.precision import rho_bar
from repro.core.shifts import UnboundedPrecisionError
from repro.core.synchronizer import ClockSynchronizer
from repro.engine import NumpyEngine, PythonEngine
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform, heterogeneous


def random_mls_matrix(rng, n, density, blocks=1):
    """Random negative-cycle-free mls~ matrix, optionally block-diagonal.

    Weights are ``u + y_i - y_j`` with slack ``u >= 0``: cycle weights
    telescope to the slack sum, so the instance is consistent, while the
    potentials ``y`` make plenty of individual weights negative.  With
    ``blocks > 1`` no edge crosses block boundaries, forcing multiple
    synchronization components.
    """
    y = [rng.uniform(-5.0, 5.0) for _ in range(n)]
    block_of = [i % blocks for i in range(n)]
    matrix = np.full((n, n), INF)
    np.fill_diagonal(matrix, 0.0)
    for i in range(n):
        for j in range(n):
            if (
                i != j
                and block_of[i] == block_of[j]
                and rng.random() < density
            ):
                matrix[i, j] = rng.uniform(0.0, 4.0) + y[i] - y[j]
    return matrix


def assert_engines_agree(mls):
    """Run both engines over one mls~ matrix and compare all observables."""
    python_engine, numpy_engine = PythonEngine(), NumpyEngine()
    ms_python = python_engine.global_estimates(mls)
    ms_numpy = numpy_engine.global_estimates(mls)
    assert np.allclose(ms_python, ms_numpy, atol=1e-9)  # inf == inf ok

    components_python = python_engine.components(mls, ms_python)
    components_numpy = numpy_engine.components(mls, ms_numpy)
    assert components_python == components_numpy

    for rows in components_python:
        out_python = python_engine.shifts(ms_python, rows=rows)
        out_numpy = numpy_engine.shifts(ms_numpy, rows=rows)
        assert out_numpy.a_max == pytest.approx(out_python.a_max, abs=1e-7)
        # Both pin the root (rows[0]) to zero; compare normalized anyway.
        norm_python = out_python.corrections - out_python.corrections[0]
        norm_numpy = out_numpy.corrections - out_numpy.corrections[0]
        assert np.allclose(norm_python, norm_numpy, atol=1e-7)
        if len(rows) > 1:
            assert out_python.cycle_rows is not None
            assert out_numpy.cycle_rows is not None
            for cycle in (out_python.cycle_rows, out_numpy.cycle_rows):
                assert set(cycle) <= set(rows)
                # The witness must achieve A^max on the shared ms~ matrix.
                k = len(cycle)
                total = sum(
                    ms_python[cycle[i], cycle[(i + 1) % k]] for i in range(k)
                )
                assert total / k == pytest.approx(out_python.a_max, abs=1e-6)


@pytest.mark.parametrize("seed", range(50))
def test_random_system_parity(seed):
    """~50 random instances: dense, sparse, and multi-block shapes."""
    rng = random.Random(seed)
    n = rng.randint(2, 14)
    blocks = 1 if seed % 3 else rng.randint(1, min(3, n))
    density = rng.uniform(0.4, 1.0)
    assert_engines_agree(random_mls_matrix(rng, n, density, blocks))


@pytest.mark.parametrize("seed", range(5))
def test_negative_cycle_parity(seed):
    """Inconsistent views raise the same error from both backends."""
    rng = random.Random(seed)
    n = rng.randint(3, 10)
    mls = random_mls_matrix(rng, n, density=0.8)
    # Plant a strictly negative 2-cycle.
    i, j = rng.sample(range(n), 2)
    mls[i, j] = -3.0
    mls[j, i] = 1.0
    for engine in (PythonEngine(), NumpyEngine()):
        with pytest.raises(InconsistentViewsError):
            engine.global_estimates(mls)


@pytest.mark.parametrize("seed", range(5))
def test_unbounded_pairs_parity(seed):
    """Asking SHIFTS to span components reports identical pairs."""
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    mls = random_mls_matrix(rng, n, density=0.9, blocks=2)
    python_engine, numpy_engine = PythonEngine(), NumpyEngine()
    ms_python = python_engine.global_estimates(mls)
    ms_numpy = numpy_engine.global_estimates(mls)
    with pytest.raises(UnboundedPrecisionError) as err_python:
        python_engine.shifts(ms_python)
    with pytest.raises(UnboundedPrecisionError) as err_numpy:
        numpy_engine.shifts(ms_numpy)
    assert err_python.value.pairs == err_numpy.value.pairs
    assert err_python.value.pairs  # two blocks really are disconnected


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("make", [bounded_uniform, heterogeneous])
def test_synchronizer_backend_parity_certified(seed, make):
    """Full facade on simulated executions: both backends certify."""
    n = 5 + 2 * seed
    if make is bounded_uniform:
        scenario = make(ring(n), lb=1.0, ub=3.0, seed=seed)
    else:
        scenario = make(ring(n), seed=seed)
    views = scenario.run().views()
    results = {}
    for backend in ("python", "numpy"):
        sync = ClockSynchronizer(scenario.system, backend=backend)
        assert sync.backend == backend
        result = sync.from_views(views)
        verify_certificate(result)
        results[backend] = result
    python_result, numpy_result = results["python"], results["numpy"]
    assert numpy_result.precision == pytest.approx(
        python_result.precision, abs=1e-9
    )
    # numpy corrections are optimal under the reference ms~ too.
    assert rho_bar(
        python_result.ms_tilde, numpy_result.corrections
    ) == pytest.approx(python_result.precision, abs=1e-7)
