"""Unit tests for the SHIFTS function (repro.core.shifts) --
Section 4.4, with hand-computed optima."""

import pytest

from repro._types import INF
from repro.core.precision import rho_bar
from repro.core.shifts import UnboundedPrecisionError, shifts


class TestHandComputedInstances:
    def test_two_nodes_symmetric(self):
        """ms~(p,q) = ms~(q,p) = m: A^max = m; corrections cancel."""
        outcome = shifts([0, 1], {(0, 1): 1.0, (1, 0): 1.0})
        assert outcome.precision == pytest.approx(1.0)
        # w(0,1) = w(1,0) = 0; distances from root 0: x_1 = 0.
        assert outcome.corrections[1] - outcome.corrections[0] == pytest.approx(
            0.0
        )

    def test_two_nodes_classic_half_uncertainty(self):
        """The classic [lb, ub] single-exchange case: delays d each way
        with bounds [L, U] gives mls~ = min(U - d, d - L) each way and
        A^max = that value -- (U - L)/2 when d is the midpoint."""
        L, U, d = 1.0, 3.0, 2.0
        m = min(U - d, d - L)
        outcome = shifts([0, 1], {(0, 1): m, (1, 0): m})
        assert outcome.precision == pytest.approx((U - L) / 2.0)

    def test_two_nodes_asymmetric_estimates(self):
        """ms~(0,1)=3, ms~(1,0)=-1: A^max = 1, and the corrections must
        split the asymmetry: x_1 - x_0 = A^max - ms~(0,1) = -2."""
        outcome = shifts([0, 1], {(0, 1): 3.0, (1, 0): -1.0})
        assert outcome.precision == pytest.approx(1.0)
        assert outcome.corrections[1] - outcome.corrections[0] == pytest.approx(
            -2.0
        )
        # And rho_bar of those corrections is exactly A^max.
        assert rho_bar(
            {(0, 1): 3.0, (1, 0): -1.0}, outcome.corrections
        ) == pytest.approx(1.0)

    def test_three_node_cycle_dominates(self):
        """A 3-cycle with larger mean than any 2-cycle sets A^max."""
        ms = {
            (0, 1): 2.0,
            (1, 2): 2.0,
            (2, 0): 2.0,
            (1, 0): 0.0,
            (2, 1): 0.0,
            (0, 2): 0.0,
        }
        outcome = shifts([0, 1, 2], ms)
        # 2-cycles have mean 1.0; the 3-cycle (0,1,2) has mean 2.0.
        assert outcome.precision == pytest.approx(2.0)
        assert rho_bar(ms, outcome.corrections) == pytest.approx(2.0)

    def test_single_processor(self):
        outcome = shifts([0], {})
        assert outcome.precision == 0.0
        assert outcome.corrections == {0: 0.0}
        assert outcome.critical_cycle is None


class TestStructure:
    def test_root_choice_does_not_change_precision(self):
        ms = {
            (0, 1): 1.0,
            (1, 0): 0.5,
            (1, 2): 2.0,
            (2, 1): 0.25,
            (0, 2): 3.0,
            (2, 0): 0.75,
        }
        outcomes = [shifts([0, 1, 2], ms, root=r) for r in (0, 1, 2)]
        precisions = [o.precision for o in outcomes]
        assert precisions[0] == pytest.approx(precisions[1])
        assert precisions[1] == pytest.approx(precisions[2])
        # rho_bar achieved is the same too (all optimal).
        for o in outcomes:
            assert rho_bar(ms, o.corrections) == pytest.approx(o.precision)

    def test_corrections_differ_by_constant_across_roots(self):
        ms = {
            (0, 1): 1.0,
            (1, 0): 0.5,
            (1, 2): 2.0,
            (2, 1): 0.25,
            (0, 2): 3.0,
            (2, 0): 0.75,
        }
        a = shifts([0, 1, 2], ms, root=0).corrections
        b = shifts([0, 1, 2], ms, root=2).corrections
        diffs = {p: a[p] - b[p] for p in a}
        values = list(diffs.values())
        # Not necessarily constant (ties in shortest paths may break
        # differently) but both must achieve optimal rho_bar; check that.
        assert rho_bar(ms, a) == pytest.approx(rho_bar(ms, b))

    def test_root_correction_is_zero(self):
        ms = {(0, 1): 1.0, (1, 0): 1.0}
        outcome = shifts([0, 1], ms, root=1)
        assert outcome.corrections[1] == pytest.approx(0.0)
        assert outcome.root == 1

    def test_critical_cycle_achieves_precision(self):
        ms = {
            (0, 1): 2.0,
            (1, 2): 2.0,
            (2, 0): 2.0,
            (1, 0): 0.0,
            (2, 1): 0.0,
            (0, 2): 0.0,
        }
        outcome = shifts([0, 1, 2], ms)
        cycle = outcome.critical_cycle
        total = sum(
            ms[(cycle[i], cycle[(i + 1) % len(cycle)])]
            for i in range(len(cycle))
        )
        assert total / len(cycle) == pytest.approx(outcome.precision)


class TestErrors:
    def test_unknown_root(self):
        with pytest.raises(ValueError, match="root"):
            shifts([0, 1], {(0, 1): 1.0, (1, 0): 1.0}, root=9)

    def test_empty_processors(self):
        with pytest.raises(ValueError):
            shifts([], {})

    def test_infinite_pair_raises(self):
        with pytest.raises(UnboundedPrecisionError) as info:
            shifts([0, 1], {(0, 1): 1.0, (1, 0): INF})
        assert (1, 0) in info.value.pairs

    def test_missing_pair_treated_as_infinite(self):
        with pytest.raises(UnboundedPrecisionError):
            shifts([0, 1], {(0, 1): 1.0})
