"""Fleet status: stall/death detection fused from heartbeats + manifests.

ISSUE requirements covered here:

* a fleet whose every shard finished reads ``complete`` and healthy;
* a stale heartbeat flips a shard to ``stalled`` once its age exceeds
  the threshold -- including the acceptance scenario, where a chaos
  ``hang`` cell blocks a live run and ``collect_fleet_status`` flags it
  within one heartbeat interval + threshold;
* a heartbeat whose pid no longer exists reads ``dead``;
* pre-heartbeat shards (PR 6 output) degrade to the manifest
  ``updated_at`` stamp / stream mtime fallback instead of ``unknown``;
* ``campaign status`` exits 0/1/2 on healthy/stalled/empty and
  ``campaign watch`` returns once the fleet completes.
"""

import json
import os
import subprocess
import threading
import time

import pytest

from repro.cli import main
from repro.faults.chaos import scheduled_chaos
from repro.graphs import ring
from repro.runner.cells import CellSpec, CellTask
from repro.runner.heartbeat import heartbeat_path, read_heartbeat
from repro.runner.merge import MergeError
from repro.runner.status import (
    DEFAULT_STALL_AFTER,
    STATE_COMPLETE,
    STATE_DEAD,
    STATE_RUNNING,
    STATE_STALLED,
    STATE_UNKNOWN,
    collect_fleet_status,
    fleet_status_lines,
    shard_status,
)
from repro.workloads import Campaign, bounded_uniform, run_campaign


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


def run_shard(directory, shard=None, seeds=range(3)):
    campaign = Campaign(seeds=seeds)
    campaign.add("bounded", bounded_builder)
    return campaign.run_results(
        [ring(4)], shard=shard, results_dir=directory,
        heartbeat_interval=0.0,
    )


def doctor_heartbeat(directory, shard=None, **overrides):
    """Rewrite the heartbeat sidecar with altered fields."""
    path = heartbeat_path(directory, shard)
    record = json.loads(path.read_text())
    record.update(overrides)
    path.write_text(json.dumps(record))
    return path


def doctor_manifest(path, **overrides):
    manifest = json.loads(path.read_text())
    manifest.update(overrides)
    path.write_text(json.dumps(manifest))
    return manifest


class TestShardStatus:
    def test_complete_shard(self, tmp_path):
        run_shard(tmp_path)
        status = shard_status(tmp_path / "manifest-1-of-1.json")
        assert status.state == STATE_COMPLETE
        assert status.healthy
        assert status.source == "heartbeat"
        assert status.cells_completed == 3
        assert status.cells_own == 3
        assert status.cells_remaining == 0

    def test_stale_heartbeat_is_stalled(self, tmp_path):
        run_shard(tmp_path)
        doctor_heartbeat(
            tmp_path,
            complete=False,
            updated_at=time.time() - 100.0,
            monotonic=time.monotonic() - 100.0,
        )
        doctor_manifest(tmp_path / "manifest-1-of-1.json", complete=False)
        status = shard_status(
            tmp_path / "manifest-1-of-1.json", stall_after=30.0
        )
        assert status.state == STATE_STALLED
        assert not status.healthy
        assert status.age_seconds == pytest.approx(100.0, abs=5.0)

    def test_fresh_incomplete_heartbeat_is_running(self, tmp_path):
        run_shard(tmp_path)
        doctor_heartbeat(
            tmp_path,
            complete=False,
            updated_at=time.time(),
            monotonic=time.monotonic(),
        )
        doctor_manifest(tmp_path / "manifest-1-of-1.json", complete=False)
        status = shard_status(tmp_path / "manifest-1-of-1.json")
        assert status.state == STATE_RUNNING
        assert status.healthy

    def test_dead_pid_is_dead_even_when_fresh(self, tmp_path):
        run_shard(tmp_path)
        proc = subprocess.Popen(["true"])
        proc.wait()  # reaped: the pid no longer exists
        doctor_heartbeat(
            tmp_path,
            complete=False,
            pid=proc.pid,
            updated_at=time.time(),
            monotonic=time.monotonic(),
        )
        doctor_manifest(tmp_path / "manifest-1-of-1.json", complete=False)
        status = shard_status(tmp_path / "manifest-1-of-1.json")
        assert status.state == STATE_DEAD
        assert not status.healthy

    def test_foreign_host_pid_is_not_probed(self, tmp_path):
        """A pid on another machine is unknowable: the age ladder rules."""
        run_shard(tmp_path)
        doctor_heartbeat(
            tmp_path,
            complete=False,
            host="some-other-machine",
            pid=1,
            updated_at=time.time(),
            monotonic=time.monotonic(),
        )
        doctor_manifest(tmp_path / "manifest-1-of-1.json", complete=False)
        status = shard_status(tmp_path / "manifest-1-of-1.json")
        assert status.state == STATE_RUNNING

    def test_unreadable_manifest_is_unknown(self, tmp_path):
        path = tmp_path / "manifest-1-of-1.json"
        path.write_text("{torn")
        status = shard_status(path)
        assert status.state == STATE_UNKNOWN
        assert not status.healthy
        assert status.source == "none"

    def test_wrong_shard_heartbeat_ignored(self, tmp_path):
        """A sidecar from a different shard layout must not lie for us."""
        run_shard(tmp_path)
        record = json.loads(heartbeat_path(tmp_path).read_text())
        record["shard"] = [2, 4]
        heartbeat_path(tmp_path).write_text(json.dumps(record))
        status = shard_status(tmp_path / "manifest-1-of-1.json")
        assert status.source in ("manifest", "stream")
        assert status.state == STATE_COMPLETE  # manifest says so


class TestManifestFallback:
    """Pre-PR-7 shards: no heartbeat sidecar at all."""

    def test_complete_without_heartbeat(self, tmp_path):
        run_shard(tmp_path)
        heartbeat_path(tmp_path).unlink()
        status = shard_status(tmp_path / "manifest-1-of-1.json")
        assert status.state == STATE_COMPLETE
        assert status.source in ("manifest", "stream")
        assert status.cells_completed == 3  # counted from manifest markers

    def test_old_evidence_without_heartbeat_is_stalled(self, tmp_path):
        run_shard(tmp_path)
        heartbeat_path(tmp_path).unlink()
        manifest_path = tmp_path / "manifest-1-of-1.json"
        manifest = doctor_manifest(
            manifest_path, complete=False, updated_at=time.time() - 300.0
        )
        stream = tmp_path / manifest["data"]
        old = time.time() - 300.0
        os.utime(stream, (old, old))
        status = shard_status(manifest_path, stall_after=30.0)
        assert status.state == STATE_STALLED
        assert status.source in ("manifest", "stream")
        assert status.age_seconds == pytest.approx(300.0, abs=10.0)

    def test_fresh_stream_mtime_counts_as_life(self, tmp_path):
        run_shard(tmp_path)
        heartbeat_path(tmp_path).unlink()
        manifest_path = tmp_path / "manifest-1-of-1.json"
        manifest = doctor_manifest(
            manifest_path, complete=False, updated_at=time.time() - 300.0
        )
        os.utime(tmp_path / manifest["data"])  # a cell just streamed
        status = shard_status(manifest_path, stall_after=30.0)
        assert status.state == STATE_RUNNING
        assert status.source == "stream"


class TestFleetStatus:
    def test_two_shard_fleet_complete(self, tmp_path):
        run_shard(tmp_path, shard="1/2", seeds=range(4))
        run_shard(tmp_path, shard="2/2", seeds=range(4))
        fleet = collect_fleet_status([tmp_path])
        assert fleet.complete
        assert fleet.healthy
        assert len(fleet.shards) == 2
        assert fleet.cells_completed == 4
        assert fleet.gap_cells == 0
        assert fleet.to_json()["type"] == "campaign.fleet.status"
        assert fleet.health_json()["status"] == "complete"

    def test_missing_shard_shows_gap_cells(self, tmp_path):
        outcome = run_shard(tmp_path, shard="1/2", seeds=range(4))
        fleet = collect_fleet_status([tmp_path])
        # Shard 2/2 never ran: its hash-assigned cells are unowned.
        assert fleet.gap_cells == 4 - len(outcome.results)
        assert fleet.gap_cells > 0

    def test_no_manifests_raises(self, tmp_path):
        with pytest.raises(MergeError):
            collect_fleet_status([tmp_path])

    def test_attention_rendered_in_lines(self, tmp_path):
        run_shard(tmp_path)
        doctor_heartbeat(
            tmp_path,
            complete=False,
            updated_at=time.time() - 100.0,
            monotonic=time.monotonic() - 100.0,
        )
        doctor_manifest(tmp_path / "manifest-1-of-1.json", complete=False)
        fleet = collect_fleet_status([tmp_path], stall_after=30.0)
        assert not fleet.healthy
        assert fleet.health_json()["status"] == "degraded"
        rendered = "\n".join(fleet_status_lines(fleet))
        assert "ATTENTION" in rendered
        assert "stalled" in rendered

    def test_default_stall_threshold(self):
        assert DEFAULT_STALL_AFTER == 30.0


class TestHangDetection:
    """Acceptance: a chaos hang cell stalls the shard detectably."""

    def test_hung_cell_flags_shard_as_stalled(self, tmp_path):
        from repro.faults.chaos import chaos_bounded_builder

        tasks = [
            CellTask(
                spec=CellSpec(
                    builder="chaos-bounded", topology=ring(4), seed=seed
                ),
                build=chaos_bounded_builder,
            )
            for seed in range(3)
        ]
        with scheduled_chaos(hang={1}, hang_seconds=3.0):
            thread = threading.Thread(
                target=run_campaign,
                args=(tasks,),
                kwargs=dict(
                    workers=1,
                    results_dir=str(tmp_path),
                    heartbeat_interval=0.05,
                ),
                daemon=True,
            )
            thread.start()
            # Detection contract: one heartbeat interval (0.05 s) + the
            # stall threshold (0.5 s) after the hang starts, the shard
            # must read stalled.  Poll well past that but far below the
            # 3 s hang, so a pass genuinely means early detection.
            state = None
            deadline = time.monotonic() + 2.5
            while time.monotonic() < deadline:
                try:
                    fleet = collect_fleet_status([tmp_path], stall_after=0.5)
                except MergeError:
                    time.sleep(0.05)
                    continue
                state = fleet.shards[0].state
                if state == STATE_STALLED:
                    assert not fleet.healthy
                    break
                time.sleep(0.05)
            assert state == STATE_STALLED
            thread.join(timeout=20.0)
        assert not thread.is_alive()
        # Once the hang releases, the same evidence reads complete.
        fleet = collect_fleet_status([tmp_path], stall_after=0.5)
        assert fleet.complete
        assert read_heartbeat(heartbeat_path(tmp_path)).complete


class TestStatusCli:
    def test_status_healthy_exit_zero(self, tmp_path, capsys):
        run_shard(tmp_path)
        assert main(["campaign", "status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out

    def test_status_json_output(self, tmp_path, capsys):
        run_shard(tmp_path)
        assert main(["campaign", "status", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "campaign.fleet.status"
        assert payload["healthy"] is True

    def test_status_stalled_exit_one(self, tmp_path):
        run_shard(tmp_path)
        doctor_heartbeat(
            tmp_path,
            complete=False,
            updated_at=time.time() - 100.0,
            monotonic=time.monotonic() - 100.0,
        )
        doctor_manifest(tmp_path / "manifest-1-of-1.json", complete=False)
        assert main(
            ["campaign", "status", str(tmp_path), "--stall-after", "30"]
        ) == 1

    def test_status_empty_dir_exit_two(self, tmp_path):
        assert main(["campaign", "status", str(tmp_path)]) == 2

    def test_status_needs_sources(self):
        assert main(["campaign", "status"]) == 2

    def test_watch_returns_on_complete_fleet(self, tmp_path, capsys):
        run_shard(tmp_path)
        assert main(
            ["campaign", "watch", str(tmp_path), "--interval", "0.05"]
        ) == 0
        assert "complete" in capsys.readouterr().out

    def test_run_rejects_sources(self, tmp_path):
        assert main(["campaign", "run", str(tmp_path)]) == 2


class TestFleetHealthProvider:
    """fleet_health(): the status module as a reusable health source."""

    def test_none_results_dir_is_running(self):
        from repro.runner.status import fleet_health

        assert fleet_health(None)() == {
            "status": "running", "healthy": True,
        }

    def test_empty_dir_is_starting_not_an_error(self, tmp_path):
        from repro.runner.status import fleet_health

        payload = fleet_health(tmp_path)()
        assert payload["status"] == "starting"
        assert payload["healthy"] is True

    def test_completed_fleet_reports_health_json(self, tmp_path):
        from repro.runner.status import fleet_health

        run_shard(tmp_path)
        payload = fleet_health(tmp_path)()
        assert payload == collect_fleet_status([tmp_path]).health_json()
        assert payload["healthy"] is True

    def test_accepted_by_serve_telemetry(self, tmp_path):
        import urllib.request

        from repro.obs.http import serve_telemetry
        from repro.runner.status import fleet_health

        run_shard(tmp_path)
        with serve_telemetry(health=fleet_health(tmp_path)) as server:
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=5
            ) as response:
                payload = json.loads(response.read())
        assert payload["healthy"] is True
