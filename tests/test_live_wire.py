"""The live wire format (repro.live.wire).

ISSUE requirements covered here:

* every message kind round-trips byte-for-byte through encode/decode;
* torn, truncated, bit-flipped, stray-field, wrong-version and
  unknown-kind datagrams all raise :class:`WireError` -- and nothing
  else -- so peers can route every transport fault to a drop counter.
"""

import json
import zlib

import pytest

from repro.live.wire import (
    MAX_DATAGRAM_BYTES,
    WIRE_VERSION,
    Correction,
    Probe,
    Query,
    Report,
    WireError,
    decode,
    encode,
)

MESSAGES = [
    Probe(sender="p", seq=3, send_clock=1.25),
    Probe(sender=0, seq=0, send_clock=-2.5),
    Report(sender="p", receiver="q", seq=3, send_clock=1.25,
           recv_clock=1.5),
    Query(client="q", qid=17),
    Correction(qid=17, client="q", status="ok", correction=-0.125,
               precision=0.5, cut=42, observations=42),
    Correction(qid=18, client="q", status="pending", correction=None,
               precision=None, cut=0, observations=3),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: repr(m))
    def test_encode_decode_identity(self, message):
        assert decode(encode(message)) == message

    def test_estimated_delay_is_lemma_61(self):
        report = Report(sender="p", receiver="q", seq=0,
                        send_clock=3.0, recv_clock=4.5)
        assert report.estimated_delay == 1.5

    def test_encoding_is_deterministic(self):
        assert encode(MESSAGES[0]) == encode(MESSAGES[0])

    def test_datagrams_stay_small(self):
        for message in MESSAGES:
            assert len(encode(message)) <= MAX_DATAGRAM_BYTES


class TestDefects:
    def test_garbage_bytes(self):
        with pytest.raises(WireError):
            decode(b"\xff\xfe not json")

    def test_non_object_json(self):
        with pytest.raises(WireError):
            decode(b"[1, 2, 3]")

    def test_torn_datagram(self):
        data = encode(MESSAGES[2])
        with pytest.raises(WireError):
            decode(data[: len(data) // 2])

    def test_bit_flip_fails_crc(self):
        data = bytearray(encode(MESSAGES[2]))
        # Flip a digit inside a clock value: still valid JSON, wrong CRC.
        index = data.index(b"1.25") + 2
        data[index] = ord("9")
        with pytest.raises(WireError, match="checksum"):
            decode(bytes(data))

    def test_wrong_version(self):
        body = {"kind": "query", "client": "q", "qid": 1,
                "v": WIRE_VERSION + 1}
        body["crc"] = zlib.crc32(
            json.dumps(body, sort_keys=True,
                       separators=(",", ":")).encode()
        )
        with pytest.raises(WireError, match="version"):
            decode(json.dumps(body, sort_keys=True,
                              separators=(",", ":")).encode())

    def test_unknown_kind(self):
        body = {"kind": "gossip", "v": WIRE_VERSION}
        with pytest.raises(WireError, match="kind"):
            decode(json.dumps(body).encode())

    def test_missing_field(self):
        data = json.loads(encode(MESSAGES[0]))
        del data["seq"]
        data.pop("crc")
        data["crc"] = zlib.crc32(
            json.dumps(data, sort_keys=True,
                       separators=(",", ":")).encode()
        )
        with pytest.raises(WireError, match="missing"):
            decode(json.dumps(data, sort_keys=True,
                              separators=(",", ":")).encode())

    def test_stray_field(self):
        data = json.loads(encode(MESSAGES[3]))
        data.pop("crc")
        data["smuggled"] = True
        data["crc"] = zlib.crc32(
            json.dumps(data, sort_keys=True,
                       separators=(",", ":")).encode()
        )
        with pytest.raises(WireError, match="stray"):
            decode(json.dumps(data, sort_keys=True,
                              separators=(",", ":")).encode())

    def test_oversized_identifier_rejected_at_encode(self):
        with pytest.raises(WireError, match="bytes"):
            encode(Probe(sender="p" * 2000, seq=0, send_clock=0.0))

    def test_not_a_message(self):
        with pytest.raises(TypeError):
            encode({"kind": "probe"})
