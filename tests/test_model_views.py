"""Unit tests for views (repro.model.views)."""

from repro.model.events import Message
from repro.model.steps import shift_history
from repro.model.views import View, views_equal

from conftest import build_history, make_two_node_execution


def sample_history():
    return build_history(
        me=0,
        start=3.0,
        sends=[(10.0, Message(sender=0, receiver=1, payload="a"))],
        receives=[(12.5, Message(sender=1, receiver=0, payload="b"))],
    )


class TestViewExtraction:
    def test_view_drops_real_times_keeps_clocks(self):
        h = sample_history()
        view = View.of(h)
        assert len(view) == len(h)
        clocks = [s.clock_time for s in view.steps]
        assert clocks == [ts.step.clock_time for ts in h.steps]

    def test_view_invariant_under_shift(self):
        h = sample_history()
        assert views_equal(View.of(h), View.of(shift_history(h, 42.0)))

    def test_views_differ_across_processors(self):
        alpha = make_two_node_execution(0.0, 0.0, [1.5], [1.5])
        assert not views_equal(alpha.view(0), alpha.view(1))


class TestViewMessageClocks:
    def test_send_clock_times(self):
        h = sample_history()
        view = View.of(h)
        sent = view.sent_messages()
        assert len(sent) == 1
        assert view.send_clock_times()[sent[0].uid] == 10.0

    def test_receive_clock_times(self):
        view = View.of(sample_history())
        received = view.received_messages()
        assert len(received) == 1
        assert view.receive_clock_times()[received[0].uid] == 12.5

    def test_estimated_delay_identity(self):
        """d~ = recv_clock - send_clock == d + S_p - S_q (Lemma 6.1)."""
        s_p, s_q, d = 4.0, 9.0, 2.5
        alpha = make_two_node_execution(s_p, s_q, [d], [])
        vp, vq = alpha.view(0), alpha.view(1)
        uid = vq.received_messages()[0].uid
        estimate = vq.receive_clock_times()[uid] - vp.send_clock_times()[uid]
        assert abs(estimate - (d + s_p - s_q)) < 1e-12


class TestViewRendering:
    def test_str_contains_events(self):
        text = str(View.of(sample_history()))
        assert "start" in text
        assert "send" in text
        assert "recv" in text
