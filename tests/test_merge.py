"""Merge pipeline: fusing shard streams back into the canonical run.

ISSUE acceptance: ``campaign merge`` over N shard outputs is
byte-identical to the single-process table, and gap/overlap detection
is verified by deleting and duplicating shard cells.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.graphs import line, ring
from repro.runner import (
    CellFailure,
    MergeError,
    ResultSink,
    find_manifests,
    merge_shards,
)
from repro.workloads import (
    Campaign,
    bounded_uniform,
    heterogeneous,
    summarize_results,
)


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


def hetero_builder(topology, seed):
    return heterogeneous(topology, seed=seed)


def make_campaign(seeds=range(2)):
    campaign = Campaign(seeds=seeds)
    campaign.add("bounded", bounded_builder)
    campaign.add("hetero", hetero_builder)
    return campaign


TOPOLOGIES = [ring(4), line(4)]


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    """One campaign run as two shards into a shared results_dir."""
    results_dir = tmp_path_factory.mktemp("fleet")
    campaign = make_campaign()
    outcomes = [
        campaign.run_results(
            TOPOLOGIES, workers=1, shard=(i, 2), results_dir=results_dir
        )
        for i in (1, 2)
    ]
    reference = campaign.run_results(TOPOLOGIES, workers=1)
    return results_dir, outcomes, reference, campaign


def stream_lines(results_dir, shard):
    path = results_dir / f"shard-{shard}-of-2.jsonl"
    return path, [l for l in path.read_bytes().split(b"\n") if l.strip()]


def cell_key_of(line_bytes):
    record = json.loads(line_bytes)
    return (record["scenario"], record["topology"], record["seed"])


class TestMergeFusesShards:
    def test_table_byte_identical_to_single_run(self, sharded):
        results_dir, outcomes, reference, campaign = sharded
        assert sum(o.cells for o in outcomes) == 8
        merged = merge_shards([results_dir])
        assert merged.report.complete
        assert merged.report.cells == 8
        assert not merged.report.overlaps
        table = summarize_results(
            merged.results, seeds_per_cell=merged.seeds_per_cell
        )
        assert table.format() == campaign.summarize(reference.results).format()

    def test_results_in_canonical_grid_order(self, sharded):
        results_dir, _, reference, _ = sharded
        merged = merge_shards([results_dir])
        assert [r.fingerprint() for r in merged.results] == [
            r.fingerprint() for r in reference.results
        ]

    def test_metrics_fold_matches_single_run(self, sharded):
        results_dir, _, reference, _ = sharded

        def deterministic(registry):
            return {
                name: series
                for name, series in registry.snapshot().items()
                if not name.endswith(".seconds")
                and name != "campaign.queue.depth"  # per-invocation shape
            }

        merged = merge_shards([results_dir])
        assert deterministic(merged.registry) == deterministic(
            reference.registry
        )

    def test_explicit_manifest_paths_work(self, sharded):
        results_dir, _, _, _ = sharded
        manifests = find_manifests([results_dir])
        assert [p.name for p in manifests] == [
            "manifest-1-of-2.json",
            "manifest-2-of-2.json",
        ]
        merged = merge_shards(manifests)
        assert merged.report.complete

    def test_report_lines_and_json(self, sharded):
        results_dir, _, _, _ = sharded
        report = merge_shards([results_dir]).report
        assert "merged 8 cells from 2 shard(s)" in report.lines()[0]
        assert report.lines()[-1].startswith("merge complete")
        payload = report.to_json()
        assert payload["type"] == "campaign.merge.report"
        assert payload["complete"] is True


class TestGapDetection:
    def test_deleted_cell_reports_gap(self, sharded, tmp_path):
        results_dir, _, _, _ = sharded
        work = tmp_path / "gap"
        work.mkdir()
        for source in results_dir.iterdir():
            (work / source.name).write_bytes(source.read_bytes())

        path, lines = stream_lines(work, 1)
        dropped = cell_key_of(lines[0])
        path.write_bytes(b"\n".join(lines[1:]) + b"\n")

        merged = merge_shards([work])
        assert merged.report.gaps == [dropped]
        assert not merged.report.complete
        assert merged.report.cells == 7
        assert any("gap: " in l for l in merged.report.lines())

    def test_strict_merge_raises_on_gap(self, sharded, tmp_path):
        results_dir, _, _, _ = sharded
        work = tmp_path / "gap-strict"
        work.mkdir()
        for source in results_dir.iterdir():
            (work / source.name).write_bytes(source.read_bytes())
        path, lines = stream_lines(work, 2)
        path.write_bytes(b"\n".join(lines[:-1]) + b"\n")
        with pytest.raises(MergeError, match="1 gap"):
            merge_shards([work], strict=True)


class TestOverlapAndConflictDetection:
    def copy_dir(self, results_dir, destination):
        destination.mkdir()
        for source in results_dir.iterdir():
            (destination / source.name).write_bytes(source.read_bytes())

    def test_duplicated_cell_reports_benign_overlap(self, sharded, tmp_path):
        results_dir, _, _, _ = sharded
        work = tmp_path / "overlap"
        self.copy_dir(results_dir, work)

        # shard 2 re-publishes (identically) a cell shard 1 owns
        path1, lines1 = stream_lines(work, 1)
        path2, _ = stream_lines(work, 2)
        with open(path2, "ab") as handle:
            handle.write(lines1[0] + b"\n")

        merged = merge_shards([work])
        assert merged.report.overlaps == [cell_key_of(lines1[0])]
        assert not merged.report.conflicts
        assert merged.report.complete  # agreeing duplicates are benign
        assert merged.report.cells == 8

    def test_disagreeing_duplicate_reports_conflict(self, sharded, tmp_path):
        results_dir, _, _, _ = sharded
        work = tmp_path / "conflict"
        self.copy_dir(results_dir, work)

        path1, lines1 = stream_lines(work, 1)
        record = json.loads(lines1[0])
        record["precision"] = record["precision"] + 1.0  # a different run
        path2, _ = stream_lines(work, 2)
        with open(path2, "ab") as handle:
            handle.write(json.dumps(record, sort_keys=True).encode() + b"\n")

        merged = merge_shards([work])
        conflicted = cell_key_of(lines1[0])
        assert merged.report.conflicts == [conflicted]
        assert conflicted not in merged.report.overlaps
        assert not merged.report.complete
        # first-seen record wins: the fused table is still the reference's
        kept = {
            (r.scenario, r.topology, r.seed): r.precision
            for r in merged.results
        }
        assert kept[conflicted] == json.loads(lines1[0])["precision"]


class TestGridMismatch:
    def test_shards_of_different_grids_refuse_to_merge(self, tmp_path):
        for name, seeds in (("a", range(2)), ("b", range(3))):
            campaign = Campaign(seeds=seeds)
            campaign.add("bounded", bounded_builder)
            campaign.run_results(
                [ring(4)], workers=1, results_dir=tmp_path / name
            )
        with pytest.raises(MergeError, match="different campaign grid"):
            merge_shards([tmp_path / "a", tmp_path / "b"])

    def test_missing_sources_rejected(self, tmp_path):
        with pytest.raises(MergeError, match="no such shard source"):
            merge_shards([tmp_path / "nowhere"])
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(MergeError, match="no shard manifests"):
            merge_shards([empty])
        with pytest.raises(MergeError, match="no shard manifests given"):
            merge_shards([])

    def test_non_manifest_file_rejected(self, tmp_path):
        bogus = tmp_path / "manifest-1-of-1.json"
        bogus.write_text('{"type": "something.else"}')
        with pytest.raises(MergeError, match="not a shard manifest"):
            merge_shards([bogus])


class TestQuarantineVsGap:
    def test_failure_records_are_not_gaps(self, tmp_path):
        grid = [("bounded", "ring-4", seed) for seed in range(2)]
        from repro.runner import CellResult

        with ResultSink(tmp_path) as sink:
            sink.begin(grid, range(2))
            sink.append_result(
                0,
                CellResult(
                    scenario="bounded", topology="ring-4", seed=0,
                    precision=2.0, rho_bar=2.0, realized=1.0, sound=True,
                    backend="python", seconds=0.01,
                ),
            )
            sink.append_failure(
                1,
                CellFailure(
                    scenario="bounded", topology="ring-4", seed=1,
                    kind="timeout", message="cell exceeded 1s", attempts=3,
                ),
            )
        merged = merge_shards([tmp_path])
        assert merged.report.quarantined == 1
        assert not merged.report.gaps  # a known failure is not missing data
        assert merged.report.complete
        (failure,) = merged.failures
        assert failure.key == ("bounded", "ring-4", 1)
        counters = merged.registry.snapshot()
        assert counters["campaign.cells.quarantined"]["value"] == 1.0
        assert any("quarantined: 1" in l for l in merged.report.lines())


class TestMergeCli:
    def test_cli_merge_table_matches_api(self, sharded, tmp_path, capsys):
        results_dir, _, reference, campaign = sharded
        out = tmp_path / "merged-table.txt"
        code = cli_main(
            ["campaign", "merge", str(results_dir), "--table-out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "merge complete" in stdout
        expected = campaign.summarize(reference.results).format() + "\n"
        assert out.read_text() == expected

    def test_cli_merge_exit_code_flags_gaps(self, sharded, tmp_path, capsys):
        results_dir, _, _, _ = sharded
        work = tmp_path / "cli-gap"
        work.mkdir()
        for source in results_dir.iterdir():
            (work / source.name).write_bytes(source.read_bytes())
        path, lines = stream_lines(work, 1)
        path.write_bytes(b"\n".join(lines[1:]) + b"\n")
        code = cli_main(["campaign", "merge", str(work)])
        assert code == 1
        assert "gap: " in capsys.readouterr().out

    def test_cli_merge_rejects_mixed_grids(self, tmp_path, capsys):
        for name, seeds in (("a", range(2)), ("b", range(3))):
            campaign = Campaign(seeds=seeds)
            campaign.add("bounded", bounded_builder)
            campaign.run_results(
                [ring(4)], workers=1, results_dir=tmp_path / name
            )
        code = cli_main(
            ["campaign", "merge", str(tmp_path / "a"), str(tmp_path / "b")]
        )
        assert code == 2
