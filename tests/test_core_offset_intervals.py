"""Tests for the feasible-offset-interval API (SyncResult.offset_interval).

The interval ``[-ms~(q,p), ms~(p,q)]`` is the exact set of true offsets
``S_p - S_q`` consistent with the views -- the Halpern--Megiddo--Munshi
"tightest pairwise bound" recovered from shortest-path estimates.
"""

import math

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay, no_bounds
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.workloads.scenarios import bounded_uniform, heterogeneous

from conftest import make_two_node_execution


class TestTwoNodeExactness:
    def test_ground_truth_inside_interval(self):
        s_p, s_q = 4.0, 9.5
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, [1.5, 2.2], [2.8])
        result = ClockSynchronizer(system).from_execution(alpha)
        low, high = result.offset_interval(0, 1)
        assert low <= (s_p - s_q) <= high

    def test_interval_is_tight_hand_computed(self):
        """lb == ub pins the offset exactly: the interval degenerates."""
        system = System.uniform(line(2), BoundedDelay.symmetric(2.0, 2.0))
        alpha = make_two_node_execution(1.0, 6.0, [2.0], [2.0])
        result = ClockSynchronizer(system).from_execution(alpha)
        low, high = result.offset_interval(0, 1)
        assert low == pytest.approx(high)
        assert low == pytest.approx(1.0 - 6.0)

    def test_width_equals_two_cycle_weight(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [1.5], [2.5])
        result = ClockSynchronizer(system).from_execution(alpha)
        low, high = result.offset_interval(0, 1)
        cycle_weight = result.ms_tilde[(0, 1)] + result.ms_tilde[(1, 0)]
        assert high - low == pytest.approx(cycle_weight)

    def test_antisymmetry(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(2.0, 5.0, [1.4], [2.1])
        result = ClockSynchronizer(system).from_execution(alpha)
        low_pq, high_pq = result.offset_interval(0, 1)
        low_qp, high_qp = result.offset_interval(1, 0)
        assert low_pq == pytest.approx(-high_qp)
        assert high_pq == pytest.approx(-low_qp)

    def test_unbounded_direction_gives_infinite_end(self):
        system = System.uniform(line(2), no_bounds())
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        result = ClockSynchronizer(system).from_execution(alpha)
        low, high = result.offset_interval(0, 1)
        # mls(0,1) = 2 finite; mls(1,0) = inf (silent unbounded direction).
        assert high == pytest.approx(2.0)
        assert math.isinf(low)


class TestNetworkLevel:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_pairs_contain_ground_truth(self, seed):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        starts = alpha.start_times()
        for p in scenario.system.processors:
            for q in scenario.system.processors:
                if p == q:
                    continue
                low, high = result.offset_interval(p, q)
                truth = starts[p] - starts[q]
                assert low - 1e-9 <= truth <= high + 1e-9, (p, q)

    def test_pair_precision_identity_with_interval(self):
        """pair_precision == worst distance from the corrections' implied
        estimate ``x_p - x_q`` to the interval's endpoints."""
        scenario = heterogeneous(ring(5), seed=1)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        for p in scenario.system.processors:
            for q in scenario.system.processors:
                if p == q:
                    continue
                low, high = result.offset_interval(p, q)
                implied = result.corrections[p] - result.corrections[q]
                expected = max(high - implied, implied - low)
                assert result.pair_precision(p, q) == pytest.approx(
                    expected
                ), (p, q)

    def test_interval_width_never_negative(self):
        scenario = heterogeneous(ring(5), seed=2)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        for p in scenario.system.processors:
            for q in scenario.system.processors:
                if p != q:
                    low, high = result.offset_interval(p, q)
                    assert high - low >= -1e-9  # two-cycle weight >= 0

    def test_interval_endpoints_attainable(self):
        """The endpoints are *achieved* by admissible equivalent
        executions (the adversary realizes them), so the interval is not
        just valid but tight."""
        from repro.analysis.adversary import adversarial_execution

        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=7)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        p, q = 0, 2
        low, high = result.offset_interval(p, q)
        # Anchoring the adversary at q drives every other processor to its
        # maximal shift: S'_p - S'_q = S_p - S_q + ms(q, p) -> low... and
        # vice versa.  gamma slightly > 1 gets within a hair.
        shifted_q = adversarial_execution(
            scenario.system, alpha, anchor=q, gamma=1.0001
        )
        starts = shifted_q.start_times()
        assert starts[p] - starts[q] == pytest.approx(low, abs=1e-3)
        shifted_p = adversarial_execution(
            scenario.system, alpha, anchor=p, gamma=1.0001
        )
        starts = shifted_p.start_times()
        assert starts[p] - starts[q] == pytest.approx(high, abs=1e-3)
