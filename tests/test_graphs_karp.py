"""Unit tests for Karp's cycle-mean algorithm (repro.graphs.karp).

Brute-force enumeration of simple cycles is the oracle; the critical
cycle returned is always verified to achieve the reported mean.
"""

import random

import pytest

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import (
    cycle_mean,
    cycle_weight,
    enumerate_simple_cycle_means,
    maximum_cycle_mean,
    minimum_cycle_mean,
)


def two_cycles() -> WeightedDigraph:
    """Cycle (0,1) has mean 3; cycle (0,1,2) has mean 2."""
    return WeightedDigraph.from_edges(
        [
            (0, 1, 2.0),
            (1, 0, 4.0),
            (1, 2, 1.0),
            (2, 0, 3.0),
        ]
    )


def random_graph(rng: random.Random, n: int) -> WeightedDigraph:
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.5:
                g.add_edge(u, v, rng.uniform(-5.0, 5.0))
    return g


class TestKnownInstances:
    def test_min_mean_of_two_cycles(self):
        result = minimum_cycle_mean(two_cycles())
        assert result.mean == pytest.approx(2.0)
        assert cycle_mean(two_cycles(), result.cycle) == pytest.approx(2.0)

    def test_max_mean_of_two_cycles(self):
        result = maximum_cycle_mean(two_cycles())
        assert result.mean == pytest.approx(3.0)
        assert cycle_mean(two_cycles(), result.cycle) == pytest.approx(3.0)

    def test_self_loop(self):
        g = WeightedDigraph.from_edges([(0, 0, -7.0), (0, 1, 1.0), (1, 0, 1.0)])
        result = minimum_cycle_mean(g)
        assert result.mean == pytest.approx(-7.0)
        assert result.cycle == [0]

    def test_acyclic_graph(self):
        g = WeightedDigraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        result = minimum_cycle_mean(g)
        assert result.is_acyclic
        assert result.mean is None and result.cycle is None

    def test_single_node_no_edges(self):
        g = WeightedDigraph()
        g.add_node(0)
        assert minimum_cycle_mean(g).is_acyclic

    def test_empty_graph(self):
        assert minimum_cycle_mean(WeightedDigraph()).is_acyclic

    def test_uniform_weights(self):
        g = WeightedDigraph.from_edges(
            [(i, (i + 1) % 5, 2.5) for i in range(5)]
        )
        assert minimum_cycle_mean(g).mean == pytest.approx(2.5)
        assert maximum_cycle_mean(g).mean == pytest.approx(2.5)

    def test_negative_means_supported(self):
        g = WeightedDigraph.from_edges([(0, 1, -1.0), (1, 0, -3.0)])
        assert minimum_cycle_mean(g).mean == pytest.approx(-2.0)
        assert maximum_cycle_mean(g).mean == pytest.approx(-2.0)

    def test_cycle_spanning_two_sccs_ignored(self):
        """The bridge edge is on no cycle and must not affect the mean."""
        g = WeightedDigraph.from_edges(
            [
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, -100.0),  # bridge
                (2, 3, 4.0),
                (3, 2, 4.0),
            ]
        )
        assert minimum_cycle_mean(g).mean == pytest.approx(1.0)
        assert maximum_cycle_mean(g).mean == pytest.approx(4.0)


class TestAgainstBruteForce:
    def test_min_matches_enumeration_on_random_graphs(self):
        rng = random.Random(7)
        for trial in range(20):
            g = random_graph(rng, rng.randrange(3, 8))
            all_cycles = enumerate_simple_cycle_means(g)
            result = minimum_cycle_mean(g)
            if not all_cycles:
                assert result.is_acyclic
                continue
            expected = min(mean for mean, _ in all_cycles)
            assert result.mean == pytest.approx(expected), f"trial {trial}"
            # The witness cycle must achieve the mean.
            assert cycle_mean(g, result.cycle) == pytest.approx(expected)

    def test_max_matches_enumeration_on_random_graphs(self):
        rng = random.Random(13)
        for trial in range(20):
            g = random_graph(rng, rng.randrange(3, 8))
            all_cycles = enumerate_simple_cycle_means(g)
            result = maximum_cycle_mean(g)
            if not all_cycles:
                assert result.is_acyclic
                continue
            expected = max(mean for mean, _ in all_cycles)
            assert result.mean == pytest.approx(expected), f"trial {trial}"
            assert cycle_mean(g, result.cycle) == pytest.approx(expected)


class TestCycleHelpers:
    def test_cycle_weight_and_mean(self):
        g = two_cycles()
        assert cycle_weight(g, [0, 1]) == pytest.approx(6.0)
        assert cycle_mean(g, [0, 1]) == pytest.approx(3.0)
        assert cycle_weight(g, [0, 1, 2]) == pytest.approx(6.0)
        assert cycle_mean(g, [0, 1, 2]) == pytest.approx(2.0)

    def test_enumeration_respects_limit(self):
        g = random_graph(random.Random(1), 6)
        limited = enumerate_simple_cycle_means(g, limit=3)
        assert len(limited) <= 3
