"""Unit tests for the weighted digraph (repro.graphs.digraph)."""

import pytest

from repro.graphs.digraph import WeightedDigraph


def triangle() -> WeightedDigraph:
    return WeightedDigraph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])


class TestConstruction:
    def test_nodes_and_edges_counted(self):
        g = triangle()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3

    def test_add_node_idempotent(self):
        g = WeightedDigraph()
        g.add_node("a")
        g.add_node("a")
        assert g.number_of_nodes() == 1

    def test_duplicate_edge_keeps_min_by_default(self):
        g = WeightedDigraph()
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 3.0)
        g.add_edge(0, 1, 7.0)
        assert g.weight(0, 1) == 3.0

    def test_duplicate_edge_keep_max_and_last(self):
        g = WeightedDigraph()
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 3.0, keep="max")
        assert g.weight(0, 1) == 5.0
        g.add_edge(0, 1, -1.0, keep="last")
        assert g.weight(0, 1) == -1.0

    def test_unknown_duplicate_policy(self):
        g = WeightedDigraph()
        g.add_edge(0, 1, 5.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 3.0, keep="bogus")

    def test_successors_predecessors(self):
        g = triangle()
        assert g.successors(0) == {1: 1.0}
        assert g.predecessors(0) == {2: 3.0}

    def test_reverse(self):
        g = triangle().reverse()
        assert g.has_edge(1, 0)
        assert g.weight(1, 0) == 1.0

    def test_subgraph_finite_drops_inf(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 1.0), (1, 0, float("inf")), (1, 2, float("-inf"))]
        )
        finite = g.subgraph_finite()
        assert finite.number_of_edges() == 1
        assert finite.number_of_nodes() == 3


class TestConnectivity:
    def test_triangle_is_strongly_connected(self):
        assert triangle().is_strongly_connected()

    def test_one_way_path_is_not(self):
        g = WeightedDigraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert not g.is_strongly_connected()

    def test_single_node_is(self):
        g = WeightedDigraph()
        g.add_node(0)
        assert g.is_strongly_connected()

    def test_sccs_of_two_cycles_joined_one_way(self):
        g = WeightedDigraph.from_edges(
            [
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),  # bridge, one-way
                (2, 3, 1.0),
                (3, 2, 1.0),
            ]
        )
        components = sorted(
            tuple(sorted(c)) for c in g.strongly_connected_components()
        )
        assert components == [(0, 1), (2, 3)]

    def test_sccs_cover_all_nodes(self):
        g = WeightedDigraph.from_edges([(i, i + 1, 1.0) for i in range(10)])
        components = g.strongly_connected_components()
        assert sorted(n for c in components for n in c) == list(range(11))

    def test_sccs_match_networkx_on_random_graphs(self):
        import random

        import networkx as nx

        rng = random.Random(5)
        for _ in range(10):
            n = rng.randrange(2, 12)
            edges = [
                (u, v)
                for u in range(n)
                for v in range(n)
                if u != v and rng.random() < 0.25
            ]
            ours = WeightedDigraph.from_edges([(u, v, 1.0) for u, v in edges])
            for node in range(n):
                ours.add_node(node)
            nxg = nx.DiGraph(edges)
            nxg.add_nodes_from(range(n))
            mine = sorted(
                tuple(sorted(c)) for c in ours.strongly_connected_components()
            )
            theirs = sorted(
                tuple(sorted(c))
                for c in nx.strongly_connected_components(nxg)
            )
            assert mine == theirs
