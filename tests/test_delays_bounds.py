"""Unit tests for bound-based assumptions (repro.delays.bounds).

Lemma 6.2 / Corollaries 6.3 and 6.4 with hand-computed values.
"""

import pytest

from repro._types import INF
from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bounds import BoundedDelay, lower_bounds_only, no_bounds


def timing(fwd, rev) -> PairTiming:
    return PairTiming(
        forward=DirectionStats.of(list(fwd)),
        reverse=DirectionStats.of(list(rev)),
    )


class TestConstruction:
    def test_defaults_are_unbounded(self):
        a = BoundedDelay()
        assert a.lb_forward == 0.0 and a.ub_forward == INF

    def test_negative_lower_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedDelay(lb_forward=-1.0)

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundedDelay(lb_forward=3.0, ub_forward=2.0)
        with pytest.raises(ValueError):
            BoundedDelay(lb_reverse=3.0, ub_reverse=2.0)

    def test_symmetric_constructor(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        assert a.lb_forward == a.lb_reverse == 1.0
        assert a.ub_forward == a.ub_reverse == 3.0

    def test_has_upper_bounds(self):
        assert BoundedDelay.symmetric(1.0, 3.0).has_upper_bounds
        assert not no_bounds().has_upper_bounds
        assert not lower_bounds_only(1.0).has_upper_bounds


class TestMlsFormula:
    """Lemma 6.2: mls(p,q) = min(ub(q,p) - dmax(q,p), dmin(p,q) - lb(p,q))."""

    def test_hand_computed_symmetric(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        # forward delays (p->q): min 1.5; reverse: max 2.5.
        t = timing([1.5, 2.0], [2.0, 2.5])
        # min(3.0 - 2.5, 1.5 - 1.0) = min(0.5, 0.5) = 0.5
        assert a.mls_bound(t) == pytest.approx(0.5)

    def test_hand_computed_asymmetric(self):
        a = BoundedDelay(
            lb_forward=0.5, ub_forward=4.0, lb_reverse=1.0, ub_reverse=6.0
        )
        t = timing([2.0], [3.0])
        # min(ub_reverse - dmax_rev, dmin_fwd - lb_forward)
        # = min(6.0 - 3.0, 2.0 - 0.5) = 1.5
        assert a.mls_bound(t) == pytest.approx(1.5)

    def test_lower_bound_only(self):
        a = lower_bounds_only(1.0)
        t = timing([2.5, 3.0], [100.0])
        # ub_reverse = inf -> only dmin_fwd - lb binds: 2.5 - 1.0.
        assert a.mls_bound(t) == pytest.approx(1.5)

    def test_no_bounds_gives_dmin(self):
        """Corollary 6.4: mls = dmin(p, q)."""
        a = no_bounds()
        t = timing([2.5, 7.0], [9.0])
        assert a.mls_bound(t) == pytest.approx(2.5)

    def test_no_forward_messages_unbounded_when_ub_infinite(self):
        a = lower_bounds_only(1.0)
        t = timing([], [2.0])
        assert a.mls_bound(t) == INF

    def test_no_messages_at_all(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        t = timing([], [])
        # dmin_fwd = inf and dmax_rev = -inf: ub - (-inf) = inf either way.
        assert a.mls_bound(t) == INF

    def test_no_forward_but_reverse_with_finite_ub(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        t = timing([], [2.5])
        # Only the reverse upper bound binds: 3.0 - 2.5 = 0.5.
        assert a.mls_bound(t) == pytest.approx(0.5)

    def test_mls_can_be_zero_at_extremes(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        t = timing([1.0], [3.0])
        assert a.mls_bound(t) == pytest.approx(0.0)

    def test_mls_pair_gives_both_directions(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        t = timing([1.5], [2.5])
        pq, qp = a.mls_pair(t)
        assert pq == pytest.approx(0.5)  # min(3-2.5, 1.5-1)
        assert qp == pytest.approx(1.5)  # min(3-1.5, 2.5-1)


class TestAdmits:
    def test_within_bounds(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        assert a.admits([1.0, 2.0, 3.0], [1.5])
        assert a.admits([], [])

    def test_violations(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        assert not a.admits([0.5], [])
        assert not a.admits([], [3.5])

    def test_asymmetric_directions_checked_separately(self):
        a = BoundedDelay(
            lb_forward=0.0, ub_forward=1.0, lb_reverse=5.0, ub_reverse=9.0
        )
        assert a.admits([0.5], [6.0])
        assert not a.admits([6.0], [0.5])

    def test_tolerance_at_boundary(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        assert a.admits([1.0 - 1e-12], [3.0 + 1e-12])


class TestFlip:
    def test_flip_swaps_directions(self):
        a = BoundedDelay(
            lb_forward=0.5, ub_forward=4.0, lb_reverse=1.0, ub_reverse=6.0
        )
        f = a.flipped()
        assert f.lb_forward == 1.0 and f.ub_forward == 6.0
        assert f.lb_reverse == 0.5 and f.ub_reverse == 4.0

    def test_double_flip_is_identity(self):
        a = BoundedDelay(
            lb_forward=0.5, ub_forward=4.0, lb_reverse=1.0, ub_reverse=6.0
        )
        assert a.flipped().flipped() == a

    def test_flip_consistency_of_mls(self):
        """mls(q,p) via flip == reading the formula in the other direction."""
        a = BoundedDelay(
            lb_forward=0.5, ub_forward=4.0, lb_reverse=1.0, ub_reverse=6.0
        )
        t = timing([2.0, 2.5], [3.0, 3.5])
        via_flip = a.flipped().mls_bound(t.flipped())
        # mls(q,p) = min(ub(p,q) - dmax(p,q), dmin(q,p) - lb(q,p))
        expected = min(4.0 - 2.5, 3.0 - 1.0)
        assert via_flip == pytest.approx(expected)
