"""Tests for simulated-time series and the online-convergence replay."""

import math

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.obs import recording
from repro.obs.recorder import get_recorder
from repro.obs.timeline import (
    Series,
    Timeline,
    replay_online,
    validate_timeline_file,
    write_timeline_jsonl,
)


class TestSeries:
    def test_append_and_query(self):
        series = Series("s", "desc")
        series.append(1.0, 10.0)
        series.append(1.0, 11.0)  # equal times are fine
        series.append(2.5, 12.0)
        assert series.points == [(1.0, 10.0), (1.0, 11.0), (2.5, 12.0)]
        assert series.times() == [1.0, 1.0, 2.5]
        assert series.values() == [10.0, 11.0, 12.0]
        assert series.last() == (2.5, 12.0)
        assert len(series) == 3

    def test_time_must_be_monotone(self):
        series = Series("s")
        series.append(5.0, 0.0)
        with pytest.raises(ValueError, match="precedes"):
            series.append(4.0, 0.0)


class TestTimeline:
    def test_get_or_create_returns_same_series(self):
        timeline = Timeline()
        a = timeline.series("x", "first wins")
        b = timeline.series("x", "ignored")
        assert a is b
        assert a.description == "first wins"

    def test_sample_and_names_sorted(self):
        timeline = Timeline()
        timeline.sample("b", 0.0, 1.0)
        timeline.sample("a", 0.0, 2.0)
        assert timeline.names() == ["a", "b"]
        assert "a" in timeline and "c" not in timeline
        assert timeline.get("c") is None
        assert len(timeline) == 2


class TestJsonlExport:
    def test_write_and_validate(self, tmp_path):
        timeline = Timeline()
        timeline.sample("x", 0.0, 1.0)
        timeline.sample("x", 1.0, 2.0)
        timeline.sample("y", 0.5, 3.0)
        path = write_timeline_jsonl(tmp_path / "tl.jsonl", timeline)
        assert validate_timeline_file(path) == 2

    def test_validator_rejects_unsorted_points(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"record": "timeseries", "name": "x", '
            '"points": [[2.0, 1.0], [1.0, 1.0]]}\n'
        )
        with pytest.raises(ValueError, match="sorted"):
            validate_timeline_file(path)

    def test_validator_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no timeseries"):
            validate_timeline_file(path)

    def test_validator_rejects_nonfinite_point(self, tmp_path):
        path = tmp_path / "inf.jsonl"
        path.write_text(
            '{"record": "timeseries", "name": "x", '
            '"points": [[0.0, 1e999]]}\n'
        )
        with pytest.raises(ValueError, match="malformed"):
            validate_timeline_file(path)


class TestReplayOnline:
    @pytest.fixture()
    def replay(self, ring5_scenario):
        alpha = ring5_scenario.run()
        return alpha, replay_online(ring5_scenario.system, alpha)

    def test_final_state_matches_batch_pipeline(
        self, ring5_scenario, replay
    ):
        alpha, result = replay
        batch = ClockSynchronizer(ring5_scenario.system).from_execution(
            alpha
        )
        final = result.final
        assert final.observations == len(alpha.message_records())
        assert final.precision == pytest.approx(batch.precision)

    def test_precision_tightens_monotonically(self, replay):
        _, result = replay
        finite = [
            s.precision for s in result.samples
            if math.isfinite(s.precision)
        ]
        assert finite, "precision never became finite"
        assert all(b <= a + 1e-9 for a, b in zip(finite, finite[1:]))

    def test_realized_spread_never_exceeds_guarantee(self, replay):
        _, result = replay
        for sample in result.samples:
            if math.isfinite(sample.precision):
                assert sample.realized_spread <= sample.precision + 1e-9

    def test_timeline_series_populated(self, replay):
        _, result = replay
        names = result.timeline.names()
        assert "online.observations" in names
        assert "online.precision" in names
        assert "online.realized_spread" in names
        assert any(name.startswith("online.correction(") for name in names)

    def test_per_pair_series_off_by_default(self, replay):
        _, result = replay
        assert not any(
            name.startswith("online.ms~") for name in result.timeline.names()
        )

    def test_sim_time_cleared_after_replay(self, ring5_scenario):
        alpha = ring5_scenario.run()
        with recording() as recorder:
            replay_online(ring5_scenario.system, alpha)
            assert recorder.sim_time is None
        assert get_recorder().sim_time is None

    def test_corruption_hook_counts(self, ring5_scenario):
        alpha = ring5_scenario.run()
        result = replay_online(
            ring5_scenario.system, alpha, corrupt_at=3, corrupt_delta=-1.5
        )
        assert result.corrupted_observations == 1

    def test_spans_carry_sim_time_attribute(self, ring5_scenario):
        alpha = ring5_scenario.run()
        with recording() as recorder:
            replay_online(ring5_scenario.system, alpha)
            spans = recorder.tracer.finished()
        refreshes = [s for s in spans if "sim_time" in s.attributes]
        assert refreshes, "no span captured the simulated clock"
        times = [s.attributes["sim_time"] for s in refreshes]
        assert all(isinstance(t, float) for t in times)
