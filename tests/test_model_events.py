"""Unit tests for the event vocabulary (repro.model.events)."""

import pytest

from repro.model.events import (
    Message,
    MessageReceiveEvent,
    MessageSendEvent,
    StartEvent,
    TimerEvent,
    TimerSetEvent,
    describe_event,
    interrupt_sort_key,
)


class TestMessage:
    def test_uids_are_unique(self):
        a = Message(sender=0, receiver=1)
        b = Message(sender=0, receiver=1)
        assert a.uid != b.uid

    def test_edge(self):
        m = Message(sender="p", receiver="q")
        assert m.edge == ("p", "q")

    def test_payload_defaults_to_none(self):
        assert Message(sender=0, receiver=1).payload is None

    def test_equality_includes_uid(self):
        a = Message(sender=0, receiver=1, payload="x")
        b = Message(sender=0, receiver=1, payload="x")
        assert a != b  # distinct uids
        assert a == a

    def test_frozen(self):
        m = Message(sender=0, receiver=1)
        with pytest.raises(AttributeError):
            m.sender = 2


class TestInterruptClassification:
    def test_interrupt_events(self):
        m = Message(sender=0, receiver=1)
        assert StartEvent().is_interrupt()
        assert MessageReceiveEvent(message=m).is_interrupt()
        assert TimerEvent(clock_time=1.0).is_interrupt()

    def test_non_interrupt_events(self):
        m = Message(sender=0, receiver=1)
        assert not MessageSendEvent(message=m).is_interrupt()
        assert not TimerSetEvent(clock_time=1.0).is_interrupt()

    def test_sort_key_orders_timer_last(self):
        m = Message(sender=0, receiver=1)
        keys = [
            interrupt_sort_key(StartEvent()),
            interrupt_sort_key(MessageReceiveEvent(message=m)),
            interrupt_sort_key(TimerEvent(clock_time=1.0)),
        ]
        assert keys == sorted(keys)
        assert keys[0] < keys[1] < keys[2]

    def test_sort_key_rejects_non_interrupts(self):
        m = Message(sender=0, receiver=1)
        with pytest.raises(TypeError):
            interrupt_sort_key(MessageSendEvent(message=m))


class TestDescribeEvent:
    def test_start(self):
        assert describe_event(StartEvent()) == "start"

    def test_send_and_recv_mention_message(self):
        m = Message(sender=0, receiver=1)
        assert str(m.uid) in describe_event(MessageSendEvent(message=m))
        assert str(m.uid) in describe_event(MessageReceiveEvent(message=m))

    def test_timers_mention_clock(self):
        assert "2.5" in describe_event(TimerSetEvent(clock_time=2.5))
        assert "2.5" in describe_event(TimerEvent(clock_time=2.5))
