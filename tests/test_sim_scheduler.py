"""Unit tests for the event scheduler (repro.sim.scheduler)."""

import pytest

from repro.sim.scheduler import (
    EventScheduler,
    PRIORITY_RECEIVE,
    PRIORITY_START,
    PRIORITY_TIMER,
)


class TestOrdering:
    def test_pops_in_time_order(self):
        s = EventScheduler()
        s.schedule(3.0, PRIORITY_RECEIVE, "c")
        s.schedule(1.0, PRIORITY_RECEIVE, "a")
        s.schedule(2.0, PRIORITY_RECEIVE, "b")
        assert [s.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        s = EventScheduler()
        s.schedule(1.0, PRIORITY_TIMER, "timer")
        s.schedule(1.0, PRIORITY_START, "start")
        s.schedule(1.0, PRIORITY_RECEIVE, "recv")
        assert [s.pop().payload for _ in range(3)] == [
            "start",
            "recv",
            "timer",
        ]

    def test_sequence_breaks_full_ties(self):
        s = EventScheduler()
        for i in range(5):
            s.schedule(1.0, PRIORITY_RECEIVE, i)
        assert [s.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_now_tracks_popped_time(self):
        s = EventScheduler()
        s.schedule(4.5, PRIORITY_RECEIVE, "x")
        s.pop()
        assert s.now == 4.5

    def test_processed_counter(self):
        s = EventScheduler()
        s.schedule(1.0, PRIORITY_RECEIVE, "x")
        s.schedule(2.0, PRIORITY_RECEIVE, "y")
        s.pop()
        s.pop()
        assert s.processed == 2


class TestLifecycle:
    def test_empty_pop_returns_none(self):
        assert EventScheduler().pop() is None

    def test_bool_and_len(self):
        s = EventScheduler()
        assert not s and len(s) == 0
        entry = s.schedule(1.0, PRIORITY_RECEIVE, "x")
        assert s and len(s) == 1
        s.cancel(entry)
        assert not s and len(s) == 0

    def test_cancelled_entries_skipped(self):
        s = EventScheduler()
        doomed = s.schedule(1.0, PRIORITY_RECEIVE, "dead")
        s.schedule(2.0, PRIORITY_RECEIVE, "alive")
        s.cancel(doomed)
        assert s.pop().payload == "alive"
        assert s.pop() is None

    def test_cancel_reports_whether_it_prevented_delivery(self):
        s = EventScheduler()
        entry = s.schedule(1.0, PRIORITY_RECEIVE, "x")
        assert s.cancel(entry) is True

    def test_cancel_twice_is_a_noop(self):
        s = EventScheduler()
        entry = s.schedule(1.0, PRIORITY_RECEIVE, "x")
        assert s.cancel(entry) is True
        assert s.cancel(entry) is False  # second cancel changed nothing
        assert s.pop() is None

    def test_cancel_after_pop_is_a_noop(self):
        s = EventScheduler()
        entry = s.schedule(1.0, PRIORITY_RECEIVE, "x")
        assert s.pop() is entry
        assert s.cancel(entry) is False  # too late: already delivered
        assert entry.cancelled is False  # history is not rewritten

    def test_cancel_after_cancelled_pop_is_a_noop(self):
        s = EventScheduler()
        entry = s.schedule(1.0, PRIORITY_RECEIVE, "x")
        s.schedule(2.0, PRIORITY_RECEIVE, "y")
        s.cancel(entry)
        assert s.pop().payload == "y"  # skips (and retires) the dead entry
        assert s.cancel(entry) is False

    def test_scheduling_in_past_rejected(self):
        s = EventScheduler()
        s.schedule(5.0, PRIORITY_RECEIVE, "x")
        s.pop()
        with pytest.raises(ValueError):
            s.schedule(4.0, PRIORITY_RECEIVE, "late")

    def test_scheduling_at_current_instant_allowed(self):
        s = EventScheduler()
        s.schedule(5.0, PRIORITY_RECEIVE, "x")
        s.pop()
        s.schedule(5.0, PRIORITY_TIMER, "same-instant")
        assert s.pop().payload == "same-instant"
