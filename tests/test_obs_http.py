"""The /metrics + /healthz HTTP sidecar (repro.obs.http).

ISSUE requirements covered here:

* every ``/metrics`` scrape passes the Prometheus 0.0.4 validator --
  including scrapes racing concurrent registry updates from writer
  threads (the exporter renders from the registry's locked snapshot);
* ``/healthz`` serves the injected health payload with 200/503 mapped
  from its ``healthy`` key;
* the server binds an ephemeral port, is scoped as a context manager,
  and ``close()`` actually stops serving.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.export import validate_prometheus_text
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryServer,
    serve_telemetry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import recording


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


def make_registry():
    registry = MetricsRegistry()
    registry.counter("campaign.cache.hits").add(3)
    registry.gauge("campaign.cells.total").set(12)
    registry.gauge("campaign.cells.completed").set(7)
    registry.histogram("campaign.cell.seconds").observe(0.05)
    return registry


class TestMetricsEndpoint:
    def test_scrape_validates(self):
        with serve_telemetry(make_registry()) as server:
            status, headers, body = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        validate_prometheus_text(body)
        assert "campaign_cells_total 12" in body
        assert "campaign_cells_completed 7" in body

    def test_scrape_tracks_live_updates(self):
        registry = make_registry()
        with serve_telemetry(registry) as server:
            registry.gauge("campaign.cells.completed").set(9)
            _, _, body = get(server.url + "/metrics")
        assert "campaign_cells_completed 9" in body

    def test_callable_registry_source(self):
        registries = [make_registry()]
        with serve_telemetry(lambda: registries[0]) as server:
            fresh = MetricsRegistry()
            fresh.gauge("campaign.cells.total").set(99)
            registries[0] = fresh
            _, _, body = get(server.url + "/metrics")
        assert "campaign_cells_total 99" in body

    def test_default_registry_is_ambient_recorder(self):
        with recording() as recorder:
            recorder.registry.gauge("campaign.cells.total").set(5)
            with TelemetryServer() as server:
                _, _, body = get(server.url + "/metrics")
        assert "campaign_cells_total 5" in body

    def test_concurrent_writers_never_break_a_scrape(self):
        """The ISSUE's exporter-under-concurrency requirement."""
        registry = make_registry()
        stop = threading.Event()

        def hammer(index):
            counter = registry.counter(f"campaign.hammer.{index}")
            gauge = registry.gauge("campaign.cells.completed")
            value = 0
            while not stop.is_set():
                counter.add(1)
                value += 1
                gauge.set(value)
                registry.histogram("campaign.cell.seconds").observe(0.001)

        writers = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(4)
        ]
        for writer in writers:
            writer.start()
        try:
            with serve_telemetry(registry) as server:
                for _ in range(25):
                    status, _, body = get(server.url + "/metrics")
                    assert status == 200
                    validate_prometheus_text(body)
        finally:
            stop.set()
            for writer in writers:
                writer.join(timeout=5)


class TestHealthEndpoint:
    def test_default_health_is_ok(self):
        with serve_telemetry(MetricsRegistry()) as server:
            status, headers, body = get(server.url + "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"status": "ok", "healthy": True}

    def test_unhealthy_payload_maps_to_503(self):
        health = lambda: {  # noqa: E731
            "status": "degraded",
            "healthy": False,
            "attention": [{"shard": [2, 4], "state": "stalled"}],
        }
        with serve_telemetry(MetricsRegistry(), health=health) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode())
        assert payload["status"] == "degraded"
        assert payload["attention"][0]["state"] == "stalled"

    def test_health_callable_error_becomes_500_not_crash(self):
        def broken():
            raise RuntimeError("health source exploded")

        with serve_telemetry(MetricsRegistry(), health=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/healthz")
            assert excinfo.value.code == 500
            # The server survives: the next request still works.
            status, _, _ = get(server.url + "/metrics")
            assert status == 200


class TestLifecycle:
    def test_unknown_path_is_404(self):
        with serve_telemetry(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_ephemeral_port_assigned(self):
        with serve_telemetry(MetricsRegistry()) as server:
            assert server.port != 0
            assert server.url == f"http://127.0.0.1:{server.port}"

    def test_close_stops_serving_and_is_idempotent(self):
        server = serve_telemetry(MetricsRegistry())
        url = server.url
        server.close()
        server.close()  # idempotent
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            get(url + "/metrics")

    def test_start_after_close_rejected(self):
        server = serve_telemetry(MetricsRegistry())
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.start()


class TestHealthProviderResolution:
    """resolve_health_provider: any health source, one callable shape."""

    def test_none_is_always_healthy(self):
        from repro.obs.http import resolve_health_provider

        provider = resolve_health_provider(None)
        assert provider() == {"status": "ok", "healthy": True}

    def test_static_dict_is_copied(self):
        from repro.obs.http import resolve_health_provider

        payload = {"status": "ok", "healthy": True, "shards": 3}
        provider = resolve_health_provider(payload)
        payload["shards"] = 99  # later mutation must not leak through
        assert provider()["shards"] == 3

    def test_callable_passes_through(self):
        from repro.obs.http import resolve_health_provider

        def source():
            return {"status": "ok", "healthy": True}

        assert resolve_health_provider(source) is source

    def test_health_json_object_adopted(self):
        from repro.obs.http import resolve_health_provider

        class Service:
            def health_json(self):
                return {"status": "degraded", "healthy": False}

        provider = resolve_health_provider(Service())
        assert provider() == {"status": "degraded", "healthy": False}

    def test_unsupported_source_rejected(self):
        from repro.obs.http import resolve_health_provider

        with pytest.raises(TypeError, match="health source"):
            resolve_health_provider(42)

    def test_health_json_object_served_over_http(self):
        class Service:
            healthy = True

            def health_json(self):
                return {"status": "ok" if self.healthy else "degraded",
                        "healthy": self.healthy}

        service = Service()
        with serve_telemetry(MetricsRegistry(), health=service) as server:
            status, _, body = get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            service.healthy = False  # state change visible per request
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/healthz")
            assert excinfo.value.code == 503
