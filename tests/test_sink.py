"""Streaming result sink: durable JSONL shards, torn tails, resume.

ISSUE requirements covered here:

* round-trip fuzz of ``CellResult.to_json/from_json`` (inf/NaN
  sentinels, degraded results) and ``CellFailure`` quarantine records;
* crash-recovery: truncate a shard stream mid-line and assert a resumed
  run re-executes *only* the torn cell;
* a 10^4-cell synthetic grid streams through ``run_campaign`` in
  bounded-memory mode with the peak resident ``CellResult`` count
  bounded by a constant (the sink's high-water counter).
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import line, ring
from repro.runner import (
    CellFailure,
    CellOutcome,
    CellResult,
    CellSpec,
    CellTask,
    ResultSink,
    grid_fingerprint,
    read_stream_records,
)
from repro.workloads import Campaign, bounded_uniform, run_campaign


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


def make_campaign(seeds=range(4)):
    campaign = Campaign(seeds=seeds)
    campaign.add("bounded", bounded_builder)
    return campaign


TOPOLOGIES = [ring(4), line(4)]

GRID = [("bounded", "ring-4", seed) for seed in range(4)]


def make_result(seed, precision=2.0, **kwargs):
    return CellResult(
        scenario="bounded", topology="ring-4", seed=seed,
        precision=precision, rho_bar=precision, realized=1.0, sound=True,
        backend="python", seconds=0.01, **kwargs,
    )


def make_failure(seed, kind="crash"):
    return CellFailure(
        scenario="bounded", topology="ring-4", seed=seed,
        kind=kind, message="worker died", attempts=2,
    )


class TestGridFingerprint:
    def test_deterministic(self):
        assert grid_fingerprint(GRID) == grid_fingerprint(list(GRID))

    def test_order_sensitive(self):
        assert grid_fingerprint(GRID) != grid_fingerprint(GRID[::-1])

    def test_cell_sensitive(self):
        other = GRID[:-1] + [("bounded", "ring-4", 99)]
        assert grid_fingerprint(GRID) != grid_fingerprint(other)


class TestReadStreamRecords:
    def test_missing_file(self, tmp_path):
        assert read_stream_records(tmp_path / "none.jsonl") == ([], 0)

    def test_clean_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_bytes(b'{"a": 1}\n{"b": 2}\n')
        records, valid = read_stream_records(path)
        assert records == [{"a": 1}, {"b": 2}]
        assert valid == path.stat().st_size

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_bytes(b'{"a": 1}\n{"b": ')  # crash mid-append
        records, valid = read_stream_records(path)
        assert records == [{"a": 1}]
        assert valid == len(b'{"a": 1}\n')

    def test_corrupt_middle_stops_scan(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_bytes(b'{"a": 1}\n{garbage}\n{"c": 3}\n')
        records, valid = read_stream_records(path)
        assert records == [{"a": 1}]
        assert valid == len(b'{"a": 1}\n')

    def test_non_object_lines_stop_scan(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_bytes(b'[1, 2]\n{"a": 1}\n')
        assert read_stream_records(path) == ([], 0)


class TestResultSinkLifecycle:
    def test_round_trip_recovery(self, tmp_path):
        with ResultSink(tmp_path) as sink:
            assert sink.begin(GRID, range(4)).cells == 0
            sink.append_result(0, make_result(0), metrics={"m": {}})
            sink.append_result(2, make_result(2, precision=math.inf))
        manifest = json.loads(sink.manifest_path.read_text())
        assert manifest["complete"] is True
        assert set(manifest["completed"]) == {"0", "2"}

        fresh = ResultSink(tmp_path)
        recovery = fresh.begin(GRID, range(4))
        assert sorted(recovery.results) == [0, 2]
        assert recovery.metrics[0] == {"m": {}}
        assert recovery.metrics[2] is None
        assert math.isinf(recovery.results[2].precision)
        assert recovery.results[0].fingerprint() == make_result(0).fingerprint()
        assert fresh.recovered == 2
        fresh.close()

    def test_failure_records_recover_as_quarantined(self, tmp_path):
        with ResultSink(tmp_path) as sink:
            sink.begin(GRID, range(4))
            sink.append_failure(1, make_failure(1))
        recovery = ResultSink(tmp_path).begin(GRID, range(4))
        assert list(recovery.failures) == [1]
        assert recovery.failures[1].kind == "crash"
        manifest = json.loads((tmp_path / "manifest-1-of-1.json").read_text())
        assert manifest["completed"]["1"] == "quarantined"

    def test_later_result_supersedes_failure(self, tmp_path):
        with ResultSink(tmp_path) as sink:
            sink.begin(GRID, range(4))
            sink.append_failure(1, make_failure(1))
            sink.append_result(1, make_result(1))  # retry succeeded
        recovery = ResultSink(tmp_path).begin(GRID, range(4))
        assert not recovery.failures
        assert list(recovery.results) == [1]

    def test_torn_tail_truncated_on_resume(self, tmp_path):
        with ResultSink(tmp_path) as sink:
            sink.begin(GRID, range(4))
            sink.append_result(0, make_result(0))
            sink.append_result(1, make_result(1))
        data = sink.data_path.read_bytes()
        torn = data[: len(data) - len(data.split(b"\n")[-2]) // 2 - 1]
        sink.data_path.write_bytes(torn)

        fresh = ResultSink(tmp_path)
        recovery = fresh.begin(GRID, range(4))
        assert list(recovery.results) == [0]  # cell 1's line was torn
        assert recovery.truncated_bytes > 0
        # the stream is parseable again: appends continue cleanly
        fresh.append_result(1, make_result(1))
        fresh.close()
        records, valid = read_stream_records(fresh.data_path)
        assert [r["seed"] for r in records] == [0, 1]
        assert valid == fresh.data_path.stat().st_size

    def test_refuses_foreign_grid(self, tmp_path):
        with ResultSink(tmp_path) as sink:
            sink.begin(GRID, range(4))
        other = [("bounded", "ring-4", seed) for seed in range(5)]
        with pytest.raises(ValueError, match="different campaign grid"):
            ResultSink(tmp_path).begin(other, range(5))

    def test_stream_without_manifest_is_discarded(self, tmp_path):
        orphan = tmp_path / "shard-1-of-1.jsonl"
        record = make_result(0).to_json()
        record["index"] = 0
        orphan.write_text(json.dumps(record) + "\n")
        recovery = ResultSink(tmp_path).begin(GRID, range(4))
        assert recovery.cells == 0  # provenance unknown: not trusted

    def test_foreign_and_out_of_range_records_ignored(self, tmp_path):
        with ResultSink(tmp_path) as sink:
            sink.begin(GRID, range(4))
            sink.append_result(0, make_result(0))
        with open(tmp_path / "shard-1-of-1.jsonl", "a") as handle:
            bad = make_result(1).to_json()
            bad["index"] = 99  # stale index from some other grid
            handle.write(json.dumps(bad) + "\n")
            handle.write(json.dumps({"type": "metrics.counter"}) + "\n")
        recovery = ResultSink(tmp_path).begin(GRID, range(4))
        assert list(recovery.results) == [0]

    def test_lifecycle_errors(self, tmp_path):
        sink = ResultSink(tmp_path)
        with pytest.raises(RuntimeError, match="not begun"):
            sink.append_result(0, make_result(0))
        sink.begin(GRID, range(4))
        with pytest.raises(RuntimeError, match="already begun"):
            sink.begin(GRID, range(4))
        sink.close()

    def test_invalid_shard_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="invalid shard"):
            ResultSink(tmp_path, shard=(3, 2))

    def test_high_water_tracks_maximum(self, tmp_path):
        sink = ResultSink(tmp_path)
        for count in (1, 5, 3):
            sink.note_resident(count)
        assert sink.resident_high_water == 5


class TestRoundTripFuzz:
    """Serialization survives the full value space, non-finite included."""

    values = st.one_of(
        st.floats(allow_nan=True, allow_infinity=True),
        st.just(math.inf),
        st.just(-math.inf),
        st.just(math.nan),
    )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        precision=values,
        rho_bar=values,
        realized=values,
        sound=st.booleans(),
        cache_hit=st.booleans(),
        degraded=st.booleans(),
        timings=st.dictionaries(
            st.sampled_from(["graph", "solve", "verify"]),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            max_size=3,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_cell_result_round_trips(
        self, seed, precision, rho_bar, realized, sound, cache_hit,
        degraded, timings,
    ):
        result = CellResult(
            scenario="bounded", topology="ring-4", seed=seed,
            precision=precision, rho_bar=rho_bar, realized=realized,
            sound=sound, backend="python", seconds=0.5, timings=timings,
            cache_hit=cache_hit, degraded=degraded,
        )
        # through an actual JSON text round trip, as the sink does
        wire = json.dumps(result.to_json(), sort_keys=True)
        clone = CellResult.from_json(json.loads(wire))
        assert clone.to_json() == result.to_json()
        assert clone.degraded == degraded
        if not any(map(math.isnan, (precision, rho_bar, realized))):
            assert clone.fingerprint() == result.fingerprint()

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        kind=st.sampled_from(["timeout", "crash", "error"]),
        message=st.text(max_size=80),
        attempts=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_cell_failure_round_trips(self, seed, kind, message, attempts):
        failure = CellFailure(
            scenario="bounded", topology="ring-4", seed=seed,
            kind=kind, message=message, attempts=attempts,
        )
        wire = json.dumps(failure.to_json(), sort_keys=True)
        clone = CellFailure.from_json(json.loads(wire))
        assert clone == failure
        assert clone.key == failure.key


class TestCrashRecoveryResume:
    """Kill a streaming run mid-append; the resume redoes only the loss."""

    def test_resume_reruns_only_the_torn_cell(self, tmp_path):
        campaign = make_campaign()
        first = campaign.run_results(
            TOPOLOGIES, workers=1, results_dir=tmp_path / "stream"
        )
        assert first.cells == 8 and first.resumed == 0

        # Simulate a crash mid-append: tear the final record in half.
        stream = tmp_path / "stream" / "shard-1-of-1.jsonl"
        lines = stream.read_bytes().split(b"\n")
        torn = b"\n".join(lines[:-2]) + b"\n" + lines[-2][: len(lines[-2]) // 2]
        stream.write_bytes(torn)

        second = campaign.run_results(
            TOPOLOGIES, workers=1, results_dir=tmp_path / "stream"
        )
        assert second.resumed == 7  # durable cells were not re-run
        assert second.cache_misses == 1  # exactly the torn cell
        assert second.cells == 8
        assert [r.fingerprint() for r in second.results] == [
            r.fingerprint() for r in first.results
        ]

    def test_resumed_table_and_metrics_match_single_run(self, tmp_path):
        campaign = make_campaign()
        reference = campaign.run_results(TOPOLOGIES, workers=1)
        streamed = campaign.run_results(
            TOPOLOGIES, workers=1, results_dir=tmp_path / "stream"
        )
        resumed = campaign.run_results(
            TOPOLOGIES, workers=1, results_dir=tmp_path / "stream"
        )
        assert resumed.resumed == 8 and resumed.cache_misses == 0

        def deterministic(outcome):
            return {
                name: series
                for name, series in outcome.registry.snapshot().items()
                if not name.endswith(".seconds")
            }

        for outcome in (streamed, resumed):
            assert [r.fingerprint() for r in outcome.results] == [
                r.fingerprint() for r in reference.results
            ]
        # A streaming first run is metrics-identical to a plain run; the
        # resumed run executed nothing, but the *recovered* per-cell
        # snapshots still fold to the same sim/pipeline series.
        assert deterministic(streamed) == deterministic(reference)
        folded = deterministic(resumed)
        for name, series in deterministic(reference).items():
            if name.startswith(("sim.", "pipeline.", "engine.")):
                assert folded[name] == series


def _stub_execute_cell(task):
    spec = task.spec
    return CellOutcome(
        result=CellResult(
            scenario=spec.builder, topology=spec.topology.name,
            seed=spec.seed, precision=float(spec.seed % 7),
            rho_bar=float(spec.seed % 7), realized=0.5, sound=True,
            backend="stub", seconds=0.0,
        ),
        metrics={},
    )


class TestBoundedMemoryAtScale:
    """Acceptance: 10^4 cells stream with O(1) resident results."""

    GRID_SIZE = 10_000

    def test_high_water_is_constant_in_grid_size(self, tmp_path, monkeypatch):
        import repro.runner.executor as executor_module

        monkeypatch.setattr(
            executor_module, "execute_cell", _stub_execute_cell
        )
        topology = ring(3)
        tasks = [
            CellTask(
                spec=CellSpec(builder="stub", topology=topology, seed=seed),
                build=bounded_builder,
            )
            for seed in range(self.GRID_SIZE)
        ]
        sink = ResultSink(tmp_path, fsync=False)  # fsync off: test speed
        outcome = run_campaign(
            tasks, workers=1, sink=sink, bounded_memory=True
        )
        assert outcome.cells == self.GRID_SIZE
        assert outcome.results == ()  # nothing retained in memory
        assert outcome.resident_high_water is not None
        assert outcome.resident_high_water <= 2  # O(1), not O(grid)
        records, valid = read_stream_records(sink.data_path)
        assert len(records) == self.GRID_SIZE  # every cell is durable
        assert valid == sink.data_path.stat().st_size
        (aggregate,) = outcome.aggregates
        assert len(aggregate.precisions) == self.GRID_SIZE

    def test_unbounded_run_high_water_grows_with_grid(self, tmp_path):
        campaign = make_campaign()
        outcome = campaign.run_results(
            TOPOLOGIES, workers=1, results_dir=tmp_path / "stream"
        )
        # keeping all results: the high-water mark reaches the grid size
        assert outcome.resident_high_water == 8

    def test_bounded_memory_requires_sink(self):
        campaign = make_campaign(seeds=range(1))
        with pytest.raises(ValueError, match="requires a sink"):
            campaign.run_results(
                [ring(4)], workers=1, bounded_memory=True
            )
