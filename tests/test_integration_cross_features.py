"""Cross-feature integration tests: features composed together.

Each test exercises a combination the individual suites don't: the
reliable protocol on heterogeneous systems, diagnosis over archived
traces, online synchronization of lossy runs, campaigns over asymmetric
scenarios -- the way a downstream user would actually mix the pieces.
"""

import math

import pytest

from repro.analysis.diagnosis import diagnose
from repro.analysis.system_io import load_system, save_system
from repro.analysis.trace import load_execution, save_execution
from repro.core.precision import realized_spread, rho_bar
from repro.core.synchronizer import ClockSynchronizer
from repro.extensions.online import OnlineSynchronizer
from repro.extensions.reliable_leader import (
    reliable_corrections_from_execution,
    reliable_leader_automata,
)
from repro.graphs.topology import grid, ring
from repro.sim.network import NetworkSimulator
from repro.workloads.campaign import Campaign
from repro.workloads.scenarios import (
    asymmetric_bounded,
    bounded_uniform,
    heterogeneous,
)


class TestReliableProtocolOnHeterogeneousSystems:
    def test_mixed_assumptions_with_loss(self):
        scenario = heterogeneous(ring(5), seed=9)
        automata = reliable_leader_automata(
            scenario.system, leader=0, probe_times=[12.0, 16.0],
            report_time=60.0, retry_interval=20.0, max_retries=6,
        )
        loss = {link: 0.2 for link in scenario.topology.links}
        sim = NetworkSimulator(
            scenario.system, scenario.samplers, scenario.start_times,
            seed=4, loss=loss,
        )
        alpha = sim.run(automata)
        corrections = reliable_corrections_from_execution(alpha)
        full = ClockSynchronizer(scenario.system).from_execution(alpha)
        spread = realized_spread(alpha.start_times(), corrections)
        assert spread <= rho_bar(full.ms_tilde, corrections) + 1e-9

    def test_grid_topology(self):
        scenario = bounded_uniform(grid(2, 3), lb=1.0, ub=3.0, seed=2)
        automata = reliable_leader_automata(
            scenario.system, leader=0, probe_times=[12.0], report_time=40.0
        )
        sim = NetworkSimulator(
            scenario.system, scenario.samplers, scenario.start_times, seed=2
        )
        corrections = reliable_corrections_from_execution(sim.run(automata))
        assert len(corrections) == 6


class TestArchivedDiagnosis:
    def test_diagnose_after_roundtrip(self, tmp_path):
        """Diagnosis verdicts survive serialization (archived evidence)."""
        from repro.delays.bounds import BoundedDelay
        from repro.delays.distributions import Constant, UniformDelay
        from repro.delays.system import System
        from repro.sim.network import SimulationConfig
        from repro.sim.protocols import probe_automata, probe_schedule

        topo = ring(4)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        samplers[topo.links[1]] = Constant(8.0)
        sim = NetworkSimulator(
            system, samplers, {p: 0.0 for p in topo.nodes}, seed=0,
            config=SimulationConfig(validate=False),
        )
        alpha = sim.run(
            dict(probe_automata(topo, probe_schedule(2, 5.0, 2.0)))
        )
        save_system(system, tmp_path / "s.json")
        save_execution(alpha, tmp_path / "t.json")
        restored_system = load_system(tmp_path / "s.json")
        restored_alpha = load_execution(tmp_path / "t.json")
        before = diagnose(system, alpha.views())
        after = diagnose(restored_system, restored_alpha.views())
        assert before.convicted == after.convicted
        assert before.consistent == after.consistent


class TestOnlineWithLoss:
    def test_online_sync_of_lossy_run(self):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, probes=6, seed=3)
        loss = {link: 0.5 for link in scenario.topology.links}
        sim = NetworkSimulator(
            scenario.system, scenario.samplers, scenario.start_times,
            seed=3, loss=loss,
        )
        from repro.sim.protocols import probe_automata, probe_schedule

        alpha = sim.run(
            dict(
                probe_automata(
                    scenario.topology, probe_schedule(6, 11.0, 3.0)
                )
            )
        )
        online = OnlineSynchronizer(scenario.system)
        online.ingest_views(alpha.views())
        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert online.precision() == pytest.approx(batch.precision)
        # Whatever survived the loss, soundness holds.
        if not math.isinf(batch.precision):
            assert realized_spread(
                alpha.start_times(), online.result().corrections
            ) <= batch.precision + 1e-9


class TestCampaignComposition:
    def test_campaign_over_asymmetric_scenarios(self):
        campaign = Campaign(seeds=range(2))
        campaign.add(
            "asym",
            lambda t, s: asymmetric_bounded(
                t, lb=1.0, ub=5.0, skew_factor=0.8, seed=s
            ),
        )
        campaign.add("hetero", lambda t, s: heterogeneous(t, seed=s))
        cells = campaign.run_cells([ring(4)])
        assert all(cell.certified for cell in cells)

    def test_campaign_without_certification(self):
        campaign = Campaign(seeds=range(1), certify=False)
        campaign.add(
            "bounded", lambda t, s: bounded_uniform(t, 1.0, 3.0, seed=s)
        )
        table = campaign.run([ring(4)])
        assert table.rows
