"""Tests for execution statistics (repro.analysis.stats)."""

import pytest

from repro.analysis.stats import execution_statistics, traffic_table
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform

from conftest import make_two_node_execution


class TestExecutionStatistics:
    def test_hand_built_counts(self):
        alpha = make_two_node_execution(1.0, 2.0, [2.0, 3.0], [1.5])
        stats = execution_statistics(alpha)
        assert stats.processors == 2
        assert stats.messages_delivered == 3
        assert stats.messages_in_flight == 0
        assert stats.first_start == 1.0
        by_edge = {t.edge: t for t in stats.per_edge}
        assert by_edge[(0, 1)].count == 2
        assert by_edge[(0, 1)].delays.minimum == pytest.approx(2.0)
        assert by_edge[(0, 1)].delays.maximum == pytest.approx(3.0)
        assert by_edge[(1, 0)].count == 1

    def test_in_flight_counted(self):
        from repro.model.builder import ExecutionBuilder

        alpha = (
            ExecutionBuilder()
            .processor(0, start=0.0)
            .processor(1, start=0.0)
            .message(0, 1, send_clock=5.0, delay=1.0)
            .in_flight_message(0, 1, send_clock=6.0)
            .build()
        )
        stats = execution_statistics(alpha)
        assert stats.messages_delivered == 1
        assert stats.messages_in_flight == 1

    def test_duration_spans_start_to_last_event(self):
        alpha = make_two_node_execution(1.0, 5.0, [2.0], [])
        stats = execution_statistics(alpha)
        # Last event: q receives at real 1.0 + 10.0 + 2.0 = 13.0.
        assert stats.duration == pytest.approx(13.0 - 1.0)

    def test_lossy_simulation_stats(self):
        from repro.sim.network import NetworkSimulator
        from repro.sim.protocols import probe_automata, probe_schedule

        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=1)
        sim = NetworkSimulator(
            scenario.system,
            scenario.samplers,
            scenario.start_times,
            seed=1,
            loss={scenario.topology.links[0]: 1.0},
        )
        alpha = sim.run(
            dict(
                probe_automata(
                    scenario.topology, probe_schedule(2, 11.0, 2.0)
                )
            )
        )
        stats = execution_statistics(alpha)
        assert stats.messages_in_flight == 2 * 2  # both directions, 2 rounds
        assert stats.messages_delivered == 4 * 2 * 2 - 4


class TestTrafficTable:
    def test_renders(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=2)
        alpha = scenario.run()
        table = traffic_table(alpha)
        assert len(table.rows) == 8  # both directions of 4 links
        text = table.format()
        assert "delivered" in text
        assert "->" in text
