"""Tests for message loss in the simulator (graceful degradation).

The paper's delivery system never loses messages; the simulator can lose
them anyway to probe robustness: a lost message is simply "in flight
forever", the execution stays well formed, the synchronizer sees fewer
observations and degrades honestly (weaker precision or components,
never wrong answers).
"""

import math

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import UniformDelay
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.sim.network import NetworkSimulator, SimulationError
from repro.sim.protocols import probe_automata, probe_schedule


def lossy_run(topo, loss, seed=0, probes=3):
    system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
    starts = {p: float(p) * 0.3 for p in topo.nodes}
    sim = NetworkSimulator(system, samplers, starts, seed=seed, loss=loss)
    alpha = sim.run(
        dict(probe_automata(topo, probe_schedule(probes, 5.0, 2.0)))
    )
    return system, alpha


class TestLossMechanics:
    def test_no_loss_by_default(self):
        topo = ring(4)
        _, alpha = lossy_run(topo, loss=None)
        assert len(alpha.message_records()) == 4 * 2 * 3

    def test_total_loss_on_one_link(self):
        topo = ring(4)
        dead = topo.links[0]
        system, alpha = lossy_run(topo, loss={dead: 1.0})
        alpha.validate()
        delivered_edges = {r.edge for r in alpha.message_records().values()}
        assert dead not in delivered_edges
        assert (dead[1], dead[0]) not in delivered_edges
        # Sends still appear in the sender's view (in-flight messages).
        sent = alpha.view(dead[0]).sent_messages()
        assert any(m.receiver == dead[1] for m in sent)

    def test_partial_loss_reduces_delivery(self):
        topo = ring(4)
        _, full = lossy_run(topo, loss=None, probes=10)
        _, lossy = lossy_run(
            topo, loss={link: 0.5 for link in topo.links}, probes=10
        )
        assert len(lossy.message_records()) < len(full.message_records())
        assert len(lossy.message_records()) > 0

    def test_loss_validation(self):
        topo = ring(4)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        with pytest.raises(SimulationError, match="loss probability"):
            NetworkSimulator(
                system, samplers, {p: 0.0 for p in topo.nodes},
                loss={topo.links[0]: 1.5},
            )
        with pytest.raises(SimulationError, match="non-canonical|unknown"):
            NetworkSimulator(
                system, samplers, {p: 0.0 for p in topo.nodes},
                loss={(99, 100): 0.5},
            )

    def test_deterministic_given_seed(self):
        topo = ring(4)
        loss = {link: 0.3 for link in topo.links}
        _, a = lossy_run(topo, loss=loss, seed=5)
        _, b = lossy_run(topo, loss=loss, seed=5)
        assert len(a.message_records()) == len(b.message_records())


class TestGracefulDegradation:
    def test_dead_link_on_ring_still_synchronizes(self):
        """Ring minus one link is a line: precision degrades, stays finite."""
        topo = ring(5)
        dead = topo.links[0]
        system, healthy = lossy_run(topo, loss=None, seed=2)
        _, degraded = lossy_run(topo, loss={dead: 1.0}, seed=2)
        sync = ClockSynchronizer(system)
        full = sync.from_execution(healthy)
        partial = sync.from_execution(degraded)
        assert partial.is_fully_synchronized
        assert not math.isinf(partial.precision)
        assert partial.precision >= full.precision - 1e-9

    def test_dead_link_on_line_splits_components(self):
        topo = line(4)
        dead = topo.links[1]
        system, alpha = lossy_run(topo, loss={dead: 1.0}, seed=1)
        result = ClockSynchronizer(system).from_execution(alpha)
        assert math.isinf(result.precision)
        assert len(result.components) == 2
        for component in result.components:
            assert not math.isinf(component.precision)

    def test_lossy_results_still_sound(self):
        """Whatever survives, realized spread stays within the claim."""
        from repro.core.precision import realized_spread

        topo = ring(5)
        loss = {link: 0.4 for link in topo.links}
        system, alpha = lossy_run(topo, loss=loss, seed=3, probes=6)
        result = ClockSynchronizer(system).from_execution(alpha)
        if not math.isinf(result.precision):
            assert (
                realized_spread(alpha.start_times(), result.corrections)
                <= result.precision + 1e-9
            )
