"""Unit tests for scenario builders (repro.workloads.scenarios)."""

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay
from repro.graphs.topology import line, ring
from repro.workloads.scenarios import (
    asymmetric_bounded,
    bounded_uniform,
    fully_asynchronous,
    heterogeneous,
    lower_bound_only,
    round_trip_bias,
)

ALL_BUILDERS = [
    lambda topo, seed: bounded_uniform(topo, lb=1.0, ub=3.0, seed=seed),
    lambda topo, seed: lower_bound_only(topo, lb=1.0, mean_extra=2.0, seed=seed),
    lambda topo, seed: fully_asynchronous(topo, mean_delay=2.0, seed=seed),
    lambda topo, seed: round_trip_bias(topo, bias=0.5, seed=seed),
    lambda topo, seed: asymmetric_bounded(
        topo, lb=1.0, ub=5.0, skew_factor=0.7, seed=seed
    ),
    lambda topo, seed: heterogeneous(topo, seed=seed),
]


class TestScenarioExecution:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_runs_are_admissible_and_validate(self, builder):
        scenario = builder(ring(4), 3)
        alpha = scenario.run()
        alpha.validate()
        assert scenario.system.is_admissible(alpha)

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_runs_are_reproducible(self, builder):
        def fingerprint():
            alpha = builder(ring(4), 9).run()
            return sorted(
                (r.edge, round(r.delay, 12))
                for r in alpha.message_records().values()
            )

        assert fingerprint() == fingerprint()

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_different_seeds_differ(self, builder):
        a = builder(ring(4), 1).run()
        b = builder(ring(4), 2).run()
        da = sorted(r.delay for r in a.message_records().values())
        db = sorted(r.delay for r in b.message_records().values())
        assert da != db

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_synchronizable(self, builder):
        scenario = builder(ring(4), 5)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        assert result.is_fully_synchronized
        assert result.precision < float("inf")


class TestScenarioShapes:
    def test_bounded_uniform_assumptions(self):
        scenario = bounded_uniform(line(3), lb=1.0, ub=3.0)
        for assumption in scenario.system.assumptions.values():
            assert assumption == BoundedDelay.symmetric(1.0, 3.0)

    def test_lower_bound_only_has_no_upper(self):
        scenario = lower_bound_only(line(3), lb=1.0, mean_extra=1.0)
        for assumption in scenario.system.assumptions.values():
            assert not assumption.has_upper_bounds
            assert assumption.lb_forward == 1.0

    def test_bias_assumption(self):
        scenario = round_trip_bias(line(3), bias=0.8)
        for assumption in scenario.system.assumptions.values():
            assert assumption == RoundTripBias(0.8)

    def test_asymmetric_skew_factor_validated(self):
        with pytest.raises(ValueError):
            asymmetric_bounded(line(3), lb=1.0, ub=3.0, skew_factor=1.5)

    def test_heterogeneous_mixes_assumption_kinds(self):
        scenario = heterogeneous(ring(8), seed=0)
        kinds = {
            type(a).__name__ for a in scenario.system.assumptions.values()
        }
        assert len(kinds) >= 2  # genuinely mixed

    def test_names_are_descriptive(self):
        assert "bounded" in bounded_uniform(line(3), 1.0, 3.0).name
        assert "bias" in round_trip_bias(line(3), 0.5).name
        assert "hetero" in heterogeneous(line(3)).name
