"""Golden-trace regression test.

A heterogeneous 5-ring execution is archived under ``tests/data``
(system + trace JSON).  Re-synchronizing it must reproduce the pinned
precision and corrections exactly (up to float tolerance): any change to
the estimate formulas, the shortest-path stage, Karp's algorithm or the
correction construction shows up here even if all invariants still hold.

To regenerate after an *intentional* output change::

    python -c "
    from repro.analysis.system_io import save_system
    from repro.analysis.trace import save_execution
    from repro.workloads.scenarios import heterogeneous
    from repro.graphs import ring
    sc = heterogeneous(ring(5), seed=2024)
    save_system(sc.system, 'tests/data/golden_system.json')
    save_execution(sc.run(), 'tests/data/golden_trace.json')"

and update the pinned values below from the printed result.
"""

from pathlib import Path

import pytest

from repro.analysis.system_io import load_system
from repro.analysis.trace import load_execution
from repro.core.optimality import verify_certificate
from repro.core.synchronizer import ClockSynchronizer

DATA = Path(__file__).parent / "data"

PINNED_PRECISION = 0.86062467187324
PINNED_CORRECTIONS = {
    0: 0.0,
    1: 2.945356016722653,
    2: -1.557613325639131,
    3: 4.0994076550717615,
    4: -0.3613924889273963,
}


@pytest.fixture(scope="module")
def archive():
    system = load_system(DATA / "golden_system.json")
    alpha = load_execution(DATA / "golden_trace.json")
    return system, alpha


class TestGoldenTrace:
    def test_archive_loads_and_validates(self, archive):
        system, alpha = archive
        alpha.validate()
        assert system.is_admissible(alpha)

    def test_precision_pinned(self, archive):
        system, alpha = archive
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(
            PINNED_PRECISION, abs=1e-12
        )

    def test_corrections_pinned(self, archive):
        system, alpha = archive
        result = ClockSynchronizer(system).from_execution(alpha)
        for p, pinned in PINNED_CORRECTIONS.items():
            assert result.corrections[p] == pytest.approx(
                pinned, abs=1e-12
            ), p

    def test_certificate_still_verifies(self, archive):
        system, alpha = archive
        result = ClockSynchronizer(system).from_execution(alpha)
        verify_certificate(result)

    def test_all_backends_agree_on_golden_instance(self, archive):
        system, alpha = archive
        for method in ("karp", "karp-numpy", "howard"):
            result = ClockSynchronizer(system, method=method).from_execution(
                alpha
            )
            assert result.precision == pytest.approx(
                PINNED_PRECISION, abs=1e-9
            ), method


BIAS_PINNED_PRECISION = 0.12685070296264667
BIAS_PINNED_CORRECTIONS = {
    0: 0.0,
    1: 2.158511558460547,
    2: 1.3671982643361666,
    3: 0.3810651816659161,
}


class TestGoldenBiasTrace:
    """A second pinned archive under the round-trip bias model, so a
    regression localized to the Lemma 6.5 path cannot hide behind the
    heterogeneous archive."""

    @pytest.fixture(scope="class")
    def archive(self):
        system = load_system(DATA / "golden_bias_system.json")
        alpha = load_execution(DATA / "golden_bias_trace.json")
        return system, alpha

    def test_precision_pinned(self, archive):
        system, alpha = archive
        result = ClockSynchronizer(system).from_execution(alpha)
        assert result.precision == pytest.approx(
            BIAS_PINNED_PRECISION, abs=1e-12
        )

    def test_corrections_pinned(self, archive):
        system, alpha = archive
        result = ClockSynchronizer(system).from_execution(alpha)
        for p, pinned in BIAS_PINNED_CORRECTIONS.items():
            assert result.corrections[p] == pytest.approx(pinned, abs=1e-12)

    def test_certificate_verifies(self, archive):
        system, alpha = archive
        verify_certificate(
            ClockSynchronizer(system).from_execution(alpha)
        )
