"""Unit tests for GLOBAL ESTIMATES (repro.core.global_estimates) --
Lemma 5.3 and Theorem 5.5."""

import pytest

from repro._types import INF
from repro.analysis.ground_truth import true_global_shifts
from repro.core.estimates import local_shift_estimates
from repro.core.global_estimates import (
    InconsistentViewsError,
    global_shift_estimates,
    shift_graph,
)
from repro.delays.bounds import BoundedDelay
from repro.delays.system import System
from repro.graphs.topology import line
from repro.workloads.scenarios import bounded_uniform, heterogeneous

from conftest import make_two_node_execution


class TestShiftGraph:
    def test_infinite_edges_dropped(self):
        g = shift_graph([0, 1, 2], {(0, 1): 1.0, (1, 0): INF, (1, 2): 2.0})
        assert g.number_of_edges() == 2
        assert g.number_of_nodes() == 3


class TestGlobalEstimates:
    def test_single_link_passthrough(self):
        ms = global_shift_estimates([0, 1], {(0, 1): 1.5, (1, 0): 0.5})
        assert ms[(0, 1)] == pytest.approx(1.5)
        assert ms[(1, 0)] == pytest.approx(0.5)
        assert ms[(0, 0)] == 0.0

    def test_path_is_summed(self):
        mls = {(0, 1): 1.0, (1, 0): 2.0, (1, 2): 3.0, (2, 1): 4.0}
        ms = global_shift_estimates([0, 1, 2], mls)
        assert ms[(0, 2)] == pytest.approx(4.0)
        assert ms[(2, 0)] == pytest.approx(6.0)

    def test_shortcut_beats_long_path(self):
        mls = {
            (0, 1): 1.0,
            (1, 0): 1.0,
            (1, 2): 1.0,
            (2, 1): 1.0,
            (0, 2): 0.5,
            (2, 0): 10.0,
        }
        ms = global_shift_estimates([0, 1, 2], mls)
        assert ms[(0, 2)] == pytest.approx(0.5)
        assert ms[(2, 0)] == pytest.approx(2.0)  # via 1, not the 10.0 edge

    def test_unreachable_pairs_are_infinite(self):
        ms = global_shift_estimates([0, 1, 2], {(0, 1): 1.0, (1, 0): 1.0})
        assert ms[(0, 2)] == INF
        assert ms[(2, 1)] == INF
        assert ms[(2, 2)] == 0.0

    def test_negative_cycle_raises_inconsistent_views(self):
        # mls~(0,1) + mls~(1,0) < 0 cannot come from any admissible
        # execution (true mls are non-negative and cycles are invariant).
        with pytest.raises(InconsistentViewsError):
            global_shift_estimates([0, 1], {(0, 1): -2.0, (1, 0): 1.0})

    def test_negative_single_weights_fine(self):
        ms = global_shift_estimates([0, 1], {(0, 1): -2.0, (1, 0): 3.0})
        assert ms[(0, 1)] == pytest.approx(-2.0)


class TestTheorem55:
    """ms~ from estimates vs ms from ground truth: translation identity."""

    def test_translation_identity_two_nodes(self):
        s_p, s_q = 2.0, 9.0
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, [1.5, 2.5], [2.0])
        mls_tilde = local_shift_estimates(system, alpha.views())
        ms_tilde = global_shift_estimates([0, 1], mls_tilde)
        ms_true = true_global_shifts(system, alpha)
        assert ms_tilde[(0, 1)] == pytest.approx(ms_true[(0, 1)] + s_p - s_q)
        assert ms_tilde[(1, 0)] == pytest.approx(ms_true[(1, 0)] + s_q - s_p)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_translation_identity_simulated_ring(self, seed):
        scenario = bounded_uniform(
            __import__("repro.graphs", fromlist=["ring"]).ring(5),
            lb=1.0,
            ub=3.0,
            seed=seed,
        )
        alpha = scenario.run()
        system = scenario.system
        starts = alpha.start_times()
        mls_tilde = local_shift_estimates(system, alpha.views())
        ms_tilde = global_shift_estimates(list(system.processors), mls_tilde)
        ms_true = true_global_shifts(system, alpha)
        for p in system.processors:
            for q in system.processors:
                expected = ms_true[(p, q)] + starts[p] - starts[q]
                assert ms_tilde[(p, q)] == pytest.approx(expected), (p, q)

    def test_triangle_inequality_of_ms(self):
        scenario = heterogeneous(
            __import__("repro.graphs", fromlist=["ring"]).ring(6), seed=3
        )
        alpha = scenario.run()
        mls_tilde = local_shift_estimates(scenario.system, alpha.views())
        ms = global_shift_estimates(
            list(scenario.system.processors), mls_tilde
        )
        procs = list(scenario.system.processors)
        for a in procs:
            for b in procs:
                for c in procs:
                    if INF in (ms[(a, b)], ms[(b, c)]):
                        continue
                    assert ms[(a, c)] <= ms[(a, b)] + ms[(b, c)] + 1e-9
