"""Tests for message causality tracing (repro.obs.flow)."""

import json

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.obs import recording
from repro.obs.flow import (
    FLOW_PID,
    FlowLog,
    FlowRecord,
    causal_dag_lines,
    chrome_flow_events,
    flow_record_to_dict,
    validate_flow_trace_file,
    write_causal_dag,
    write_flow_trace,
)


def _record(trace_id=1, send=0.0, arrival=2.0, offset=3.0, **overrides):
    """A delivered p->q record with delay arrival-send and error offset."""
    fields = dict(
        trace_id=trace_id,
        sender="p",
        receiver="q",
        link=("p", "q"),
        assumption="BoundedDelay(1, 3)",
        send_time=send,
        send_clock=send,
        status="delivered",
        arrival_time=arrival,
        receive_clock=arrival + offset,
    )
    fields.update(overrides)
    return FlowRecord(**fields)


class TestFlowRecord:
    def test_delay_and_estimate(self):
        record = _record(send=1.0, arrival=3.5, offset=-2.0)
        assert record.delay == pytest.approx(2.5)
        # d~ - d = S_p - S_q (Lemma 6.1), here forced to -2.
        assert record.estimated_delay == pytest.approx(0.5)
        assert record.estimate_error == pytest.approx(-2.0)
        assert record.edge == ("p", "q")

    def test_dropped_record_has_no_delay(self):
        record = _record(
            status="dropped", arrival_time=None, receive_clock=None
        )
        assert record.delay is None
        assert record.estimated_delay is None
        assert record.estimate_error is None


class TestFlowLog:
    def test_observer_ingests_only_flow_events(self):
        log = FlowLog()
        log.on_telemetry("message.flow", {"record": _record()})
        log.on_telemetry("pipeline.result", {"anything": 1})
        assert len(log) == 1

    def test_delivered_filters_drops(self):
        log = FlowLog()
        log.record(_record(trace_id=1))
        log.record(
            _record(
                trace_id=2, status="dropped",
                arrival_time=None, receive_clock=None,
            )
        )
        assert len(log.delivered()) == 1
        assert len(log.records()) == 2

    def test_per_edge_stats_flag_constant_error(self):
        log = FlowLog()
        for i, (send, arrival) in enumerate([(0, 2), (5, 6.5), (9, 11.2)]):
            log.record(_record(trace_id=i, send=send, arrival=arrival))
        stats = log.per_edge_error_stats()[("p", "q")]
        assert stats.messages == 3 and stats.dropped == 0
        assert stats.estimate_error == pytest.approx(3.0)
        assert stats.error_spread == pytest.approx(0.0)

    def test_per_edge_stats_all_dropped_is_nan(self):
        log = FlowLog()
        log.record(
            _record(status="dropped", arrival_time=None, receive_clock=None)
        )
        stats = log.per_edge_error_stats()[("p", "q")]
        assert stats.dropped == 1
        assert stats.mean_delay != stats.mean_delay  # nan

    def test_reset(self):
        log = FlowLog()
        log.record(_record())
        log.reset()
        assert len(log) == 0


class TestSimulatorEmitsFlows:
    def test_every_delivery_recorded_with_lemma_6_1_error(
        self, ring5_scenario
    ):
        with recording() as recorder:
            flow_log = FlowLog()
            recorder.add_observer(flow_log)
            alpha = ring5_scenario.run()
        delivered = flow_log.delivered()
        assert len(delivered) == len(alpha.message_records())
        starts = alpha.start_times()
        for record in delivered:
            expected = starts[record.sender] - starts[record.receiver]
            assert record.estimate_error == pytest.approx(expected)
            assert record.trace_id >= 0
            assert "Bounded" in record.assumption

    def test_no_observer_means_no_flow_overhead_records(
        self, ring5_scenario
    ):
        with recording() as recorder:
            ring5_scenario.run()
            # No observer attached: nothing listens, nothing recorded.
            assert recorder.observers == []


class TestChromeFlowExport:
    @pytest.fixture()
    def flow_log(self, ring5_scenario):
        with recording() as recorder:
            log = FlowLog()
            recorder.add_observer(log)
            ring5_scenario.run()
        return log

    def test_flow_arrows_pair_per_delivery(self, flow_log):
        events = chrome_flow_events(flow_log)
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(flow_log.delivered())
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert all(e["pid"] == FLOW_PID for e in starts + ends)

    def test_write_and_validate_roundtrip(self, flow_log, tmp_path):
        path = write_flow_trace(tmp_path / "flow.json", flow_log)
        assert validate_flow_trace_file(path) == len(flow_log.delivered())

    def test_merged_with_span_trace_keeps_both_pids(
        self, ring5_scenario, tmp_path
    ):
        with recording() as recorder:
            log = FlowLog()
            recorder.add_observer(log)
            alpha = ring5_scenario.run()
            ClockSynchronizer(ring5_scenario.system).from_execution(alpha)
            spans = recorder.tracer.finished()
        path = write_flow_trace(tmp_path / "merged.json", log, spans)
        document = json.loads(path.read_text())
        pids = {e["pid"] for e in document["traceEvents"]}
        assert FLOW_PID in pids and 1 in pids
        assert validate_flow_trace_file(path) > 0

    def test_validator_rejects_unpaired_flow(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"name": "m1", "ph": "s", "pid": 2, "id": 1, "ts": 0.0},
            ]
        }))
        with pytest.raises(ValueError, match="unpaired"):
            validate_flow_trace_file(path)


class TestCausalDag:
    def test_lines_are_json_with_both_delays(self):
        log = FlowLog()
        log.record(_record(send=1.0, arrival=3.0, offset=0.5))
        (line,) = causal_dag_lines(log)
        data = json.loads(line)
        assert data["record"] == "message"
        assert data["d"] == pytest.approx(2.0)
        assert data["d_tilde"] == pytest.approx(2.5)

    def test_write_causal_dag(self, tmp_path):
        log = FlowLog()
        log.record(_record(trace_id=7))
        path = write_causal_dag(tmp_path / "dag.jsonl", log)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["trace_id"] == 7

    def test_record_dict_is_json_clean(self):
        data = flow_record_to_dict(_record())
        json.dumps(data)  # must not raise
        assert data["status"] == "delivered"
