"""Unit tests for shortest paths (repro.graphs.shortest_paths).

networkx serves as an independent oracle on random instances.
"""

import random

import networkx as nx
import pytest

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.shortest_paths import (
    NegativeCycleError,
    all_pairs_shortest_paths,
    bellman_ford,
    dijkstra,
    floyd_warshall,
    floyd_warshall_numpy,
    johnson,
    reconstruct_path,
)

INF = float("inf")


def diamond() -> WeightedDigraph:
    """0 -> {1, 2} -> 3 with a shortcut; one negative edge, no neg cycle."""
    return WeightedDigraph.from_edges(
        [
            (0, 1, 4.0),
            (0, 2, 1.0),
            (2, 1, -2.0),
            (1, 3, 1.0),
            (2, 3, 5.0),
        ]
    )


def random_graph(rng: random.Random, n: int, negative: bool) -> WeightedDigraph:
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    lo = -2.0 if negative else 0.0
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.4:
                g.add_edge(u, v, rng.uniform(lo, 10.0))
    return g


def to_nx(g: WeightedDigraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.nodes)
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestBellmanFord:
    def test_diamond_distances(self):
        dist, _ = bellman_ford(diamond(), 0)
        assert dist == pytest.approx({0: 0.0, 1: -1.0, 2: 1.0, 3: 0.0})

    def test_unreachable_is_inf(self):
        g = WeightedDigraph.from_edges([(0, 1, 1.0)])
        g.add_node(2)
        dist, _ = bellman_ford(g, 0)
        assert dist[2] == INF

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            bellman_ford(diamond(), 42)

    def test_negative_cycle_detected(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 1.0), (1, 2, -3.0), (2, 0, 1.0)]
        )
        with pytest.raises(NegativeCycleError):
            bellman_ford(g, 0)

    def test_negative_cycle_witness_is_a_cycle(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 1.0), (1, 2, -5.0), (2, 1, 1.0), (2, 3, 1.0)]
        )
        with pytest.raises(NegativeCycleError) as info:
            bellman_ford(g, 0)
        cycle = info.value.cycle
        if cycle is not None:  # witness is best-effort
            total = sum(
                g.weight(cycle[i], cycle[(i + 1) % len(cycle)])
                for i in range(len(cycle))
            )
            assert total < 0

    def test_path_reconstruction(self):
        dist, parent = bellman_ford(diamond(), 0)
        assert reconstruct_path(parent, 0, 1) == [0, 2, 1]
        assert reconstruct_path(parent, 0, 0) == [0]

    def test_path_reconstruction_unreachable(self):
        g = WeightedDigraph.from_edges([(0, 1, 1.0)])
        g.add_node(2)
        _, parent = bellman_ford(g, 0)
        with pytest.raises(KeyError):
            reconstruct_path(parent, 0, 2)

    def test_matches_networkx_on_random_instances(self):
        rng = random.Random(11)
        for trial in range(15):
            g = random_graph(rng, rng.randrange(3, 10), negative=True)
            nxg = to_nx(g)
            try:
                theirs = nx.single_source_bellman_ford_path_length(nxg, 0)
                neg = False
            except nx.NetworkXUnbounded:
                neg = True
            if neg:
                with pytest.raises(NegativeCycleError):
                    bellman_ford(g, 0)
            else:
                dist, _ = bellman_ford(g, 0)
                for node, d in theirs.items():
                    assert dist[node] == pytest.approx(d)


class TestDijkstra:
    def test_matches_bellman_ford_nonnegative(self):
        rng = random.Random(3)
        for _ in range(10):
            g = random_graph(rng, 8, negative=False)
            d1, _ = dijkstra(g, 0)
            d2, _ = bellman_ford(g, 0)
            for node in g.nodes:
                assert d1[node] == pytest.approx(d2[node])

    def test_rejects_negative_weights(self):
        g = WeightedDigraph.from_edges([(0, 1, -1.0)])
        with pytest.raises(ValueError):
            dijkstra(g, 0)


class TestAllPairs:
    def test_floyd_warshall_diamond(self):
        dist = floyd_warshall(diamond())
        assert dist[0][3] == pytest.approx(0.0)
        assert dist[2][1] == pytest.approx(-2.0)
        assert dist[3][0] == INF

    def test_floyd_warshall_negative_cycle(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 1.0), (1, 0, -2.0)]
        )
        with pytest.raises(NegativeCycleError):
            floyd_warshall(g)

    def test_negative_self_loop_is_negative_cycle(self):
        g = WeightedDigraph.from_edges([(0, 0, -1.0), (0, 1, 1.0)])
        with pytest.raises(NegativeCycleError):
            floyd_warshall(g)

    def test_numpy_equals_scalar_floyd_warshall(self):
        rng = random.Random(31)
        for _ in range(12):
            g = random_graph(rng, rng.randrange(1, 14), negative=True)
            try:
                expected = floyd_warshall(g)
            except NegativeCycleError:
                with pytest.raises(NegativeCycleError):
                    floyd_warshall_numpy(g)
                continue
            actual = floyd_warshall_numpy(g)
            for u in g.nodes:
                for v in g.nodes:
                    a, b = expected[u][v], actual[u][v]
                    if a == INF or b == INF:
                        assert a == b
                    else:
                        assert b == pytest.approx(a)

    def test_numpy_floyd_warshall_empty(self):
        assert floyd_warshall_numpy(WeightedDigraph()) == {}

    def test_johnson_equals_floyd_warshall(self):
        rng = random.Random(17)
        for _ in range(10):
            g = random_graph(rng, 9, negative=True)
            try:
                fw = floyd_warshall(g)
            except NegativeCycleError:
                with pytest.raises(NegativeCycleError):
                    johnson(g)
                continue
            jo = johnson(g)
            for u in g.nodes:
                for v in g.nodes:
                    assert jo[u][v] == pytest.approx(fw[u][v])

    def test_dispatcher_agrees_with_floyd_warshall(self):
        rng = random.Random(23)
        # Deterministically find an instance without a negative cycle.
        for _ in range(50):
            g = random_graph(rng, 12, negative=True)
            try:
                expected = floyd_warshall(g)
                break
            except NegativeCycleError:
                continue
        else:
            raise AssertionError("no negative-cycle-free instance in 50 draws")
        actual = all_pairs_shortest_paths(g)
        for u in g.nodes:
            for v in g.nodes:
                assert actual[u][v] == pytest.approx(expected[u][v])

    def test_empty_graph(self):
        assert all_pairs_shortest_paths(WeightedDigraph()) == {}

    def test_triangle_inequality_holds(self):
        rng = random.Random(29)
        g = random_graph(rng, 8, negative=False)
        dist = floyd_warshall(g)
        for u in g.nodes:
            for v in g.nodes:
                for w in g.nodes:
                    if dist[u][v] < INF and dist[v][w] < INF:
                        assert dist[u][w] <= dist[u][v] + dist[v][w] + 1e-9
