"""Tests for the loss-tolerant leader protocol
(repro.extensions.reliable_leader)."""

import pytest

from repro.core.precision import realized_spread, rho_bar
from repro.core.synchronizer import ClockSynchronizer
from repro.extensions.leader import ProtocolIncomplete, leader_automata
from repro.extensions.leader import corrections_from_execution
from repro.extensions.reliable_leader import (
    ReliableLeaderSyncAutomaton,
    reliable_corrections_from_execution,
    reliable_leader_automata,
)
from repro.graphs.topology import ring
from repro.sim.network import NetworkSimulator
from repro.workloads.scenarios import bounded_uniform


def run_reliable(scenario, loss=None, seed=None, **kwargs):
    automata = reliable_leader_automata(
        scenario.system,
        leader=0,
        probe_times=[12.0, 16.0],
        report_time=40.0,
        retry_interval=kwargs.pop("retry_interval", 15.0),
        max_retries=kwargs.pop("max_retries", 8),
    )
    sim = NetworkSimulator(
        scenario.system,
        scenario.samplers,
        scenario.start_times,
        seed=scenario.seed if seed is None else seed,
        loss=loss,
    )
    return sim.run(automata)


@pytest.fixture
def scenario():
    return bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=11)


class TestLossless:
    def test_completes_and_validates(self, scenario):
        alpha = run_reliable(scenario)
        alpha.validate()
        corrections = reliable_corrections_from_execution(alpha)
        assert set(corrections) == set(scenario.system.processors)

    def test_matches_plain_protocol_without_loss(self, scenario):
        """Same probe observations -> same corrections as the plain
        protocol (retransmission machinery is inert without loss)."""
        reliable = run_reliable(scenario)
        plain_automata = leader_automata(
            scenario.system, leader=0, probe_times=[12.0, 16.0],
            report_time=40.0,
        )
        sim = NetworkSimulator(
            scenario.system, scenario.samplers, scenario.start_times,
            seed=scenario.seed,
        )
        plain = sim.run(plain_automata)
        a = reliable_corrections_from_execution(reliable)
        b = corrections_from_execution(plain)
        # Identical seeds but different message counts make the delay
        # draws differ; compare guaranteed quality instead of raw values.
        full_a = ClockSynchronizer(scenario.system).from_execution(reliable)
        full_b = ClockSynchronizer(scenario.system).from_execution(plain)
        assert rho_bar(full_a.ms_tilde, a) < float("inf")
        assert rho_bar(full_b.ms_tilde, b) < float("inf")

    def test_spread_within_guarantee(self, scenario):
        alpha = run_reliable(scenario)
        corrections = reliable_corrections_from_execution(alpha)
        full = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert realized_spread(
            alpha.start_times(), corrections
        ) <= rho_bar(full.ms_tilde, corrections) + 1e-9


class TestUnderLoss:
    @pytest.mark.parametrize("seed", range(6))
    def test_survives_thirty_percent_loss(self, scenario, seed):
        loss = {link: 0.3 for link in scenario.topology.links}
        alpha = run_reliable(scenario, loss=loss, seed=seed)
        corrections = reliable_corrections_from_execution(alpha)
        assert len(corrections) == 5
        full = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert realized_spread(
            alpha.start_times(), corrections
        ) <= rho_bar(full.ms_tilde, corrections) + 1e-9

    def test_plain_protocol_deadlocks_where_reliable_survives(self, scenario):
        """Find a loss seed that kills the plain protocol; the reliable
        one must complete under the same conditions."""
        loss = {link: 0.4 for link in scenario.topology.links}
        plain_automata = leader_automata(
            scenario.system, leader=0, probe_times=[12.0, 16.0],
            report_time=40.0,
        )
        broke_plain = None
        for seed in range(20):
            sim = NetworkSimulator(
                scenario.system, scenario.samplers, scenario.start_times,
                seed=seed, loss=loss,
            )
            alpha = sim.run(plain_automata)
            try:
                corrections_from_execution(alpha)
            except ProtocolIncomplete:
                broke_plain = seed
                break
        assert broke_plain is not None, "40% loss never broke the plain protocol?"
        alpha = run_reliable(scenario, loss=loss, seed=broke_plain)
        reliable_corrections_from_execution(alpha)  # must not raise

    def test_exhausted_retries_fail_loudly(self, scenario):
        """Total loss on a report path: bounded retries, then a detected
        (never silent) failure."""
        dead = scenario.topology.links[0]
        loss = {dead: 1.0}
        alpha = run_reliable(
            scenario, loss=loss, seed=1, max_retries=2, retry_interval=5.0
        )
        # Whether the run completes depends on whether the dead link is on
        # the routing tree; with leader 0 and ring-5, links[0] = (0, 1) is.
        with pytest.raises(ProtocolIncomplete):
            reliable_corrections_from_execution(alpha)


class TestValidation:
    def test_constructor_validation(self, scenario):
        from repro.extensions.leader import tree_routing

        routing = tree_routing(scenario.topology, 0)
        with pytest.raises(ValueError, match="report_time"):
            ReliableLeaderSyncAutomaton(
                me=0, system=scenario.system, leader=0,
                probe_times=[10.0], report_time=5.0, next_hop=routing[0],
            )
        with pytest.raises(ValueError, match="retry_interval"):
            ReliableLeaderSyncAutomaton(
                me=0, system=scenario.system, leader=0,
                probe_times=[10.0], report_time=20.0, next_hop=routing[0],
                retry_interval=0.0,
            )
