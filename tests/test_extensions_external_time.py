"""Tests for real-time anchoring (repro.extensions.external_time)."""

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.extensions.external_time import (
    anchor_to_real_time,
    real_time_error_bounds,
    realized_real_time_errors,
)
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform


@pytest.fixture
def synced():
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=21)
    alpha = scenario.run()
    result = ClockSynchronizer(scenario.system).from_execution(alpha)
    return alpha, result


class TestAnchoring:
    def test_anchor_reads_real_time_exactly(self, synced):
        alpha, result = synced
        anchor = 2
        anchored = anchor_to_real_time(
            result, anchor, alpha.start_time(anchor)
        )
        errors = realized_real_time_errors(anchored, alpha.start_times())
        assert errors[anchor] == pytest.approx(0.0)

    def test_other_processors_within_pair_precision(self, synced):
        alpha, result = synced
        anchor = 0
        anchored = anchor_to_real_time(
            result, anchor, alpha.start_time(anchor)
        )
        errors = realized_real_time_errors(anchored, alpha.start_times())
        bounds = real_time_error_bounds(result, anchor)
        for p, err in errors.items():
            assert err <= bounds[p] + 1e-9, p

    def test_bounds_within_global_precision(self, synced):
        _, result = synced
        bounds = real_time_error_bounds(result, 0)
        assert all(b <= result.precision + 1e-9 for b in bounds.values())

    def test_anchoring_is_pure_translation(self, synced):
        alpha, result = synced
        anchored = anchor_to_real_time(result, 1, alpha.start_time(1))
        diffs = {
            p: anchored[p] - result.corrections[p] for p in anchored
        }
        values = list(diffs.values())
        assert max(values) - min(values) == pytest.approx(0.0)

    def test_unknown_anchor_rejected(self, synced):
        _, result = synced
        with pytest.raises(KeyError):
            anchor_to_real_time(result, 99, 0.0)
