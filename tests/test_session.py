"""The typed run configuration and unified source adapter.

ISSUE requirements covered here:

* :class:`repro.Session` / :class:`repro.ObsOptions` carry the
  cross-cutting knobs once, compose with explicit overrides, and
  activate as context managers;
* ``repro.run(source=...)`` accepts a recorded execution, a views
  mapping, a simulator scenario, a live probe log, and paths to both
  archive kinds -- all yielding the same corrections for the same
  underlying timing (Claim 3.1);
* the retired ``execution=`` compatibility shim stays retired: the old
  keyword fails loudly instead of silently doing something else.
"""

import argparse

import pytest

import repro
from repro import ObsOptions, Session, resolve_source
from repro.delays.bounds import BoundedDelay
from repro.delays.system import System
from repro.graphs.topology import ring
from repro.live.trace import ProbeLog, write_probe_log
from repro.live.wire import Report
from repro.obs.recorder import get_recorder
from repro.workloads.scenarios import bounded_uniform


@pytest.fixture
def scenario():
    return bounded_uniform(ring(4), lb=1.0, ub=3.0, probes=2, seed=7)


class TestObsOptions:
    def test_defaults_are_inert(self):
        options = ObsOptions()
        assert not options.wanted
        with options.activate() as recorder:
            assert recorder is None
            assert not get_recorder().enabled

    def test_force_installs_recorder(self):
        with ObsOptions(force=True).activate() as recorder:
            assert recorder is not None
            assert get_recorder() is recorder

    def test_from_args_collects_shared_flags(self):
        args = argparse.Namespace(
            trace_out="t.json", metrics_out=None, flow_out=None,
            log_jsonl=None, log_level="info", timings=True,
        )
        options = ObsOptions.from_args(args)
        assert options.trace_out == "t.json"
        assert options.log_level == "info"
        assert options.timings and options.wanted

    def test_exports_on_exit(self, tmp_path, scenario):
        notices = []
        out = tmp_path / "trace.json"
        options = ObsOptions(trace_out=str(out))
        with options.activate(printer=notices.append):
            repro.run(scenario.system, scenario.run())
        assert out.exists()
        assert any("trace written" in n for n in notices)


class TestSession:
    def test_merged_explicit_wins(self):
        session = Session(backend="python", workers=2)
        merged = session.merged(backend="numpy")
        assert merged.backend == "numpy"
        assert merged.workers == 2
        assert session.backend == "python"  # original untouched

    def test_merged_rejects_unknown_field(self):
        with pytest.raises(TypeError, match="no field"):
            Session().merged(turbo=True)

    def test_fault_plan_loads_path(self, tmp_path):
        import json

        from repro.faults.plan import FaultPlan

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan().to_json()))
        plan = Session(faults=str(path)).fault_plan()
        assert isinstance(plan, FaultPlan)
        assert Session().fault_plan() is None

    def test_run_takes_session_defaults(self, scenario):
        execution = scenario.run()
        base = repro.run(scenario.system, execution)
        via_session = repro.run(
            scenario.system, execution,
            session=Session(backend="python", method="karp"),
        )
        assert via_session.corrections == base.corrections
        assert via_session.precision == base.precision

    def test_sweep_takes_session(self, scenario):
        def builder(topology, seed):
            return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)

        table = repro.sweep(
            {"bounded": builder}, [ring(3)], seeds=(0,),
            session=Session(backend="python", workers=1),
        )
        assert len(table.rows) == 1


class TestResolveSource:
    def test_execution_and_views_equivalent(self, scenario):
        execution = scenario.run()
        assert resolve_source(execution) == execution.views()
        views = execution.views()
        assert resolve_source(views) is views

    def test_views_mapping_validated(self):
        with pytest.raises(TypeError, match="View values"):
            resolve_source({"p": "not a view"})

    def test_scenario_is_run_once(self, scenario):
        views = resolve_source(scenario)
        assert set(views) == set(scenario.system.processors)

    def test_probe_log_uses_processors(self):
        log = ProbeLog([
            Report(sender="p", receiver="q", seq=0,
                   send_clock=0.0, recv_clock=0.5),
        ])
        views = resolve_source(log, processors=("p", "q", "r"))
        assert set(views) == {"p", "q", "r"}

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported source"):
            resolve_source(42)

    def test_probe_log_path_sniffed(self, tmp_path):
        path = write_probe_log(tmp_path / "probes.jsonl", [
            Report(sender="p", receiver="q", seq=0,
                   send_clock=0.0, recv_clock=0.5),
            Report(sender="q", receiver="p", seq=0,
                   send_clock=0.25, recv_clock=0.3),
        ])
        views = resolve_source(str(path), processors=("p", "q"))
        assert set(views) == {"p", "q"}

    def test_trace_archive_path_sniffed(self, tmp_path, scenario):
        from repro.analysis.trace import save_execution

        execution = scenario.run()
        path = tmp_path / "trace.json"
        save_execution(execution, path)
        result_from_path = repro.run(scenario.system, str(path))
        result_direct = repro.run(scenario.system, execution)
        assert result_from_path.corrections == result_direct.corrections

    def test_garbage_path_rejected(self, tmp_path):
        from repro.live.trace import ProbeLogError

        path = tmp_path / "garbage.json"
        path.write_text('{"neither": "kind"}')
        with pytest.raises(ProbeLogError, match="neither"):
            resolve_source(str(path))


class TestRunSourceApi:
    def test_live_probe_log_end_to_end(self):
        """A probe log through repro.run == the raw batch pipeline."""
        from repro.core.synchronizer import ClockSynchronizer
        from repro.live.cluster import live_system
        from repro.graphs.topology import complete

        system = live_system(complete(2))
        log = ProbeLog([
            Report(sender=0, receiver=1, seq=s,
                   send_clock=2.0 * s, recv_clock=2.0 * s + 0.5 + 0.1 * s)
            for s in range(3)
        ] + [
            Report(sender=1, receiver=0, seq=s,
                   send_clock=2.0 * s + 1.0,
                   recv_clock=2.0 * s + 1.4 + 0.05 * s)
            for s in range(3)
        ])
        via_run = repro.run(system, log)
        direct = ClockSynchronizer(system).from_views(
            log.views(processors=system.processors)
        )
        assert via_run.corrections == direct.corrections
        assert via_run.precision == direct.precision

    def test_execution_keyword_removed(self, scenario):
        # The one-release ``execution=`` compatibility shim is gone:
        # the old keyword now fails like any unknown keyword.
        execution = scenario.run()
        with pytest.raises(TypeError):
            repro.run(scenario.system, execution=execution)

    def test_no_source_rejected(self, scenario):
        with pytest.raises(TypeError, match="source"):
            repro.run(scenario.system)
