"""Tests for the continuous-benchmarking harness (repro.bench)."""

import json

import pytest

from repro.bench import (
    BaselineMismatchError,
    BenchCase,
    BenchRegistry,
    BenchReport,
    BenchResult,
    BenchSchemaError,
    Comparison,
    EnvFingerprint,
    SampleStats,
    append_history,
    compare_reports,
    compare_results,
    load_engine_baseline,
    load_parallel_baseline,
    read_bench_report,
    read_history,
    render_report,
    resolve_tolerance,
    run_case,
    run_cases,
    run_suite,
    validate_bench_file,
    write_bench_report,
)

ENV = EnvFingerprint(
    python="3.11.7", numpy="2.0.0", platform="linux", machine="x86_64",
    hostname="benchhost", cpu_count=4, effective_cpus=4, git_sha="abc123",
)

OTHER_ENV = EnvFingerprint(
    python="3.12.1", numpy="2.0.0", platform="linux", machine="x86_64",
    hostname="otherhost", cpu_count=8, effective_cpus=8,
)


def _result(name="engine.toy", params=None, wall=(0.010, 0.011, 0.012),
            scale=1.0, **kwargs):
    samples = tuple(s * scale for s in wall)
    return BenchResult(
        name=name,
        params=dict(params or {}),
        wall=SampleStats(samples=samples),
        cpu=SampleStats(samples=samples),
        warmup=1,
        **kwargs,
    )


def _report(results, env=ENV, suite="smoke"):
    return BenchReport(env=env, suite=suite, results=list(results))


class TestSampleStats:
    def test_summaries(self):
        stats = SampleStats(samples=(3.0, 1.0, 2.0))
        assert stats.min == 1.0
        assert stats.max == 3.0
        assert stats.median == 2.0
        assert stats.mean == pytest.approx(2.0)

    def test_trimmed_mean_drops_slowest_fifth(self):
        stats = SampleStats(samples=(1.0, 1.0, 1.0, 1.0, 100.0))
        assert stats.trimmed_mean == pytest.approx(1.0)

    def test_trimmed_mean_is_plain_mean_below_five_samples(self):
        stats = SampleStats(samples=(1.0, 100.0))
        assert stats.trimmed_mean == pytest.approx(50.5)

    def test_json_round_trip_preserves_raw_samples(self):
        stats = SampleStats(samples=(0.25, 0.5))
        assert SampleStats.from_json(stats.to_json()) == stats


class TestEnvFingerprint:
    def test_capture_fills_every_field(self):
        env = EnvFingerprint.capture()
        assert env.python and env.numpy and env.hostname
        assert env.cpu_count >= 1 and env.effective_cpus >= 1
        assert len(env.fingerprint) == 16

    def test_git_sha_does_not_affect_fingerprint(self):
        a = EnvFingerprint.from_json({**ENV.to_json(), "git_sha": "one"})
        b = EnvFingerprint.from_json({**ENV.to_json(), "git_sha": "two"})
        assert a.comparable_with(b)

    def test_hostname_changes_fingerprint(self):
        assert not ENV.comparable_with(OTHER_ENV)

    def test_json_round_trip(self):
        assert EnvFingerprint.from_json(ENV.to_json()) == ENV


class TestSchemaRoundTrip:
    def test_result_key_is_name_plus_sorted_params(self):
        result = _result(params={"n": 32, "backend": "numpy"})
        assert result.key == "engine.toy[backend=numpy,n=32]"
        assert _result().key == "engine.toy"

    def test_result_round_trip(self):
        result = _result(
            params={"n": 8},
            peak_tracemalloc_bytes=1024,
            peak_rss_bytes=2048,
            percentiles={"h": {"count": 3.0, "p50": 0.5}},
            extra={"precision": 1.5},
        )
        assert BenchResult.from_json(result.to_json()) == result

    def test_report_document_round_trip(self, tmp_path):
        report = _report([_result(), _result(name="sim.toy")])
        path = write_bench_report(tmp_path / "r.json", report)
        loaded = read_bench_report(path)
        assert loaded.env == ENV
        assert loaded.by_key().keys() == report.by_key().keys()
        assert loaded.result("sim.toy").wall == report.results[1].wall

    def test_wrong_record_type_rejected(self):
        with pytest.raises(BenchSchemaError, match="bench_report"):
            BenchReport.from_json({"record": "something_else"})

    def test_future_schema_version_rejected(self):
        data = _report([_result()]).to_json()
        data["schema"] = 99
        with pytest.raises(BenchSchemaError, match="version"):
            BenchReport.from_json(data)

    def test_history_appends_and_reads_in_order(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, _report([_result()], suite="one"))
        append_history(path, _report([_result()], suite="two"))
        assert [r.suite for r in read_history(path)] == ["one", "two"]


class TestValidator:
    def test_valid_document_counts_results(self, tmp_path):
        path = write_bench_report(
            tmp_path / "r.json", _report([_result(), _result(name="b")])
        )
        assert validate_bench_file(path) == 2

    def test_valid_history_counts_all_runs(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, _report([_result()]))
        append_history(path, _report([_result(), _result(name="b")]))
        assert validate_bench_file(path) == 3

    def test_legacy_bare_list_rejected_with_pointer(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([{"n": 64, "numpy_seconds": 0.005}]))
        with pytest.raises(BenchSchemaError, match="load_engine_baseline"):
            validate_bench_file(path)

    def test_duplicate_result_keys_rejected(self, tmp_path):
        path = write_bench_report(
            tmp_path / "r.json", _report([_result(), _result()])
        )
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_bench_file(path)

    def test_empty_samples_rejected(self, tmp_path):
        data = _report([_result()]).to_json()
        data["results"][0]["wall"]["samples"] = []
        path = tmp_path / "r.json"
        path.write_text(json.dumps(data))
        with pytest.raises(BenchSchemaError, match="no wall samples"):
            validate_bench_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(BenchSchemaError, match="empty"):
            validate_bench_file(path)


class TestLegacyShims:
    def test_engine_rows_from_legacy_list(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps([
            {"n": 64, "python_seconds": 0.05, "numpy_seconds": 0.005,
             "precision": 1.25, "speedup": 10.0},
        ]))
        rows = load_engine_baseline(path)
        assert rows[64]["numpy_seconds"] == 0.005
        assert rows[64]["speedup"] == 10.0

    def test_engine_rows_from_report(self, tmp_path):
        results = [
            _result(
                name="engine.pipeline",
                params={"backend": backend, "n": 64},
                wall=(0.004, 0.005) if backend == "numpy" else (0.04, 0.05),
                extra={"precision": 1.25},
            )
            for backend in ("python", "numpy")
        ] + [_result(name="sim.run", params={"n": 16})]
        path = write_bench_report(tmp_path / "e.json", _report(results))
        rows = load_engine_baseline(path)
        assert set(rows) == {64}
        assert rows[64]["numpy_seconds"] == 0.004  # wall.min
        assert rows[64]["python_seconds"] == 0.04
        assert rows[64]["speedup"] == pytest.approx(10.0)
        assert rows[64]["precision"] == 1.25

    def test_parallel_legacy_dict_passes_through(self, tmp_path):
        legacy = {"grid": {"preset": "e9c"}, "runs": [{"workers": 1}]}
        path = tmp_path / "BENCH_parallel.json"
        path.write_text(json.dumps(legacy))
        assert load_parallel_baseline(path) == legacy

    def test_parallel_rows_from_report(self, tmp_path):
        results = [
            _result(
                name="campaign.scaling", params={"workers": w},
                wall=(0.5 / w,), extra={"cells": 64, "speedup": float(w)},
            )
            for w in (4, 1, 2)
        ] + [
            _result(
                name="campaign.streaming", params={"mode": "in_memory"},
                wall=(0.5,), extra={"cells": 64},
            ),
        ]
        report = _report(results)
        report.meta = {"cpu": {"effective": 4}, "target_met": True}
        path = write_bench_report(tmp_path / "p.json", report)
        out = load_parallel_baseline(path)
        assert [r["workers"] for r in out["runs"]] == [1, 2, 4]
        assert out["runs"][0]["seconds"] == 0.5
        assert out["cpu"] == {"effective": 4}
        assert out["streaming"]["runs"][0]["mode"] == "in_memory"


class TestRegistry:
    def test_grid_expands_to_one_case_per_combination(self):
        registry = BenchRegistry()

        @registry.benchmark(
            "toy", grid={"backend": ("a", "b"), "n": (1, 2)}
        )
        def toy(backend, n):
            return lambda: None

        keys = registry.keys()
        assert len(keys) == 4
        assert "toy[backend=a,n=1]" in keys
        assert "toy[backend=b,n=2]" in keys

    def test_suites_callable_assigns_tiers_per_params(self):
        registry = BenchRegistry()

        @registry.benchmark(
            "toy", grid={"n": (1, 100)},
            suites=lambda p: ("smoke", "full") if p["n"] == 1 else ("full",),
        )
        def toy(n):
            return lambda: None

        assert [c.key for c in registry.cases(suite="smoke")] == ["toy[n=1]"]
        assert len(registry.cases(suite="full")) == 2

    def test_duplicate_key_rejected(self):
        registry = BenchRegistry()
        registry.add(BenchCase(name="toy", setup=lambda: None))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(BenchCase(name="toy", setup=lambda: None))

    def test_unknown_suite_rejected_at_registration(self):
        registry = BenchRegistry()
        with pytest.raises(ValueError, match="unknown suites"):
            registry.add(BenchCase(
                name="toy", setup=lambda: None, suites=("nightly",)
            ))

    def test_cases_filters_by_bare_name_and_full_key(self):
        registry = BenchRegistry()

        @registry.benchmark("toy", grid={"n": (1, 2)})
        def toy(n):
            return lambda: None

        @registry.benchmark("other")
        def other():
            return lambda: None

        assert len(registry.cases(names=["toy"])) == 2
        assert [c.key for c in registry.cases(names=["toy[n=2]"])] == [
            "toy[n=2]"
        ]
        with pytest.raises(ValueError, match="unknown suite"):
            registry.cases(suite="nightly")

    def test_default_workloads_cover_the_stack(self):
        from repro.bench import load_default_workloads

        registry = load_default_workloads()
        names = {case.name for case in registry.cases()}
        assert {
            "engine.pipeline", "engine.closure", "engine.karp",
            "engine.incremental", "sim.run", "online.replay",
            "campaign.throughput", "obs.recording", "monitor.suite",
        } <= names
        assert registry.cases(suite="smoke")


class TestRunner:
    def _counting_case(self, calls, **kwargs):
        def setup():
            return lambda: calls.append(1)

        return BenchCase(name="toy", setup=setup, **kwargs)

    def test_warmup_plus_repeats_plus_memory_pass(self):
        calls = []
        result, spans = run_case(
            self._counting_case(calls), repeats=3, warmup=2
        )
        # 2 warmup + 3 timed + 1 memory pass; no instrumented pass
        # (no histograms declared, spans not requested).
        assert len(calls) == 6
        assert result.repeats == 3
        assert result.warmup == 2
        assert result.peak_tracemalloc_bytes is not None
        assert spans == []

    def test_setup_tuple_attaches_extra(self):
        case = BenchCase(
            name="toy", setup=lambda: (lambda: None, {"precision": 2.5})
        )
        result, _ = run_case(case, repeats=1, warmup=0)
        assert result.extra == {"precision": 2.5}

    def test_instrumented_pass_harvests_histogram_percentiles(self):
        def setup():
            from repro.obs import get_recorder

            def thunk():
                hist = get_recorder().histogram(
                    "toy.latency", boundaries=(1.0, 2.0, 4.0)
                )
                for value in (0.5, 1.5, 3.0):
                    hist.observe(value)

            return thunk

        case = BenchCase(
            name="toy", setup=setup, histograms=("toy.latency", "absent")
        )
        result, _ = run_case(case, repeats=1, warmup=0)
        stats = result.percentiles["toy.latency"]
        assert stats["count"] == 3.0
        assert 0.0 < stats["p50"] <= 2.0 <= stats["p99"] <= 4.0
        assert "absent" not in result.percentiles

    def test_collect_spans_wraps_thunk_under_bench_root(self):
        calls = []
        result, spans = run_case(
            self._counting_case(calls), repeats=1, warmup=0,
            collect_spans=True,
        )
        assert [s.name for s in spans] == ["bench.toy"]
        assert len(calls) == 3  # 1 timed + 1 memory + 1 instrumented

    def test_repeats_below_one_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_case(self._counting_case([]), repeats=0)

    def test_run_cases_builds_fingerprinted_report(self):
        outcome = run_cases(
            [self._counting_case([])], suite="custom", repeats=2, warmup=0
        )
        report = outcome.report
        assert report.suite == "custom"
        assert report.options == {"repeats": 2, "warmup": 0}
        assert report.env.fingerprint == EnvFingerprint.capture().fingerprint
        assert report.results[0].repeats == 2

    def test_empty_selection_raises_instead_of_empty_report(self):
        registry = BenchRegistry()
        with pytest.raises(ValueError, match="no benchmarks selected"):
            run_suite(registry=registry, names=["nope"])


class TestCompare:
    def test_identical_runs_pass(self):
        baseline = _report([_result()])
        current = _report([_result()])
        comparison = compare_reports(baseline, current, tolerance=0.25)
        assert comparison.ok
        assert [d.verdict for d in comparison.deltas] == ["ok"]

    def test_injected_2x_slowdown_is_a_regression(self):
        baseline = _report([_result()])
        current = _report([_result(scale=2.0)])
        comparison = compare_reports(baseline, current, tolerance=0.25)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.ratio == pytest.approx(2.0)
        assert any("REGRESSION" in line for line in comparison.lines())

    def test_single_slow_outlier_does_not_regress(self):
        # Median shifts past tolerance but the floor reproduces: noise,
        # not a regression.
        baseline = _result(wall=(0.010, 0.010, 0.010))
        current = _result(wall=(0.010, 0.020, 0.020))
        delta = compare_results(baseline, current, tolerance=0.25)
        assert delta.verdict == "ok"

    def test_few_repeats_doubles_the_tolerance(self):
        baseline = _result(wall=(0.010,))
        # 1.4x slower: beyond +25% but inside the doubled +50% band.
        delta = compare_results(
            baseline, _result(wall=(0.014,)), tolerance=0.25
        )
        assert delta.verdict == "ok"
        delta = compare_results(
            baseline, _result(wall=(0.016,)), tolerance=0.25
        )
        assert delta.verdict == "regression"

    def test_faster_and_new_and_missing_verdicts(self):
        baseline = _report([_result(), _result(name="gone")])
        current = _report([_result(scale=0.4), _result(name="added")])
        comparison = compare_reports(baseline, current, tolerance=0.25)
        verdicts = {d.key: d.verdict for d in comparison.deltas}
        assert verdicts["engine.toy"] == "faster"
        assert verdicts["added"] == "new"
        assert verdicts["gone"] == "missing"
        assert comparison.ok  # none of these fail the gate

    def test_cross_env_refused_by_default(self):
        baseline = _report([_result()])
        current = _report([_result()], env=OTHER_ENV)
        with pytest.raises(BaselineMismatchError, match="different env"):
            compare_reports(baseline, current)
        comparison = compare_reports(
            baseline, current, allow_cross_env=True
        )
        assert comparison.cross_env
        assert any("environments differ" in line
                   for line in comparison.lines())

    def test_resolve_tolerance_presets_and_floats(self):
        assert resolve_tolerance("local") == (0.25, False)
        assert resolve_tolerance("ci") == (1.5, True)
        assert resolve_tolerance("0.4") == (0.4, False)
        with pytest.raises(ValueError, match="unknown tolerance"):
            resolve_tolerance("nope")
        with pytest.raises(ValueError, match="positive"):
            resolve_tolerance("-1")


class TestRendering:
    def test_render_report_sections(self):
        report = _report([
            _result(
                peak_tracemalloc_bytes=2048,
                percentiles={"toy.latency": {
                    "count": 3.0, "p50": 1.0, "p95": 2.0, "p99": 2.0,
                }},
            ),
        ])
        text = render_report(report)
        assert "bench timings" in text
        assert "bench memory" in text
        assert "latency percentiles" in text
        assert ENV.fingerprint in text

    def test_comparison_table_ranks_regressions_first(self):
        from repro.bench import comparison_table

        baseline = _report([_result(), _result(name="zz.slow")])
        current = _report([_result(), _result(name="zz.slow", scale=3.0)])
        comparison = compare_reports(baseline, current, tolerance=0.25)
        rendered = comparison_table(comparison).format()
        assert rendered.index("zz.slow") < rendered.index("engine.toy")


class TestObsMemory:
    def test_tracemalloc_peak_scopes_to_block(self):
        from repro.obs import TracemallocPeak

        with TracemallocPeak() as traced:
            blob = bytearray(512 * 1024)
        assert traced.peak_bytes >= 512 * 1024
        del blob

    def test_tracemalloc_peak_nests(self):
        from repro.obs import TracemallocPeak

        with TracemallocPeak() as outer:
            with TracemallocPeak() as inner:
                blob = bytearray(256 * 1024)
            del blob
        assert inner.peak_bytes >= 256 * 1024
        assert outer.peak_bytes >= inner.peak_bytes
        import tracemalloc

        assert not tracemalloc.is_tracing()

    def test_process_peak_rss_is_positive(self):
        from repro.obs import process_peak_rss_bytes

        rss = process_peak_rss_bytes()
        assert rss is not None and rss > 1024 * 1024

    def test_record_memory_gauges_sets_process_gauges(self):
        from repro.obs import (
            PEAK_RSS_GAUGE,
            TRACEMALLOC_PEAK_GAUGE,
            record_memory_gauges,
            recording,
        )

        with recording() as recorder:
            readings = record_memory_gauges(
                recorder, tracemalloc_peak=4096
            )
            assert recorder.registry.get(PEAK_RSS_GAUGE).value > 0
            assert recorder.registry.get(
                TRACEMALLOC_PEAK_GAUGE
            ).value == 4096.0
        assert readings[TRACEMALLOC_PEAK_GAUGE] == 4096

    def test_format_bytes(self):
        from repro.obs import format_bytes

        assert format_bytes(None) == "-"
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024 ** 2) == "3.0 MiB"
        assert format_bytes(5 * 1024 ** 3) == "5.0 GiB"


class TestSmokeIntegration:
    def test_real_smoke_case_end_to_end(self, tmp_path):
        outcome = run_suite(
            suite="smoke", names=["engine.karp[backend=numpy,n=32]"],
            repeats=1, warmup=0, collect_spans=True,
        )
        (result,) = outcome.report.results
        assert result.wall.min > 0
        assert result.cpu.min >= 0
        assert result.peak_tracemalloc_bytes > 0
        assert outcome.spans
        path = write_bench_report(tmp_path / "smoke.json", outcome.report)
        assert validate_bench_file(path) == 1
