"""Shared fixtures for the test-suite.

Most tests build tiny hand-checkable systems; these fixtures provide the
recurring ones.  Hand-built executions (explicit start times and delays)
come from :mod:`repro.model.builder`, which is itself under test in
``test_model_builder.py``.
"""

from __future__ import annotations

import pytest

from repro.delays.bounds import BoundedDelay
from repro.delays.system import System
from repro.graphs.topology import Topology, line, ring
from repro.model.builder import build_history as _lib_build_history
from repro.model.builder import two_processor_execution
from repro.model.execution import Execution
from repro.workloads.scenarios import bounded_uniform


def build_history(me, start, sends, receives):
    """Backwards-compatible alias used throughout the test-suite."""
    return _lib_build_history(me, start, sends, receives)


def make_two_node_execution(
    s_p: float,
    s_q: float,
    delays_pq,
    delays_qp,
    send_clocks_p=None,
    send_clocks_q=None,
) -> Execution:
    """Two-processor execution with known ground truth (see builder)."""
    return two_processor_execution(
        s_p, s_q, delays_pq, delays_qp, send_clocks_p, send_clocks_q
    )


@pytest.fixture
def two_node_topology() -> Topology:
    return line(2)


@pytest.fixture
def two_node_symmetric() -> Execution:
    """p and q, delays exactly 2.0 each way, starts 5.0 and 8.0."""
    return make_two_node_execution(
        s_p=5.0, s_q=8.0, delays_pq=[2.0], delays_qp=[2.0]
    )


@pytest.fixture
def two_node_system(two_node_topology) -> System:
    return System.uniform(two_node_topology, BoundedDelay.symmetric(1.0, 3.0))


@pytest.fixture
def ring5_scenario():
    return bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=42)


@pytest.fixture
def ring5_execution(ring5_scenario):
    return ring5_scenario.run()
