"""Property tests: the monitors are silent on honest runs and loud on
corrupted ones.

Two sides of the same coin.  Soundness of the *monitors*: across ~30
randomized local systems (topology x delay model x seed), every theorem
check passes on the pipeline's own output -- a false positive here means
either the pipeline or a monitor is wrong, and both are bugs.
Sensitivity: deliberately corrupting one estimated delay (the Lemma 6.1
value the receiver computes) by more than the admissible slack must be
reported, otherwise the monitors are decorative.
"""

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import complete, line, ring
from repro.obs import recording
from repro.obs.monitor import MonitorSuite
from repro.obs.timeline import replay_online
from repro.workloads.scenarios import bounded_uniform, heterogeneous


def _scenarios():
    cases = []
    for seed in range(5):
        cases.append((
            f"bounded-ring5-s{seed}",
            bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed),
        ))
        cases.append((
            f"bounded-line4-s{seed}",
            bounded_uniform(line(4), lb=0.5, ub=2.0, seed=seed),
        ))
        cases.append((
            f"bounded-complete4-s{seed}",
            bounded_uniform(complete(4), lb=1.0, ub=4.0, seed=seed),
        ))
        cases.append((
            f"hetero-ring4-s{seed}",
            heterogeneous(ring(4), seed=seed),
        ))
        cases.append((
            f"hetero-complete4-s{seed}",
            heterogeneous(complete(4), seed=seed),
        ))
        cases.append((
            f"hetero-line5-s{seed}",
            heterogeneous(line(5), seed=seed),
        ))
    return cases


CASES = _scenarios()


@pytest.mark.parametrize(
    "scenario", [c[1] for c in CASES], ids=[c[0] for c in CASES]
)
def test_honest_runs_have_zero_violations(scenario):
    alpha = scenario.run()
    result = ClockSynchronizer(scenario.system).from_execution(alpha)
    suite = MonitorSuite()
    suite.check_final(scenario.system, result, alpha)
    assert suite.ok, [v.message for v in suite.violations]


@pytest.mark.parametrize("seed", range(4))
def test_honest_streaming_replay_has_zero_violations(seed):
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
    alpha = scenario.run()
    with recording() as recorder:
        suite = MonitorSuite(execution=alpha)
        recorder.add_observer(suite)
        replay = replay_online(scenario.system, alpha)
    assert suite.checks > 0
    assert replay.inconsistent_refreshes == 0
    assert suite.ok, [v.message for v in suite.violations]


@pytest.mark.parametrize("seed", range(5))
def test_corrupted_estimate_is_reported(seed):
    """True-positive: a corrupted d~ beyond the slack always trips a
    monitor (soundness, precision bound, or closure consistency)."""
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
    alpha = scenario.run()
    with recording() as recorder:
        suite = MonitorSuite(execution=alpha)
        recorder.add_observer(suite)
        replay_online(
            scenario.system, alpha, corrupt_at=10, corrupt_delta=-1.5
        )
    assert not suite.ok, "corruption went unreported"


def test_corruption_within_slack_may_pass_but_never_crashes():
    """A tiny corruption is indistinguishable from a faster message; the
    monitors must stay structured (no exceptions) either way."""
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=0)
    alpha = scenario.run()
    with recording() as recorder:
        suite = MonitorSuite(execution=alpha)
        recorder.add_observer(suite)
        replay_online(
            scenario.system, alpha, corrupt_at=10, corrupt_delta=-1e-9
        )
    assert suite.checks > 0  # ran to completion, violations optional
