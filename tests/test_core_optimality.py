"""Unit tests for optimality certificates (repro.core.optimality)."""

import dataclasses

import pytest

from repro.core.optimality import (
    CertificateError,
    beats_or_ties,
    cycle_mean_under,
    verify_certificate,
)
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform, heterogeneous


@pytest.fixture
def result():
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=6)
    return ClockSynchronizer(scenario.system).from_execution(scenario.run())


class TestCycleMeanUnder:
    def test_hand_computed(self):
        ms = {(0, 1): 2.0, (1, 0): 4.0}
        assert cycle_mean_under(ms, [0, 1]) == pytest.approx(3.0)

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            cycle_mean_under({}, [])


class TestVerifyCertificate:
    def test_valid_result_passes(self, result):
        cert = verify_certificate(result)
        assert cert.gap < 1e-6
        assert cert.claimed_precision == pytest.approx(result.precision)

    def test_tampered_precision_detected(self, result):
        cheat_component = dataclasses.replace(
            result.components[0], precision=result.precision / 2
        )
        cheat = dataclasses.replace(result, components=(cheat_component,))
        with pytest.raises(CertificateError):
            verify_certificate(cheat)

    def test_tampered_corrections_detected(self, result):
        bad_corrections = dict(result.corrections)
        some = next(iter(bad_corrections))
        bad_corrections[some] += 10 * max(1.0, result.precision)
        cheat = dataclasses.replace(result, corrections=bad_corrections)
        with pytest.raises(CertificateError):
            verify_certificate(cheat)

    def test_missing_cycle_detected(self, result):
        no_cycle = dataclasses.replace(
            result.components[0], critical_cycle=None
        )
        cheat = dataclasses.replace(result, components=(no_cycle,))
        with pytest.raises(CertificateError, match="witness"):
            verify_certificate(cheat)

    def test_heterogeneous_results_certify(self):
        for seed in range(3):
            scenario = heterogeneous(ring(5), seed=seed)
            result = ClockSynchronizer(scenario.system).from_execution(
                scenario.run()
            )
            verify_certificate(result)


class TestBeatsOrTies:
    def test_beats_perturbed_corrections(self, result):
        worse = {
            p: x + (0.5 if i % 2 else -0.5)
            for i, (p, x) in enumerate(result.corrections.items())
        }
        assert beats_or_ties(result, worse)

    def test_ties_itself(self, result):
        assert beats_or_ties(result, result.corrections)

    def test_ties_translated_corrections(self, result):
        translated = {p: x + 5.0 for p, x in result.corrections.items()}
        assert beats_or_ties(result, translated)
