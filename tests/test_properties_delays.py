"""Property-based tests for the delay-model formulas (hypothesis).

The paper's local-shift formulas (Lemmas 6.2/6.5, Theorem 5.6) are
verified against an independent implementation path: bisection search
over ``DelayAssumption.admits``.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro._types import INF
from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay, lower_bounds_only, no_bounds
from repro.delays.composite import Composite
from repro.experiments.e2_local_shifts import search_mls

delays = st.lists(
    st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


def timing(fwd, rev):
    return PairTiming(
        forward=DirectionStats.of(list(fwd)),
        reverse=DirectionStats.of(list(rev)),
    )


def check_formula_vs_search(assumption, fwd, rev, tol=1e-6):
    formula = assumption.mls_bound(timing(fwd, rev))
    searched = search_mls(assumption, fwd, rev)
    if formula == INF or searched == INF:
        assert formula == searched
    else:
        assert abs(formula - searched) < tol


class TestBoundedFormula:
    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_lemma_62(self, fwd, rev):
        check_formula_vs_search(BoundedDelay.symmetric(1.0, 3.0), fwd, rev)

    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_lower_only(self, fwd, rev):
        check_formula_vs_search(lower_bounds_only(1.0), fwd, rev)

    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_no_bounds_corollary_64(self, fwd, rev):
        assumption = no_bounds()
        check_formula_vs_search(assumption, fwd, rev)
        # Corollary 6.4 explicitly: mls = dmin(p, q).
        assert assumption.mls_bound(timing(fwd, rev)) == min(fwd)


class TestBiasFormula:
    @given(
        st.floats(min_value=5.0, max_value=15.0, allow_nan=False),
        st.lists(
            st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
        st.lists(
            st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_lemma_65(self, base, jit_fwd, jit_rev):
        fwd = [base + j for j in jit_fwd]
        rev = [base + j for j in jit_rev]
        assumption = RoundTripBias(0.8)
        assume(assumption.admits(fwd, rev))
        check_formula_vs_search(assumption, fwd, rev)


class TestCompositeFormula:
    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_theorem_56_min(self, fwd, rev):
        a = BoundedDelay.symmetric(1.0, 3.0)
        b = RoundTripBias(2.0)
        composite = Composite.of(a, b)
        assume(composite.admits(fwd, rev))
        t = timing(fwd, rev)
        assert composite.mls_bound(t) == min(
            a.mls_bound(t), b.mls_bound(t)
        )
        check_formula_vs_search(composite, fwd, rev)


class TestTranslationEquivariance:
    @given(
        delays,
        delays,
        st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_corollary_63(self, fwd, rev, offset):
        """Feeding translated delays translates the mls by the same amount
        in the forward direction and by the negation in reverse -- the
        fact that makes estimated delays sufficient (Lemma 6.1)."""
        assumption = lower_bounds_only(1.0)
        plain = assumption.mls_bound(timing(fwd, rev))
        translated = assumption.mls_bound(
            timing([d + offset for d in fwd], [d - offset for d in rev])
        )
        assert abs(translated - (plain + offset)) < 1e-9


#: Possibly-empty sample lists: what fault-degraded views actually
#: deliver (a crashed or loss-starved edge contributes zero samples).
sparse_delays = st.lists(
    st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    min_size=0,
    max_size=4,
)

ASSUMPTIONS = [
    BoundedDelay.symmetric(1.0, 3.0),
    lower_bounds_only(1.0),
    no_bounds(),
    RoundTripBias(0.5),
    Composite.of(BoundedDelay.symmetric(1.0, 3.0), RoundTripBias(0.5)),
]


class TestDegenerateViews:
    """Section 6 formulas over empty/degenerate sample sets (ISSUE 5).

    With zero samples the paper's convention is ``d~min = +inf`` /
    ``d~max = -inf`` (Section 6.1) and every formula must degrade to the
    unconstrained ``inf`` sentinel -- never raise, never produce NaN.
    Fewer samples may only *loosen* the bound (Lemma 6.2 soundness:
    degradation is conservative).
    """

    def test_zero_samples_is_the_unconstrained_sentinel(self):
        empty = PairTiming(
            forward=DirectionStats(), reverse=DirectionStats()
        )
        for assumption in ASSUMPTIONS:
            assert assumption.mls_pair(empty) == (INF, INF)

    @given(sparse_delays, sparse_delays, st.sampled_from(range(len(ASSUMPTIONS))))
    @settings(max_examples=100, deadline=None)
    def test_sparse_samples_never_raise_or_nan(self, fwd, rev, idx):
        assumption = ASSUMPTIONS[idx]
        mls_pq, mls_qp = assumption.mls_pair(timing(fwd, rev))
        assert mls_pq == mls_pq and mls_qp == mls_qp  # not NaN
        # Soundness shape: a finite answer admits a nonnegative
        # round-trip budget -- but only when the samples are actually
        # admissible under the assumption (arbitrary [1,3] draws can
        # violate a round-trip-bias bound, legitimately driving the
        # 2-cycle negative; that is exactly what the consistency
        # monitor flags).
        bias_free = idx < 3  # bounded / lower-only / no-bounds
        if bias_free and mls_pq != INF and mls_qp != INF:
            assert mls_pq + mls_qp >= -1e-9

    @given(sparse_delays, sparse_delays, delays)
    @settings(max_examples=100, deadline=None)
    def test_dropping_samples_only_loosens(self, fwd, rev, extra):
        """Removing observations may only increase (loosen) the bound --
        the conservative-degradation direction of Lemma 6.2."""
        for assumption in ASSUMPTIONS:
            with_extra = assumption.mls_bound(timing(fwd + extra, rev))
            without = assumption.mls_bound(timing(fwd, rev))
            assert without >= with_extra - 1e-9

    def test_empty_stats_maps_degrade_per_edge(self, two_node_system):
        mls = two_node_system.mls_from_stats({})
        assert set(mls) == {(0, 1), (1, 0)}
        assert all(value == INF for value in mls.values())
        assert two_node_system.mls_from_delays({}) == mls

    def test_one_sided_samples_still_constrain_both(self, two_node_system):
        """One direction's samples bound the other through the upper
        bound (Lemma 6.2's cross terms) -- partial views are useful,
        not just tolerated."""
        mls = two_node_system.mls_from_delays({(0, 1): [2.0]})
        assert mls[(0, 1)] != INF
        assert mls[(1, 0)] != INF
