"""Property-based tests for the delay-model formulas (hypothesis).

The paper's local-shift formulas (Lemmas 6.2/6.5, Theorem 5.6) are
verified against an independent implementation path: bisection search
over ``DelayAssumption.admits``.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro._types import INF
from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay, lower_bounds_only, no_bounds
from repro.delays.composite import Composite
from repro.experiments.e2_local_shifts import search_mls

delays = st.lists(
    st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


def timing(fwd, rev):
    return PairTiming(
        forward=DirectionStats.of(list(fwd)),
        reverse=DirectionStats.of(list(rev)),
    )


def check_formula_vs_search(assumption, fwd, rev, tol=1e-6):
    formula = assumption.mls_bound(timing(fwd, rev))
    searched = search_mls(assumption, fwd, rev)
    if formula == INF or searched == INF:
        assert formula == searched
    else:
        assert abs(formula - searched) < tol


class TestBoundedFormula:
    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_lemma_62(self, fwd, rev):
        check_formula_vs_search(BoundedDelay.symmetric(1.0, 3.0), fwd, rev)

    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_lower_only(self, fwd, rev):
        check_formula_vs_search(lower_bounds_only(1.0), fwd, rev)

    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_no_bounds_corollary_64(self, fwd, rev):
        assumption = no_bounds()
        check_formula_vs_search(assumption, fwd, rev)
        # Corollary 6.4 explicitly: mls = dmin(p, q).
        assert assumption.mls_bound(timing(fwd, rev)) == min(fwd)


class TestBiasFormula:
    @given(
        st.floats(min_value=5.0, max_value=15.0, allow_nan=False),
        st.lists(
            st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
        st.lists(
            st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_lemma_65(self, base, jit_fwd, jit_rev):
        fwd = [base + j for j in jit_fwd]
        rev = [base + j for j in jit_rev]
        assumption = RoundTripBias(0.8)
        assume(assumption.admits(fwd, rev))
        check_formula_vs_search(assumption, fwd, rev)


class TestCompositeFormula:
    @given(delays, delays)
    @settings(max_examples=50, deadline=None)
    def test_theorem_56_min(self, fwd, rev):
        a = BoundedDelay.symmetric(1.0, 3.0)
        b = RoundTripBias(2.0)
        composite = Composite.of(a, b)
        assume(composite.admits(fwd, rev))
        t = timing(fwd, rev)
        assert composite.mls_bound(t) == min(
            a.mls_bound(t), b.mls_bound(t)
        )
        check_formula_vs_search(composite, fwd, rev)


class TestTranslationEquivariance:
    @given(
        delays,
        delays,
        st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_corollary_63(self, fwd, rev, offset):
        """Feeding translated delays translates the mls by the same amount
        in the forward direction and by the negation in reverse -- the
        fact that makes estimated delays sufficient (Lemma 6.1)."""
        assumption = lower_bounds_only(1.0)
        plain = assumption.mls_bound(timing(fwd, rev))
        translated = assumption.mls_bound(
            timing([d + offset for d in fwd], [d - offset for d in rev])
        )
        assert abs(translated - (plain + offset)) < 1e-9
