"""Property-based soundness tests for violation diagnosis.

The critical safety property: the diagnosis never convicts an innocent
link.  Whatever delays the adversary injects, every convicted link must
actually violate its declared assumption (checked against ground truth),
and on fully admissible executions the screen must stay silent.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.diagnosis import diagnose
from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import Constant, UniformDelay
from repro.delays.system import System
from repro.graphs.topology import ring
from repro.sim.network import NetworkSimulator, SimulationConfig
from repro.sim.protocols import probe_automata, probe_schedule

LB, UB = 1.0, 3.0


def run_with_delays(link_delays, seed=0):
    """Simulate a ring-4 where each link runs at a chosen constant delay
    (possibly violating the declared [1, 3] bounds)."""
    topo = ring(4)
    system = System.uniform(topo, BoundedDelay.symmetric(LB, UB))
    samplers = {}
    for link, delay in zip(topo.links, link_delays):
        samplers[link] = (
            Constant(delay) if delay is not None else UniformDelay(LB, UB)
        )
    sim = NetworkSimulator(
        system, samplers, {p: 0.4 * p for p in topo.nodes}, seed=seed,
        config=SimulationConfig(validate=False),
    )
    alpha = sim.run(dict(probe_automata(topo, probe_schedule(2, 5.0, 2.0))))
    return system, alpha


delay_choices = st.one_of(
    st.none(),  # honest link (uniform within bounds)
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),  # constant
)


class TestDiagnosisSoundness:
    @given(st.tuples(delay_choices, delay_choices, delay_choices, delay_choices))
    @settings(max_examples=40, deadline=None)
    def test_convictions_always_correct(self, link_delays):
        """Every convicted link truly violates; never an innocent one."""
        system, alpha = run_with_delays(link_delays)
        diagnosis = diagnose(system, alpha.views())
        for link in diagnosis.convicted:
            fwd, rev = system.link_delays(alpha, *link)
            assert not system.assumptions[link].admits(fwd, rev), link

    @given(
        st.tuples(
            *(
                st.floats(min_value=LB, max_value=UB, allow_nan=False)
                for _ in range(4)
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_admissible_executions_never_flagged(self, link_delays):
        """Constant delays inside the bounds: no false alarms, ever."""
        system, alpha = run_with_delays(link_delays)
        assert system.is_admissible(alpha)
        diagnosis = diagnose(system, alpha.views())
        assert diagnosis.consistent

    @given(st.tuples(delay_choices, delay_choices, delay_choices, delay_choices))
    @settings(max_examples=25, deadline=None)
    def test_repair_always_consistent(self, link_delays):
        """After excluding the diagnosis' links, no negative cycles remain
        (the repaired synchronization never raises)."""
        from repro.analysis.diagnosis import synchronize_excluding

        system, alpha = run_with_delays(link_delays)
        diagnosis = diagnose(system, alpha.views())
        result = synchronize_excluding(
            system, alpha.views(), diagnosis.excluded_links
        )
        assert result.corrections  # computed without an exception
