"""Unit tests for the evaluation harness (repro.analysis)."""

import math
import random

import pytest

from repro._types import INF
from repro.analysis.adversary import (
    AdversaryError,
    adversarial_execution,
    extremal_shift_vector,
    random_admissible_shift_vector,
    worst_case_spread,
)
from repro.analysis.ground_truth import (
    locally_admissible_interval,
    shift_vector_is_admissible,
    true_global_shifts,
)
from repro.analysis.metrics import geometric_mean, ratio, summarize
from repro.analysis.reporting import Table, fmt
from repro.core.precision import realized_spread
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay, no_bounds
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.model.execution import shift_execution
from repro.workloads.scenarios import bounded_uniform

from conftest import make_two_node_execution


class TestGroundTruth:
    def test_true_global_shifts_two_nodes(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [2.0])
        ms = true_global_shifts(system, alpha)
        assert ms[(0, 1)] == pytest.approx(1.0)
        assert ms[(1, 0)] == pytest.approx(1.0)

    def test_locally_admissible_interval(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [1.5], [2.5])
        lo, hi = locally_admissible_interval(system, alpha, 0, 1)
        # hi = mls(0,1) = min(3-2.5, 1.5-1) = 0.5
        # lo = -mls(1,0) = -min(3-1.5, 2.5-1) = -1.5
        assert hi == pytest.approx(0.5)
        assert lo == pytest.approx(-1.5)

    def test_shift_vector_admissibility_predicate(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [1.5], [2.5])
        assert shift_vector_is_admissible(system, alpha, {0: 0.0, 1: 0.4})
        assert not shift_vector_is_admissible(system, alpha, {0: 0.0, 1: 0.6})
        assert shift_vector_is_admissible(system, alpha, {0: 0.0, 1: -1.4})
        assert not shift_vector_is_admissible(system, alpha, {0: 0.0, 1: -1.6})

    def test_predicate_matches_real_shift(self):
        """The Lemma 5.2 predicate agrees with actually shifting."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [1.5], [2.5])
        for s in [-2.0, -1.0, 0.0, 0.3, 0.5, 1.0]:
            shifts = {0: 0.0, 1: s}
            predicted = shift_vector_is_admissible(system, alpha, shifts)
            actual = system.is_admissible(shift_execution(alpha, shifts))
            assert predicted == actual, s


class TestAdversary:
    @pytest.fixture
    def setup(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=13)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        return scenario.system, alpha, result

    def test_extremal_execution_is_admissible_and_equivalent(self, setup):
        system, alpha, _ = setup
        from repro.model.execution import executions_equivalent

        shifted = adversarial_execution(system, alpha, anchor=0, gamma=1.001)
        assert executions_equivalent(alpha, shifted)
        assert system.is_admissible(shifted)

    def test_extremal_shift_realizes_ms(self, setup):
        system, alpha, _ = setup
        gamma = 1.0001
        shifts = extremal_shift_vector(system, alpha, anchor=0, gamma=gamma)
        ms = true_global_shifts(system, alpha)
        for q in system.processors:
            assert shifts[q] == pytest.approx(ms[(0, q)] / gamma)

    def test_worst_case_spread_brackets_precision(self, setup):
        system, alpha, result = setup
        worst = worst_case_spread(
            system, alpha, result.corrections, gamma=1.0001
        )
        assert worst <= result.precision + 1e-6
        assert worst >= result.precision * 0.999 - 1e-6

    def test_gamma_must_exceed_one(self, setup):
        system, alpha, _ = setup
        with pytest.raises(AdversaryError):
            extremal_shift_vector(system, alpha, anchor=0, gamma=1.0)

    def test_unreachable_anchor_rejected(self):
        system = System.uniform(line(2), no_bounds())
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        # Traffic only 0 -> 1: mls(1, 0) is infinite, so 0 is unreachable
        # from anchor 1 in the finite-shift graph.
        with pytest.raises(AdversaryError, match="unreachable"):
            extremal_shift_vector(system, alpha, anchor=1)

    def test_random_shifts_admissible(self, setup):
        system, alpha, _ = setup
        rng = random.Random(3)
        for _ in range(25):
            shifts = random_admissible_shift_vector(system, alpha, rng)
            assert shift_vector_is_admissible(system, alpha, shifts)

    def test_random_shifts_never_beat_rho_bar(self, setup):
        """Every admissible re-timing keeps the spread within precision."""
        system, alpha, result = setup
        rng = random.Random(4)
        for _ in range(25):
            shifts = random_admissible_shift_vector(system, alpha, rng)
            shifted = shift_execution(alpha, shifts)
            spread = realized_spread(
                shifted.start_times(), result.corrections
            )
            assert spread <= result.precision + 1e-6


class TestMetrics:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.std == pytest.approx(1.2909944, rel=1e-6)

    def test_summarize_single(self):
        s = summarize([7.0])
        assert s.std == 0.0 and s.median == 7.0

    def test_summarize_with_inf(self):
        s = summarize([1.0, INF])
        assert math.isinf(s.mean) and math.isinf(s.maximum)
        assert s.minimum == 1.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ratio_conventions(self):
        assert ratio(2.0, 4.0) == 0.5
        assert ratio(0.0, 0.0) == 1.0
        assert ratio(1.0, 0.0) == INF
        assert ratio(1.0, INF) == 0.0
        assert ratio(INF, INF) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestReporting:
    def test_fmt(self):
        assert fmt(INF) == "inf"
        assert fmt(-INF) == "-inf"
        assert fmt(float("nan")) == "nan"
        assert fmt(0.0) == "0"
        assert fmt(True) == "yes"
        assert fmt(0.123456) == "0.1235"
        assert fmt("text") == "text"

    def test_table_roundtrip(self):
        t = Table(title="Demo", headers=["a", "b"])
        t.add_row(1, 2.5)
        t.add_note("hello")
        text = t.format()
        assert "Demo" in text and "2.5" in text and "note: hello" in text

    def test_row_arity_checked(self):
        t = Table(title="Demo", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)
