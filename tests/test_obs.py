"""Tests for the observability core: spans, metrics, recorder lifecycle."""

import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP,
    Recorder,
    Tracer,
    get_recorder,
    merge_all,
    recording,
    set_recorder,
)
from repro.obs.recorder import _NULL_SPAN


class TestTracer:
    def test_single_span_times_and_records(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            assert tracer.current() is span
        assert tracer.current() is None
        (finished,) = tracer.finished()
        assert finished.name == "work"
        assert finished.attributes == {"size": 3}
        assert finished.end is not None
        assert finished.duration >= 0.0

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("inner2") as inner2:
                assert inner2.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [s.name for s in tracer.finished()]
        assert names == ["inner", "inner2", "outer"]  # completion order

    def test_attribute_propagation_via_set_attribute(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set_attribute("rows", 64)
        assert tracer.finished()[0].attributes["rows"] == 64

    def test_exception_records_span_with_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker spans must not claim the main thread's span as parent.
        assert all(parent is None for parent in seen.values())
        assert len(tracer.finished()) == 5

    def test_reset_drops_finished(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished() == []


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_negative(self):
        c = Counter("c")
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("g")
        g.set(4.0)
        g.set(2.0)
        g.add(1.0)
        assert g.value == 3.0

    def test_concurrent_counter_adds_do_not_lose_updates(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.add()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 4.5):
            h.observe(value)
        # le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=4: {4.0}; +Inf: {4.5}
        assert h.bucket_counts == (2, 2, 1, 1)
        assert h.cumulative_counts() == (2, 4, 5, 6)
        assert h.count == 6
        assert h.sum == pytest.approx(13.5)

    def test_boundaries_must_be_ascending_finite_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0, float("inf")))

    def test_default_buckets_used_when_unspecified(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        assert h.boundaries == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_boundary_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", boundaries=(1.0, 3.0))

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["counts"] == [1, 0]

    def test_merge_adds_counters_histograms_takes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").add(1)
        b.counter("c").add(2)
        b.gauge("g").set(7.0)
        a.histogram("h", boundaries=(1.0,)).observe(0.5)
        b.histogram("h", boundaries=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.counter("c").value == 3.0
        assert a.gauge("g").value == 7.0
        assert a.histogram("h").bucket_counts == (1, 1)
        assert a.histogram("h").count == 2

    def test_merge_self_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge(registry)

    def test_merge_all(self):
        registries = []
        for _ in range(3):
            r = MetricsRegistry()
            r.counter("c").add(1)
            registries.append(r)
        assert merge_all(registries).counter("c").value == 3.0

    def test_reset_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("engine.a").add(1)
        registry.counter("sim.b").add(1)
        registry.reset("engine.")
        assert "engine.a" not in registry
        assert "sim.b" in registry


class TestNoopRecorder:
    def test_default_recorder_is_noop_and_disabled(self):
        assert get_recorder() is NOOP
        assert NOOP.enabled is False

    def test_noop_span_is_reusable_null_context(self):
        span = NOOP.span("anything", k=1)
        assert span is _NULL_SPAN
        with span as s:
            s.set_attribute("k", 2)  # silently ignored

    def test_noop_instruments_are_inert_singletons(self):
        c = NOOP.counter("c")
        assert c is NOOP.counter("other")
        c.add(5)
        assert c.value == 0.0
        NOOP.gauge("g").set(3)
        NOOP.histogram("h").observe(1.0)
        NOOP.count("x")
        NOOP.set_gauge("y", 1.0)
        NOOP.observe("z", 1.0)
        # nothing was recorded anywhere
        assert NOOP.registry is None and NOOP.tracer is None


class TestRecorderLifecycle:
    def test_recording_installs_and_restores(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
            assert rec.enabled
            rec.count("x")
            with rec.span("s"):
                pass
        assert get_recorder() is before
        assert rec.registry.counter("x").value == 1.0
        assert len(rec.tracer.finished()) == 1

    def test_recording_restores_on_exception(self):
        before = get_recorder()
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert get_recorder() is before

    def test_set_recorder_none_restores_noop(self):
        rec = Recorder()
        previous = set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            set_recorder(previous)
        set_recorder(None) if get_recorder() is not NOOP else None
        assert get_recorder() is NOOP

    def test_recorder_shortcuts_hit_registry(self):
        rec = Recorder()
        rec.count("c", 2)
        rec.set_gauge("g", 4.5)
        rec.observe("h", 0.25)
        assert rec.registry.counter("c").value == 2.0
        assert rec.registry.gauge("g").value == 4.5
        assert rec.registry.histogram("h").count == 1


class TestQuantile:
    """Bucket-interpolated quantiles (repro.obs.report.quantile)."""

    def _histogram(self, values, boundaries=(1.0, 2.0, 4.0)):
        h = Histogram("h", boundaries=boundaries)
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_is_nan(self):
        import math

        from repro.obs import quantile

        assert math.isnan(quantile(self._histogram([]), 0.5))

    def test_out_of_range_q_rejected(self):
        from repro.obs import quantile

        with pytest.raises(ValueError, match="quantile"):
            quantile(self._histogram([1.0]), 1.5)

    def test_median_interpolates_within_bucket(self):
        from repro.obs import quantile

        # 4 observations all in bucket (1, 2]: the median lands at the
        # midpoint of the bucket under linear interpolation.
        h = self._histogram([1.5, 1.5, 1.5, 1.5])
        assert quantile(h, 0.5) == pytest.approx(1.5)

    def test_first_bucket_lower_edge_is_zero(self):
        from repro.obs import quantile

        h = self._histogram([0.5, 0.5])
        assert 0.0 < quantile(h, 0.5) <= 1.0

    def test_overflow_clamps_to_last_boundary(self):
        from repro.obs import quantile

        h = self._histogram([100.0, 200.0])
        assert quantile(h, 0.99) == 4.0

    def test_quantiles_are_monotone_in_q(self):
        from repro.obs import quantile

        h = self._histogram([0.5, 1.5, 1.7, 2.5, 3.0, 3.9, 50.0])
        values = [quantile(h, q) for q in (0.1, 0.25, 0.5, 0.75, 0.95)]
        assert values == sorted(values)

    def test_single_bucket_histogram_interpolates_from_zero(self):
        from repro.obs import quantile

        # One finite bucket (0, 2]: quantiles interpolate linearly
        # across it and can never exceed its (only) boundary.
        h = self._histogram([1.0, 1.0, 1.0, 1.0], boundaries=(2.0,))
        assert quantile(h, 0.5) == pytest.approx(1.0)
        assert quantile(h, 1.0) == pytest.approx(2.0)

    def test_all_mass_in_overflow_bucket_clamps(self):
        from repro.obs import quantile

        # Every observation beyond the last finite boundary: any
        # mass-seeking quantile is clamped to that boundary (Prometheus
        # semantics -- the histogram cannot resolve the tail).  q=0 asks
        # for zero observations and resolves to the first (empty)
        # bucket's edge instead.
        h = self._histogram([10.0, 20.0, 30.0])
        for q in (0.2, 0.5, 0.99, 1.0):
            assert quantile(h, q) == 4.0
        assert quantile(h, 0.0) == 1.0

    def test_empty_interior_bucket_returns_its_upper_edge(self):
        from repro.obs import quantile

        # Mass in (0,1] and (2,4] with nothing in between: quantiles
        # landing exactly on the empty bucket resolve to its upper edge
        # rather than dividing by a zero count.
        h = self._histogram([0.5, 0.5, 3.0, 3.0])
        assert quantile(h, 0.5) == pytest.approx(1.0)

    def test_q_edges_on_populated_histogram(self):
        from repro.obs import quantile

        h = self._histogram([0.5, 1.5, 3.0])
        assert quantile(h, 0.0) <= quantile(h, 1.0)
        assert quantile(h, 1.0) == 4.0

    def test_quantiles_table_lists_only_histograms(self):
        from repro.obs import histogram_quantiles_table

        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.histogram("h", boundaries=(1.0, 2.0)).observe(1.5)
        rendered = histogram_quantiles_table(registry).format()
        assert "h" in rendered and "p95" in rendered
        assert "\nc " not in rendered


class TestTelemetryHooks:
    """Recorder observer fan-out and the simulated clock."""

    def test_emit_fans_out_to_observers(self):
        seen = []

        class Probe:
            def on_telemetry(self, kind, data):
                seen.append((kind, data))

        rec = Recorder()
        rec.add_observer(Probe())
        rec.add_observer(Probe())
        rec.emit("x.y", value=3)
        assert seen == [("x.y", {"value": 3}), ("x.y", {"value": 3})]

    def test_observer_without_hook_rejected(self):
        rec = Recorder()
        with pytest.raises(TypeError, match="on_telemetry"):
            rec.add_observer(object())

    def test_remove_observer(self):
        seen = []

        class Probe:
            def on_telemetry(self, kind, data):
                seen.append(kind)

        rec = Recorder()
        probe = Probe()
        rec.add_observer(probe)
        rec.remove_observer(probe)
        rec.remove_observer(probe)  # absent -> no-op
        rec.emit("gone")
        assert seen == []

    def test_noop_recorder_rejects_observers_but_swallows_emit(self):
        with pytest.raises(RuntimeError, match="no-op recorder"):
            NOOP.add_observer(object())
        NOOP.emit("anything", x=1)  # must not raise
        NOOP.set_sim_time(5.0)
        assert NOOP.sim_time is None

    def test_spans_inherit_sim_time(self):
        rec = Recorder()
        rec.set_sim_time(7.5)
        with rec.span("work"):
            pass
        rec.set_sim_time(None)
        with rec.span("later"):
            pass
        first, second = rec.tracer.finished()
        assert first.attributes["sim_time"] == 7.5
        assert "sim_time" not in second.attributes

    def test_explicit_sim_time_attribute_wins(self):
        rec = Recorder()
        rec.set_sim_time(7.5)
        with rec.span("work", sim_time=1.0):
            pass
        (span,) = rec.tracer.finished()
        assert span.attributes["sim_time"] == 1.0
