"""Unit tests for executions (repro.model.execution)."""

import pytest

from repro.model.events import Message
from repro.model.execution import (
    Execution,
    executions_equivalent,
    shift_execution,
    shift_vector_between,
)
from repro.model.steps import ModelError

from conftest import build_history, make_two_node_execution


class TestConstruction:
    def test_start_times(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        assert alpha.start_time(0) == 5.0
        assert alpha.start_time(1) == 8.0
        assert alpha.start_times() == {0: 5.0, 1: 8.0}

    def test_mismatched_processor_key_rejected(self):
        h = build_history(0, 0.0, [], [])
        with pytest.raises(ModelError):
            Execution({1: h})

    def test_views_match_histories(self):
        alpha = make_two_node_execution(1.0, 2.0, [1.0], [1.0])
        views = alpha.views()
        assert set(views) == {0, 1}
        assert len(views[0]) == len(alpha.history(0))


class TestMessageCorrespondence:
    def test_delays_computed_from_real_times(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0, 3.0], [1.5])
        delays = sorted(r.delay for r in alpha.message_records().values())
        assert delays == pytest.approx([1.5, 2.0, 3.0])

    def test_records_on_edge(self):
        alpha = make_two_node_execution(0.0, 0.0, [2.0, 3.0], [1.5])
        assert len(alpha.records_on_edge(0, 1)) == 2
        assert len(alpha.records_on_edge(1, 0)) == 1
        assert alpha.records_on_edge(0, 0) == []

    def test_received_but_never_sent_rejected(self):
        phantom = Message(sender=1, receiver=0)
        hist0 = build_history(0, 0.0, [], [(5.0, phantom)])
        hist1 = build_history(1, 0.0, [], [])
        with pytest.raises(ModelError, match="never sent"):
            Execution({0: hist0, 1: hist1}).message_records()

    def test_sent_twice_rejected(self):
        msg = Message(sender=0, receiver=1)
        hist0 = build_history(0, 0.0, [(5.0, msg), (6.0, msg)], [])
        hist1 = build_history(1, 0.0, [], [(7.0, msg)])
        with pytest.raises(ModelError, match="twice"):
            Execution({0: hist0, 1: hist1}).message_records()

    def test_sender_field_must_match(self):
        msg = Message(sender=1, receiver=1)  # claims sender 1
        hist0 = build_history(0, 0.0, [(5.0, msg)], [])
        hist1 = build_history(1, 0.0, [], [(7.0, msg)])
        with pytest.raises(ModelError, match="sender"):
            Execution({0: hist0, 1: hist1}).message_records()

    def test_unsent_messages_allowed_in_flight(self):
        """A sent-but-not-received message is fine (still in transit)."""
        msg = Message(sender=0, receiver=1)
        hist0 = build_history(0, 0.0, [(5.0, msg)], [])
        hist1 = build_history(1, 0.0, [], [])
        records = Execution({0: hist0, 1: hist1}).message_records()
        assert records == {}


class TestShifting:
    def test_shift_moves_start_times(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        beta = shift_execution(alpha, {0: 1.0, 1: -2.0})
        assert beta.start_time(0) == 4.0
        assert beta.start_time(1) == 10.0

    def test_shift_changes_delays_by_sp_minus_sq(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [3.0])
        beta = shift_execution(alpha, {0: 1.0, 1: 0.0})
        fwd = [r.delay for r in beta.records_on_edge(0, 1)]
        rev = [r.delay for r in beta.records_on_edge(1, 0)]
        # d' = d + s_p - s_q for p->q messages.
        assert fwd == pytest.approx([3.0])
        assert rev == pytest.approx([2.0])

    def test_shift_preserves_equivalence(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        beta = shift_execution(alpha, {0: 3.0, 1: -1.5})
        assert executions_equivalent(alpha, beta)
        beta.validate()

    def test_missing_processors_shift_zero(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        beta = shift_execution(alpha, {0: 1.0})
        assert beta.start_time(1) == 8.0

    def test_shift_vector_recovery(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        shifts = {0: 2.5, 1: -1.0}
        beta = shift_execution(alpha, shifts)
        recovered = shift_vector_between(alpha, beta)
        assert recovered == pytest.approx(shifts)

    def test_shift_vector_requires_equivalence(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        other = make_two_node_execution(5.0, 8.0, [2.0, 2.5], [2.0])
        with pytest.raises(ModelError):
            shift_vector_between(alpha, other)

    def test_non_equivalent_different_processor_sets(self):
        alpha = make_two_node_execution(5.0, 8.0, [2.0], [2.0])
        solo = Execution({0: alpha.history(0)})
        assert not executions_equivalent(alpha, solo)


class TestValidation:
    def test_validate_full(self, two_node_symmetric):
        two_node_symmetric.validate()

    def test_repr(self, two_node_symmetric):
        text = repr(two_node_symmetric)
        assert "processors=2" in text
        assert "messages=2" in text
