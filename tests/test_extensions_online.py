"""Tests for the online synchronizer (repro.extensions.online)."""

import math

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.delays.system import UnknownLinkError
from repro.extensions.online import OnlineSynchronizer
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform, heterogeneous


@pytest.fixture
def scenario():
    return bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=17)


class TestStreamingEqualsBatch:
    def test_ingest_views_matches_batch(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        count = online.ingest_views(alpha.views())
        assert count == len(alpha.message_records())

        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        streamed = online.result()
        assert streamed.precision == pytest.approx(batch.precision)
        assert streamed.corrections == pytest.approx(batch.corrections)

    def test_message_by_message_matches_batch(self, scenario):
        alpha = scenario.run()
        from repro.core.estimates import estimated_delays

        online = OnlineSynchronizer(scenario.system)
        for edge, delays in estimated_delays(alpha.views()).items():
            for value in delays:
                online.observe(edge[0], edge[1], value)
        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert online.precision() == pytest.approx(batch.precision)

    def test_heterogeneous_system(self):
        scenario = heterogeneous(ring(5), seed=4)
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        online.ingest_views(alpha.views())
        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert online.precision() == pytest.approx(batch.precision)


class TestNumpyIncrementalPath:
    def test_streaming_equals_batch_with_incremental_engine(self):
        """On the numpy backend, interleaved refreshes go through the
        incremental closure repair -- and must still equal batch."""
        scenario = bounded_uniform(ring(16), lb=1.0, ub=3.0, probes=2, seed=3)
        alpha = scenario.run()
        from repro.core.estimates import estimated_delays

        online = OnlineSynchronizer(scenario.system, backend="numpy")
        assert online.synchronizer.backend == "numpy"
        stream = [
            (edge, value)
            for edge, delays in sorted(estimated_delays(alpha.views()).items())
            for value in delays
        ]
        for k, (edge, value) in enumerate(stream):
            online.observe(edge[0], edge[1], value)
            if k % 7 == 0:
                online.result()  # force interleaved incremental refreshes
        streamed = online.result()
        batch = ClockSynchronizer(
            scenario.system, backend="numpy"
        ).from_execution(alpha)
        assert streamed.precision == pytest.approx(batch.precision)
        assert streamed.corrections == pytest.approx(batch.corrections)
        counters = online.synchronizer.engine.stats.counters
        assert counters.get("incremental_update.calls", 0) > 0

    def test_backend_validated_eagerly(self, scenario):
        with pytest.raises(ValueError, match="unknown engine backend"):
            OnlineSynchronizer(scenario.system, backend="cuda")

    def test_method_validated_eagerly(self, scenario):
        with pytest.raises(ValueError, match="cycle-mean method"):
            OnlineSynchronizer(scenario.system, method="fancy")


class TestIncrementalBehaviour:
    def test_precision_monotone_in_observations(self, scenario):
        alpha = scenario.run()
        from repro.core.estimates import estimated_delays

        online = OnlineSynchronizer(scenario.system)
        previous = float("inf")
        stream = [
            (edge, value)
            for edge, delays in sorted(
                estimated_delays(alpha.views()).items(), key=repr
            )
            for value in delays
        ]
        for edge, value in stream:
            online.observe(edge[0], edge[1], value)
            current = online.precision()
            if not math.isinf(previous):
                assert current <= previous + 1e-9
            if not math.isinf(current):
                previous = current

    def test_starts_unbounded(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        assert math.isinf(online.precision())
        assert not online.result().is_fully_synchronized

    def test_caching_and_change_detection(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        assert online.observe(0, 1, 2.0) is True  # new extreme
        first = online.result()
        # An interior observation changes no extreme: cache survives.
        assert online.observe(0, 1, 2.0) is False
        assert online.result() is first
        # A new extreme invalidates.
        assert online.observe(0, 1, 1.5) is True
        assert online.result() is not first

    def test_edge_stats(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        online.observe(0, 1, 2.0)
        online.observe(0, 1, 1.2)
        stats = online.edge_stats(0, 1)
        assert stats.count == 2
        assert stats.min_delay == pytest.approx(1.2)
        assert stats.max_delay == pytest.approx(2.0)
        assert online.edge_stats(1, 0).count == 0

    def test_observe_timestamps(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        online.observe_timestamps(0, 1, send_clock=10.0, receive_clock=12.5)
        assert online.edge_stats(0, 1).min_delay == pytest.approx(2.5)

    def test_unknown_edge_rejected(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        with pytest.raises(UnknownLinkError):
            online.observe(0, 2, 1.0)  # ring-5: 0 and 2 not adjacent

    def test_reset(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        online.ingest_views(alpha.views())
        assert not math.isinf(online.precision())
        online.reset()
        assert online.observation_count == 0
        assert math.isinf(online.precision())
