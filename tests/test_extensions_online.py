"""Tests for the online synchronizer (repro.extensions.online)."""

import math

import pytest

from repro.core.global_estimates import InconsistentViewsError
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.system import UnknownLinkError
from repro.extensions.online import OnlineSynchronizer
from repro.graphs.topology import ring
from repro.workloads.scenarios import bounded_uniform, heterogeneous


@pytest.fixture
def scenario():
    return bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=17)


class TestStreamingEqualsBatch:
    def test_ingest_views_matches_batch(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        count = online.ingest_views(alpha.views())
        assert count == len(alpha.message_records())

        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        streamed = online.result()
        assert streamed.precision == pytest.approx(batch.precision)
        assert streamed.corrections == pytest.approx(batch.corrections)

    def test_message_by_message_matches_batch(self, scenario):
        alpha = scenario.run()
        from repro.core.estimates import estimated_delays

        online = OnlineSynchronizer(scenario.system)
        for edge, delays in estimated_delays(alpha.views()).items():
            for value in delays:
                online.observe(edge[0], edge[1], value)
        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert online.precision() == pytest.approx(batch.precision)

    def test_heterogeneous_system(self):
        scenario = heterogeneous(ring(5), seed=4)
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        online.ingest_views(alpha.views())
        batch = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert online.precision() == pytest.approx(batch.precision)


class TestNumpyIncrementalPath:
    def test_streaming_equals_batch_with_incremental_engine(self):
        """On the numpy backend, interleaved refreshes go through the
        incremental closure repair -- and must still equal batch."""
        scenario = bounded_uniform(ring(16), lb=1.0, ub=3.0, probes=2, seed=3)
        alpha = scenario.run()
        from repro.core.estimates import estimated_delays

        online = OnlineSynchronizer(scenario.system, backend="numpy")
        assert online.synchronizer.backend == "numpy"
        stream = [
            (edge, value)
            for edge, delays in sorted(estimated_delays(alpha.views()).items())
            for value in delays
        ]
        for k, (edge, value) in enumerate(stream):
            online.observe(edge[0], edge[1], value)
            if k % 7 == 0:
                online.result()  # force interleaved incremental refreshes
        streamed = online.result()
        batch = ClockSynchronizer(
            scenario.system, backend="numpy"
        ).from_execution(alpha)
        assert streamed.precision == pytest.approx(batch.precision)
        assert streamed.corrections == pytest.approx(batch.corrections)
        counters = online.synchronizer.engine.stats.counters
        assert counters.get("incremental_update.calls", 0) > 0

    def test_backend_validated_eagerly(self, scenario):
        with pytest.raises(ValueError, match="unknown engine backend"):
            OnlineSynchronizer(scenario.system, backend="cuda")

    def test_method_validated_eagerly(self, scenario):
        with pytest.raises(ValueError, match="cycle-mean method"):
            OnlineSynchronizer(scenario.system, method="fancy")


class TestIncrementalBehaviour:
    def test_precision_monotone_in_observations(self, scenario):
        alpha = scenario.run()
        from repro.core.estimates import estimated_delays

        online = OnlineSynchronizer(scenario.system)
        previous = float("inf")
        stream = [
            (edge, value)
            for edge, delays in sorted(
                estimated_delays(alpha.views()).items(), key=repr
            )
            for value in delays
        ]
        for edge, value in stream:
            online.observe(edge[0], edge[1], value)
            current = online.precision()
            if not math.isinf(previous):
                assert current <= previous + 1e-9
            if not math.isinf(current):
                previous = current

    def test_starts_unbounded(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        assert math.isinf(online.precision())
        assert not online.result().is_fully_synchronized

    def test_caching_and_change_detection(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        assert online.observe(0, 1, 2.0) is True  # new extreme
        first = online.result()
        # An interior observation changes no extreme: cache survives.
        assert online.observe(0, 1, 2.0) is False
        assert online.result() is first
        # A new extreme invalidates.
        assert online.observe(0, 1, 1.5) is True
        assert online.result() is not first

    def test_edge_stats(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        online.observe(0, 1, 2.0)
        online.observe(0, 1, 1.2)
        stats = online.edge_stats(0, 1)
        assert stats.count == 2
        assert stats.min_delay == pytest.approx(1.2)
        assert stats.max_delay == pytest.approx(2.0)
        assert online.edge_stats(1, 0).count == 0

    def test_observe_timestamps(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        online.observe_timestamps(0, 1, send_clock=10.0, receive_clock=12.5)
        assert online.edge_stats(0, 1).min_delay == pytest.approx(2.5)

    def test_unknown_edge_rejected(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        with pytest.raises(UnknownLinkError):
            online.observe(0, 2, 1.0)  # ring-5: 0 and 2 not adjacent

    def test_reset(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        online.ingest_views(alpha.views())
        assert not math.isinf(online.precision())
        online.reset()
        assert online.observation_count == 0
        assert math.isinf(online.precision())


def poison_for(online, sender=0, receiver=1):
    """A forward sample guaranteed to break edge's 2-cycle soundness.

    ``mls~(p,q) + mls~(q,p)`` is translation invariant, so a sample ten
    units below the observed forward minimum drives the de-translated
    2-cycle budget to at most ``-6`` under the [1, 3] bounds -- corrupt
    relative to any honest history, whatever the clock offsets are.
    """
    return online.edge_stats(sender, receiver).min_delay - 10.0


class TestRobustness:
    """Staleness, outlier screening and fallback (ISSUE 5 degradation)."""

    def test_outlier_rejected_without_touching_the_result(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system, reject_outliers=True)
        online.ingest_views(alpha.views())
        baseline = online.result()
        stats_before = online.edge_stats(0, 1)
        assert online.observe(0, 1, poison_for(online)) is False
        assert online.outliers_rejected == 1
        assert online.edge_stats(0, 1) == stats_before
        assert online.result() is baseline  # cache untouched by rejection

    def test_without_screening_poison_is_admitted_and_raises(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system)
        online.ingest_views(alpha.views())
        assert online.observe(0, 1, poison_for(online)) is True
        assert online.outliers_rejected == 0
        with pytest.raises(InconsistentViewsError):
            online.result()

    def test_fallback_serves_last_good_then_recovers(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(scenario.system, fallback=True)
        online.ingest_views(alpha.views())
        good = online.result()
        online.observe(0, 1, poison_for(online))

        assert online.result() is good  # served, not raised
        assert online.in_fallback
        assert online.fallbacks_served == 1
        # The failure is not cached: every later query retries.
        assert online.result() is good
        assert online.fallbacks_served == 2

        # Recovery lever: discard the poisoned direction.
        assert online.drop_edge_stats(0, 1) is True
        recovered = online.result()
        assert not online.in_fallback
        # The reverse direction's samples still bound the dropped edge
        # (Lemma 6.2 cross terms), so precision stays finite.
        assert not math.isinf(recovered.precision)

    def test_fallback_with_no_last_good_still_raises(self, scenario):
        online = OnlineSynchronizer(scenario.system, fallback=True)
        online.observe(0, 1, 2.0)
        online.observe(1, 0, 2.0)
        online.observe(0, 1, -8.0)  # 2-cycle budget -8: inconsistent
        with pytest.raises(InconsistentViewsError):
            online.result()

    def test_edge_staleness_counts_observations_since_last_sample(
        self, scenario
    ):
        online = OnlineSynchronizer(scenario.system)
        for value in (2.0, 1.5, 2.5):
            online.observe(0, 1, value)
        assert online.edge_staleness(0, 1) == 0
        assert online.edge_staleness(1, 0) == 3  # never seen: maximally stale

    def test_stale_edges_covers_silent_links(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        for value in (2.0, 1.5, 2.5):
            online.observe(0, 1, value)
        stale = online.stale_edges(3)
        # Every directed edge of ring-5 except the one that saw traffic.
        assert len(stale) == 9
        assert (0, 1) not in stale
        assert stale[(1, 0)] == 3
        assert online.stale_edges(4) == {}

    def test_rejected_observation_still_freshens_its_edge(self, scenario):
        """A rejected sample is evidence the link is alive -- staleness
        tracks traffic, not admission."""
        online = OnlineSynchronizer(scenario.system, reject_outliers=True)
        online.observe(0, 1, 2.0)
        online.observe(1, 0, 2.0)
        assert online.observe(0, 1, poison_for(online)) is False
        assert online.edge_staleness(0, 1) == 0
        assert online.edge_staleness(1, 0) == 1

    def test_drop_edge_stats_reports_whether_anything_dropped(self, scenario):
        online = OnlineSynchronizer(scenario.system)
        assert online.drop_edge_stats(0, 1) is False
        online.observe(0, 1, 2.0)
        assert online.drop_edge_stats(0, 1) is True
        assert online.edge_stats(0, 1).count == 0

    def test_reset_clears_robustness_state(self, scenario):
        alpha = scenario.run()
        online = OnlineSynchronizer(
            scenario.system, reject_outliers=True, fallback=True
        )
        online.ingest_views(alpha.views())
        online.result()
        online.observe(0, 1, poison_for(online))
        assert online.outliers_rejected == 1
        online.reset()
        assert online.outliers_rejected == 0
        assert online.fallbacks_served == 0
        assert not online.in_fallback
        assert online.stale_edges(1) == {}
