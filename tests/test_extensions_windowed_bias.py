"""Tests for the windowed bias model (repro.extensions.windowed_bias).

Key reductions: ``W = inf`` reproduces Lemma 6.5 exactly; ``W = 0``
degenerates to the no-bounds model; shrinking the window never tightens
the local shifts (fewer constraints).
"""

import math
import random

import pytest

from repro._types import INF
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bias import RoundTripBias
from repro.extensions.windowed_bias import (
    TimedObservation,
    WindowedBias,
    observations_from_views,
    synchronize_windowed,
    windowed_local_estimates,
)
from repro.graphs.topology import line, ring
from repro.workloads.scenarios import round_trip_bias

from conftest import make_two_node_execution


def obs(pairs):
    return [TimedObservation(send_clock=c, delay=d) for c, d in pairs]


class TestConstruction:
    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            WindowedBias(bias=-1.0, window=1.0)
        with pytest.raises(ValueError):
            WindowedBias(bias=1.0, window=-1.0)


class TestMlsBound:
    def test_infinite_window_equals_lemma_65(self):
        fwd = obs([(10.0, 5.0), (20.0, 5.3)])
        rev = obs([(12.0, 5.2), (22.0, 5.6)])
        model = WindowedBias(bias=1.0, window=INF)
        timing = PairTiming(
            forward=DirectionStats.of([5.0, 5.3]),
            reverse=DirectionStats.of([5.2, 5.6]),
        )
        assert model.mls_bound(fwd, rev) == pytest.approx(
            RoundTripBias(1.0).mls_bound(timing)
        )

    def test_zero_window_equals_no_bounds(self):
        """Distinct send clocks + W=0: only non-negativity remains."""
        fwd = obs([(10.0, 5.0), (20.0, 5.3)])
        rev = obs([(12.0, 5.2), (22.0, 5.6)])
        model = WindowedBias(bias=1.0, window=0.0)
        assert model.mls_bound(fwd, rev) == pytest.approx(5.0)  # dmin fwd

    def test_only_in_window_pairs_constrain(self):
        # Forward at clock 10; reverse at clocks 11 (in window 2) and
        # 100 (out of window).  The out-of-window large delay must not
        # tighten the shift.
        fwd = obs([(10.0, 5.0)])
        rev = obs([(11.0, 5.2), (100.0, 50.0)])
        model = WindowedBias(bias=1.0, window=2.0)
        expected = min(5.0, (1.0 + 5.0 - 5.2) / 2.0)
        assert model.mls_bound(fwd, rev) == pytest.approx(expected)
        # With the full window, the 50.0 delay would dominate:
        full = WindowedBias(bias=1.0, window=INF)
        assert full.mls_bound(fwd, rev) == pytest.approx(
            (1.0 + 5.0 - 50.0) / 2.0
        )

    def test_no_forward_messages_unbounded(self):
        model = WindowedBias(bias=1.0, window=5.0)
        assert model.mls_bound([], obs([(1.0, 2.0)])) == INF

    def test_window_monotonicity(self):
        """Shrinking W relaxes constraints: mls is non-increasing in W."""
        rng = random.Random(3)
        fwd = obs([(rng.uniform(0, 50), rng.uniform(4, 6)) for _ in range(5)])
        rev = obs([(rng.uniform(0, 50), rng.uniform(4, 6)) for _ in range(5)])
        previous = INF
        for window in [0.0, 1.0, 5.0, 20.0, 100.0]:
            value = WindowedBias(bias=0.5, window=window).mls_bound(fwd, rev)
            assert value <= previous + 1e-12
            previous = value


class TestAdmits:
    def test_out_of_window_pairs_free(self):
        model = WindowedBias(bias=0.1, window=1.0)
        assert model.admits(obs([(0.0, 1.0)]), obs([(100.0, 50.0)]))

    def test_in_window_pairs_checked(self):
        model = WindowedBias(bias=0.1, window=1.0)
        assert not model.admits(obs([(0.0, 1.0)]), obs([(0.5, 2.0)]))
        assert model.admits(obs([(0.0, 1.0)]), obs([(0.5, 1.05)]))

    def test_negative_delays_rejected(self):
        model = WindowedBias(bias=1.0, window=1.0)
        assert not model.admits(obs([(0.0, -0.1)]), [])


class TestPipeline:
    def test_observations_from_views(self):
        alpha = make_two_node_execution(3.0, 7.0, [2.0], [2.5])
        observations = observations_from_views(alpha.views())
        (fwd,) = observations[(0, 1)]
        assert fwd.send_clock == pytest.approx(10.0)
        assert fwd.delay == pytest.approx(2.0 + 3.0 - 7.0)

    def test_infinite_window_matches_plain_bias_pipeline(self):
        scenario = round_trip_bias(ring(4), bias=0.5, seed=6)
        alpha = scenario.run()
        plain = ClockSynchronizer(scenario.system).from_execution(alpha)
        models = {
            link: WindowedBias(bias=0.5, window=INF)
            for link in scenario.topology.links
        }
        windowed = synchronize_windowed(scenario.system, alpha.views(), models)
        assert windowed.precision == pytest.approx(plain.precision)
        assert windowed.corrections == pytest.approx(plain.corrections)

    def test_smaller_window_never_improves_precision(self):
        scenario = round_trip_bias(ring(4), bias=0.5, seed=8)
        alpha = scenario.run()
        views = alpha.views()
        previous = None
        for window in [INF, 20.0, 5.0, 0.0]:
            models = {
                link: WindowedBias(bias=0.5, window=window)
                for link in scenario.topology.links
            }
            result = synchronize_windowed(scenario.system, views, models)
            if previous is not None:
                if math.isinf(result.precision):
                    assert window <= 5.0  # may lose all constraints
                else:
                    assert result.precision >= previous - 1e-9
                    previous = result.precision
            else:
                previous = result.precision

    def test_missing_model_rejected(self):
        scenario = round_trip_bias(line(3), bias=0.5, seed=1)
        alpha = scenario.run()
        observations = observations_from_views(alpha.views())
        with pytest.raises(KeyError):
            windowed_local_estimates(
                scenario.topology, observations, {(0, 1): WindowedBias(0.5, 1.0)}
            )
