"""Documentation drift guards.

The docs make concrete promises (experiment ids, module names, example
scripts, CLI subcommands); these tests pin them to the code so a rename
or addition that forgets the docs fails loudly.
"""

from pathlib import Path

import pytest

from repro.experiments import REGISTRY

ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def docs():
    return {
        name: (ROOT / name).read_text()
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "THEORY.md")
    }


class TestExperimentDocs:
    def test_design_lists_every_experiment(self, docs):
        for experiment_id in REGISTRY:
            assert f"| {experiment_id} |" in docs["DESIGN.md"], experiment_id

    def test_experiments_md_covers_every_experiment(self, docs):
        for experiment_id in REGISTRY:
            assert f"## {experiment_id} " in docs["EXPERIMENTS.md"], (
                experiment_id
            )

    def test_design_bench_targets_exist(self, docs):
        for experiment_id in REGISTRY:
            number = experiment_id[1:]
            matches = list(
                (ROOT / "benchmarks").glob(f"test_e{number}_*.py")
            )
            assert matches, f"no benchmark file for {experiment_id}"


class TestModuleDocs:
    def test_readme_package_table_matches_source(self, docs):
        for package in (
            "repro.model",
            "repro.sim",
            "repro.delays",
            "repro.graphs",
            "repro.core",
            "repro.baselines",
            "repro.analysis",
            "repro.workloads",
            "repro.extensions",
            "repro.experiments",
        ):
            assert f"`{package}`" in docs["README.md"], package
            path = ROOT / "src" / package.replace(".", "/")
            assert (path / "__init__.py").exists(), package

    def test_theory_references_real_modules(self, docs):
        import re

        for match in re.finditer(r"`repro/([\w/]+)\.py`", docs["THEORY.md"]):
            path = ROOT / "src" / "repro" / (match.group(1) + ".py")
            assert path.exists(), match.group(0)


class TestCliDocs:
    def test_readme_cli_commands_exist(self, docs):
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands.update(action.choices)
        for command in ("demo", "list", "experiment", "all", "record",
                        "sync-trace"):
            assert command in subcommands, command
            assert command in docs["README.md"], command


class TestExampleDocs:
    def test_examples_dir_matches_readme_table(self, docs):
        examples = sorted(
            p.name for p in (ROOT / "examples").glob("*.py")
        )
        assert len(examples) >= 5
        for name in examples:
            assert name in docs["README.md"], name
