"""Unit tests for estimated delays and local-shift estimates
(repro.core.estimates) -- Lemma 6.1 and Corollaries 6.3/6.6."""

import pytest

from repro.core.estimates import (
    IncompleteViewsError,
    estimated_delays,
    local_shift_estimates,
    true_local_shifts,
)
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay
from repro.delays.system import System
from repro.graphs.topology import line

from conftest import make_two_node_execution


class TestEstimatedDelays:
    def test_translation_identity(self):
        """Lemma 6.1: d~(m) = d(m) + S_p - S_q, from views alone."""
        s_p, s_q = 3.0, 7.5
        alpha = make_two_node_execution(s_p, s_q, [2.0, 2.75], [1.25])
        est = estimated_delays(alpha.views())
        assert sorted(est[(0, 1)]) == pytest.approx(
            sorted(d + s_p - s_q for d in [2.0, 2.75])
        )
        assert est[(1, 0)] == pytest.approx([1.25 + s_q - s_p])

    def test_estimates_shift_invariant(self):
        """Equivalent executions yield identical estimates (Claim 3.1)."""
        from repro.model.execution import shift_execution

        alpha = make_two_node_execution(3.0, 7.5, [2.0], [1.25])
        beta = shift_execution(alpha, {0: 4.0, 1: -2.0})
        assert estimated_delays(alpha.views()) == estimated_delays(
            beta.views()
        )

    def test_negative_estimates_possible(self):
        """With S_q >> S_p the estimate of q->p messages goes negative --
        legal and meaningful (the receiver started later)."""
        alpha = make_two_node_execution(0.0, 50.0, [], [1.0])
        est = estimated_delays(alpha.views())
        assert est[(1, 0)] == pytest.approx([51.0])

    def test_missing_sender_view_rejected(self):
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        views = alpha.views()
        del views[0]
        with pytest.raises(IncompleteViewsError):
            estimated_delays(views)

    def test_empty_views_give_empty_estimates(self):
        alpha = make_two_node_execution(0.0, 0.0, [], [])
        assert estimated_delays(alpha.views()) == {}


class TestLocalShiftEstimates:
    def test_mls_tilde_translation_identity(self):
        """Corollary 6.3: mls~(p,q) = mls(p,q) + S_p - S_q."""
        s_p, s_q = 2.0, 9.0
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, [1.5, 2.5], [2.0])
        estimated = local_shift_estimates(system, alpha.views())
        true = true_local_shifts(system, alpha)
        assert estimated[(0, 1)] == pytest.approx(true[(0, 1)] + s_p - s_q)
        assert estimated[(1, 0)] == pytest.approx(true[(1, 0)] + s_q - s_p)

    def test_bias_model_translation_identity(self):
        """Corollary 6.6: same identity under the bias model."""
        s_p, s_q = 5.0, 1.0
        system = System.uniform(line(2), RoundTripBias(1.0))
        alpha = make_two_node_execution(
            s_p, s_q, [10.0, 10.3], [10.2, 10.6]
        )
        estimated = local_shift_estimates(system, alpha.views())
        true = true_local_shifts(system, alpha)
        assert estimated[(0, 1)] == pytest.approx(true[(0, 1)] + s_p - s_q)
        assert estimated[(1, 0)] == pytest.approx(true[(1, 0)] + s_q - s_p)

    def test_cycle_weights_cancel_translations(self):
        """The proof of Theorem 5.5: cycle weight under mls~ equals the
        cycle weight under mls (the S terms telescope)."""
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(4.0, 11.0, [1.5, 2.5], [2.0])
        estimated = local_shift_estimates(system, alpha.views())
        true = true_local_shifts(system, alpha)
        cycle_est = estimated[(0, 1)] + estimated[(1, 0)]
        cycle_true = true[(0, 1)] + true[(1, 0)]
        assert cycle_est == pytest.approx(cycle_true)
