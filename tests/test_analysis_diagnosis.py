"""Tests for assumption-violation diagnosis (repro.analysis.diagnosis)."""

import math

import pytest

from repro.analysis.diagnosis import (
    diagnose,
    diagnose_and_repair,
    diagnose_local_estimates,
    synchronize_excluding,
)
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import Constant, UniformDelay
from repro.delays.system import System
from repro.graphs.topology import line, ring
from repro.sim.network import NetworkSimulator, SimulationConfig
from repro.sim.protocols import probe_automata, probe_schedule
from repro.workloads.scenarios import bounded_uniform, heterogeneous


def run_with_violation(topo, bad_link, bad_delay, lb=1.0, ub=3.0, seed=0):
    """Simulate with one link's delays outside its declared bounds."""
    system = System.uniform(topo, BoundedDelay.symmetric(lb, ub))
    samplers = {link: UniformDelay(lb, ub) for link in topo.links}
    samplers[bad_link] = Constant(bad_delay)  # violates [lb, ub]
    starts = {p: float(p) for p in topo.nodes}
    sim = NetworkSimulator(
        system, samplers, starts, seed=seed,
        config=SimulationConfig(validate=False),
    )
    alpha = sim.run(dict(probe_automata(topo, probe_schedule(3, 10.0, 3.0))))
    return system, alpha


class TestCleanSystems:
    @pytest.mark.parametrize("seed", range(3))
    def test_admissible_runs_diagnose_clean(self, seed):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
        alpha = scenario.run()
        diagnosis = diagnose(scenario.system, alpha.views())
        assert diagnosis.consistent
        assert diagnosis.excluded_links == ()
        assert diagnosis.negative_cycles == ()

    def test_heterogeneous_clean(self):
        scenario = heterogeneous(ring(5), seed=2)
        alpha = scenario.run()
        assert diagnose(scenario.system, alpha.views()).consistent


class TestConviction:
    def test_violating_link_convicted(self):
        """Delay 10 on a [1, 3] link: the link's own two-cycle goes
        negative and the diagnosis convicts exactly that link."""
        topo = ring(5)
        bad = topo.links[2]
        system, alpha = run_with_violation(topo, bad, bad_delay=10.0)
        diagnosis = diagnose(system, alpha.views())
        assert not diagnosis.consistent
        assert bad in diagnosis.convicted
        assert len(diagnosis.convicted) == 1

    def test_conviction_is_sound(self):
        """Convicted links really violated: check against actual delays."""
        topo = ring(5)
        bad = topo.links[0]
        system, alpha = run_with_violation(topo, bad, bad_delay=8.0)
        diagnosis = diagnose(system, alpha.views())
        for link in diagnosis.convicted:
            p, q = link
            fwd, rev = system.link_delays(alpha, p, q)
            assert not system.assumptions[link].admits(fwd, rev)

    def test_mild_violation_can_be_invisible(self):
        """An asymmetric violation whose round trip stays within
        ``ub_f + ub_r`` is equivalent to an admissible execution with
        different start times -- detection is not complete, and the
        diagnosis must NOT cry wolf."""
        from repro.delays.distributions import AsymmetricUniform

        topo = line(2)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        # Forward 3.4 (violates ub=3) but reverse 2.4: round trip 5.8 < 6,
        # so shifting processor 1 by 0.4 explains the data as 3.0/2.8.
        samplers = {(0, 1): AsymmetricUniform(3.4, 3.4, 2.4, 2.4)}
        sim = NetworkSimulator(
            system, samplers, {0: 0.0, 1: 0.5}, seed=0,
            config=SimulationConfig(validate=False),
        )
        alpha = sim.run(
            dict(probe_automata(topo, probe_schedule(3, 10.0, 3.0)))
        )
        assert not system.is_admissible(alpha)  # truly violating...
        diagnosis = diagnose(system, alpha.views())
        assert diagnosis.consistent  # ...but invisible from views

    def test_symmetric_overshoot_is_detectable(self):
        """Symmetric 3.4/3.4 delays blow the round-trip budget
        (6.8 > ub_f + ub_r = 6), which no shift can explain."""
        topo = line(2)
        system, alpha = run_with_violation(
            topo, (0, 1), bad_delay=3.4, lb=1.0, ub=3.0
        )
        diagnosis = diagnose(system, alpha.views())
        assert not diagnosis.consistent
        assert (0, 1) in diagnosis.convicted


class TestMultiLinkCycles:
    def test_synthetic_negative_cycle_resolved(self):
        """Hand-built mls~ with a clean per-link screen but a negative
        3-cycle: phase 2 must remove an edge and restore consistency."""
        topo = ring(3)
        system = System.uniform(topo, BoundedDelay.symmetric(0.0, 10.0))
        mls = {
            (0, 1): 1.0, (1, 0): 0.5,
            (1, 2): 1.0, (2, 1): 0.5,
            (2, 0): -2.5, (0, 2): 4.0,   # 2-cycle fine (sum 1.5) but
        }                                 # cycle 0->1->2->0 sums to -0.5
        diagnosis = diagnose_local_estimates(system, mls)
        assert not diagnosis.consistent
        assert diagnosis.convicted == ()
        assert len(diagnosis.suspects) == 1
        assert diagnosis.suspects[0] == system.canonical_link(2, 0)

    def test_suspect_removal_restores_consistency(self):
        topo = ring(5)
        bad = topo.links[1]
        system, alpha = run_with_violation(topo, bad, bad_delay=12.0)
        diagnosis, result = diagnose_and_repair(system, alpha.views())
        assert not diagnosis.consistent
        # After exclusion the rest synchronizes without errors; the ring
        # minus one link is a line, still connected.
        assert result.is_fully_synchronized
        assert not math.isinf(result.precision)

    def test_exclusion_can_disconnect(self):
        topo = line(3)
        bad = topo.links[0]
        system, alpha = run_with_violation(topo, bad, bad_delay=9.0)
        diagnosis, result = diagnose_and_repair(system, alpha.views())
        assert bad in diagnosis.excluded_links
        assert math.isinf(result.precision)
        assert len(result.components) == 2


class TestRepairQuality:
    def test_repaired_precision_reflects_surviving_links(self):
        topo = ring(4)
        bad = topo.links[0]
        system, alpha = run_with_violation(topo, bad, bad_delay=15.0)
        diagnosis, repaired = diagnose_and_repair(system, alpha.views())
        # Reference: synchronize a clean run of the same line-shaped
        # remainder -- the repaired precision must be finite and in a
        # sane range (less than the violated delay scale).
        assert repaired.precision < 10.0
        assert repaired.precision > 0.0

    def test_excluding_nothing_is_identity(self):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=3)
        alpha = scenario.run()
        plain = ClockSynchronizer(scenario.system).from_execution(alpha)
        same = synchronize_excluding(scenario.system, alpha.views(), ())
        assert same.precision == pytest.approx(plain.precision)
