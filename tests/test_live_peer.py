"""The asyncio UDP probe peer (repro.live.peer).

ISSUE requirements covered here:

* two peers exchanging probes over real loopback UDP sockets produce
  the Lemma 6.1 observations (both clock reads per probe);
* torn, duplicated and reordered datagrams degrade coverage via drop
  counters -- they never crash a peer and never corrupt observations;
* accepted observations are forwarded to the configured report address
  and the peer's own views feed the model layer.
"""

import asyncio

import pytest

from repro.live.clock import LiveClock, ManualClock
from repro.live.peer import PeerConfig, ProbePeer, start_peer
from repro.live.wire import Probe, Query, Report, decode, encode
from repro.obs.recorder import Recorder, recording


class FakeTransport:
    """Collects sendto calls; enough transport for datagram_received."""

    def __init__(self):
        self.sent = []

    def sendto(self, data, addr):
        self.sent.append((data, addr))

    def get_extra_info(self, name):
        return ("127.0.0.1", 12345)

    def close(self):
        pass


def make_peer(**overrides):
    config = PeerConfig(
        processor="q",
        clock=ManualClock(offset=0.0, now=10.0),
        neighbors={"p": ("127.0.0.1", 1)},
        report_address=overrides.pop("report_address", None),
    )
    peer = ProbePeer(config, **overrides)
    peer.connection_made(FakeTransport())
    return peer


class TestDegradation:
    def test_accepted_probe_becomes_observation(self):
        peer = make_peer()
        probe = Probe(sender="p", seq=0, send_clock=9.5)
        peer.datagram_received(encode(probe), ("127.0.0.1", 1))
        assert peer.records == (
            Report(sender="p", receiver="q", seq=0, send_clock=9.5,
                   recv_clock=10.0),
        )
        assert peer.records[0].estimated_delay == 0.5

    def test_torn_datagram_dropped_counted(self):
        peer = make_peer()
        data = encode(Probe(sender="p", seq=0, send_clock=9.5))
        with recording(Recorder()) as rec:
            peer.datagram_received(data[:10], ("127.0.0.1", 1))
            peer.datagram_received(b"\xff garbage", ("127.0.0.1", 1))
        assert peer.records == ()
        assert rec.registry.counter(
            "live.peer.datagrams_invalid"
        ).value == 2

    def test_duplicate_first_delivery_wins(self):
        peer = make_peer()
        early = encode(Probe(sender="p", seq=0, send_clock=9.5))
        late = encode(Probe(sender="p", seq=0, send_clock=9.9))
        with recording(Recorder()) as rec:
            peer.datagram_received(early, ("127.0.0.1", 1))
            peer.config.clock.advance(1.0)
            peer.datagram_received(late, ("127.0.0.1", 1))
            peer.datagram_received(early, ("127.0.0.1", 1))
        assert len(peer.records) == 1
        assert peer.records[0].send_clock == 9.5  # first delivery kept
        assert rec.registry.counter(
            "live.peer.probes_duplicate"
        ).value == 2

    def test_reordered_probes_all_accepted(self):
        peer = make_peer()
        for seq in (2, 0, 1):  # arrival order != sequence order
            peer.datagram_received(
                encode(Probe(sender="p", seq=seq, send_clock=9.0 + seq)),
                ("127.0.0.1", 1),
            )
        assert sorted(r.seq for r in peer.records) == [0, 1, 2]

    def test_unknown_sender_dropped(self):
        peer = make_peer()
        with recording(Recorder()) as rec:
            peer.datagram_received(
                encode(Probe(sender="stranger", seq=0, send_clock=1.0)),
                ("127.0.0.1", 9),
            )
        assert peer.records == ()
        assert rec.registry.counter("live.peer.probes_unknown").value == 1

    def test_non_probe_message_dropped(self):
        peer = make_peer()
        with recording(Recorder()) as rec:
            peer.datagram_received(
                encode(Query(client="p", qid=1)), ("127.0.0.1", 1)
            )
        assert peer.records == ()
        assert rec.registry.counter(
            "live.peer.datagrams_unexpected"
        ).value == 1

    def test_accepted_report_forwarded(self):
        peer = make_peer(report_address=("127.0.0.1", 777))
        peer.datagram_received(
            encode(Probe(sender="p", seq=0, send_clock=9.0)),
            ("127.0.0.1", 1),
        )
        [(data, addr)] = peer._transport.sent
        assert addr == ("127.0.0.1", 777)
        assert decode(data) == peer.records[0]

    def test_views_cover_received_traffic(self):
        peer = make_peer()
        peer.datagram_received(
            encode(Probe(sender="p", seq=0, send_clock=9.0)),
            ("127.0.0.1", 1),
        )
        views = peer.views()
        assert views["q"].receive_clock_times() == {0: 10.0}


class TestLoopbackRoundTrip:
    def test_two_peers_exchange_real_datagrams(self):
        async def scenario():
            clock_p = LiveClock(0.25, epoch=0.0)
            clock_q = LiveClock(-0.25, epoch=0.0)
            reports = []
            p = await start_peer(
                PeerConfig(processor="p", clock=clock_p, interval=0.005)
            )
            q = await start_peer(
                PeerConfig(processor="q", clock=clock_q, interval=0.005),
                on_report=reports.append,
            )
            try:
                p.config.neighbors = {"q": q.address}
                q.config.neighbors = {"p": p.address}
                p.start()
                q.start()
                deadline = asyncio.get_running_loop().time() + 5.0
                while (p.observation_count < 3
                       or q.observation_count < 3):
                    if asyncio.get_running_loop().time() > deadline:
                        raise TimeoutError("no probe traffic on loopback")
                    await asyncio.sleep(0.005)
            finally:
                await p.stop()
                await q.stop()
            return p, q, reports

        p, q, reports = asyncio.run(scenario())
        # Every observation pairs both endpoint clock reads; real
        # loopback delay is tiny and nonnegative, so the offset of the
        # estimate is dominated by the injected clock offsets.
        for report in q.records:
            assert report.sender == "p" and report.receiver == "q"
            # d~ = d + (offset_q - offset_p); loopback d is < 0.5s here.
            assert -0.5 < report.estimated_delay < 0.0 + 0.5
        assert [r.receiver for r in reports] == ["q"] * len(reports)
        assert p.rounds_sent >= 3 and q.rounds_sent >= 3

    def test_probe_rounds_limit_respected(self):
        async def scenario():
            p = await start_peer(
                PeerConfig(
                    processor="p",
                    clock=LiveClock(0.0, epoch=0.0),
                    interval=0.001,
                    rounds=2,
                )
            )
            q = await start_peer(
                PeerConfig(processor="q", clock=LiveClock(0.0, epoch=0.0))
            )
            try:
                p.config.neighbors = {"q": q.address}
                task = p.start()
                await asyncio.wait_for(task, timeout=5.0)
            finally:
                await p.stop()
                await q.stop()
            return p

        p = asyncio.run(scenario())
        assert p.rounds_sent == 2

    def test_send_without_transport_raises(self):
        peer = ProbePeer(
            PeerConfig(processor="p", clock=ManualClock(0.0, now=0.0))
        )
        with pytest.raises(RuntimeError, match="transport"):
            peer.send_probe_round(0)
