"""Unit tests for the system (G, A) (repro.delays.system)."""

import pytest

from repro._types import INF
from repro.delays.base import DirectionStats
from repro.delays.bounds import BoundedDelay, no_bounds
from repro.delays.system import System, UnknownLinkError
from repro.graphs.topology import line, ring

from conftest import make_two_node_execution


class TestConstruction:
    def test_uniform_covers_all_links(self):
        system = System.uniform(ring(5), no_bounds())
        assert set(system.assumptions) == set(ring(5).links)

    def test_missing_assumption_rejected(self):
        topo = line(3)
        with pytest.raises(ValueError, match="without assumptions"):
            System(topology=topo, assumptions={(0, 1): no_bounds()})

    def test_unknown_link_rejected(self):
        topo = line(3)
        with pytest.raises(UnknownLinkError):
            System(
                topology=topo,
                assumptions={
                    (0, 1): no_bounds(),
                    (1, 2): no_bounds(),
                    (0, 2): no_bounds(),
                },
            )

    def test_from_links_with_default(self):
        topo = line(3)
        special = BoundedDelay.symmetric(1.0, 2.0)
        system = System.from_links(
            topo, {(0, 1): special}, default=no_bounds()
        )
        assert system.assumptions[(0, 1)] == special
        assert system.assumptions[(1, 2)] == no_bounds()

    def test_from_links_flips_non_canonical_keys(self):
        topo = line(2)  # canonical link is (0, 1)
        asym = BoundedDelay(
            lb_forward=1.0, ub_forward=2.0, lb_reverse=3.0, ub_reverse=4.0
        )
        system = System.from_links(topo, {(1, 0): asym})
        stored = system.assumptions[(0, 1)]
        # Keyed as (1, 0): its "forward" was 1->0, so canonically the
        # stored forward (0->1) must carry the reverse bounds.
        assert stored.lb_forward == 3.0 and stored.ub_forward == 4.0

    def test_from_links_unknown_link(self):
        with pytest.raises(UnknownLinkError):
            System.from_links(line(3), {(0, 2): no_bounds()})


class TestOrientation:
    def test_canonical_link(self):
        system = System.uniform(line(3), no_bounds())
        assert system.canonical_link(0, 1) == (0, 1)
        assert system.canonical_link(1, 0) == (0, 1)
        with pytest.raises(UnknownLinkError):
            system.canonical_link(0, 2)

    def test_assumption_oriented_flips(self):
        topo = line(2)
        asym = BoundedDelay(
            lb_forward=1.0, ub_forward=2.0, lb_reverse=3.0, ub_reverse=4.0
        )
        system = System(topology=topo, assumptions={(0, 1): asym})
        assert system.assumption_oriented(0, 1) == asym
        assert system.assumption_oriented(1, 0) == asym.flipped()


class TestAdmissibility:
    def test_admissible_execution(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [2.5])
        assert system.is_admissible(alpha)

    def test_delay_violation_detected(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(0.0, 0.0, [5.0], [2.0])
        assert not system.is_admissible(alpha)

    def test_message_on_non_link_detected(self):
        # Build a 2-node execution but claim a 3-node line where 0-1 is
        # replaced by 0-2/2-1: messages 0->1 have no link.
        from repro.graphs.topology import Topology

        topo = Topology(name="vee", nodes=(0, 1, 2), links=((0, 2), (2, 1)))
        system = System.uniform(topo, no_bounds())
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [2.0])
        assert not system.is_admissible(alpha)


class TestMlsComputation:
    def test_mls_from_delays_both_directions(self):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        mls = system.mls_from_delays({(0, 1): [1.5], (1, 0): [2.5]})
        assert mls[(0, 1)] == pytest.approx(min(3.0 - 2.5, 1.5 - 1.0))
        assert mls[(1, 0)] == pytest.approx(min(3.0 - 1.5, 2.5 - 1.0))

    def test_mls_from_stats_equals_from_delays(self):
        system = System.uniform(line(3), BoundedDelay.symmetric(0.5, 4.0))
        delays = {
            (0, 1): [1.0, 2.0],
            (1, 0): [1.5],
            (1, 2): [3.0],
            (2, 1): [2.0, 2.5],
        }
        stats = {
            edge: DirectionStats.of(values) for edge, values in delays.items()
        }
        assert system.mls_from_delays(delays) == system.mls_from_stats(stats)

    def test_silent_edge_gives_inf_when_unbounded(self):
        system = System.uniform(line(2), no_bounds())
        mls = system.mls_from_delays({(0, 1): [2.0]})
        assert mls[(0, 1)] == pytest.approx(2.0)
        assert mls[(1, 0)] == INF

    def test_true_delays_extraction(self):
        system = System.uniform(line(2), no_bounds())
        alpha = make_two_node_execution(1.0, 4.0, [2.0, 3.0], [1.5])
        delays = system.true_delays(alpha)
        assert sorted(delays[(0, 1)]) == pytest.approx([2.0, 3.0])
        assert delays[(1, 0)] == pytest.approx([1.5])
