"""Unit tests for the LP oracles (repro.baselines.lp)."""

import pytest

from repro._types import INF
from repro.baselines.lp import (
    DifferenceConstraint,
    LPError,
    assumption_constraints,
    lp_ms_tilde,
    lp_optimal_corrections,
    system_constraints,
)
from repro.core.precision import rho_bar
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay, lower_bounds_only
from repro.delays.composite import Composite
from repro.graphs.topology import line, ring
from repro.workloads.scenarios import (
    bounded_uniform,
    heterogeneous,
    round_trip_bias,
)


class TestConstraintCompilation:
    def test_bounded_constraints(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        cons = assumption_constraints(a, "p", "q", fwd=[1.5, 2.0], rev=[2.5])
        assert len(cons) == 2
        fwd_con = next(c for c in cons if c.u == "p")
        assert fwd_con.low == pytest.approx(1.0 - 1.5)
        assert fwd_con.high == pytest.approx(3.0 - 2.0)
        rev_con = next(c for c in cons if c.u == "q")
        assert rev_con.low == pytest.approx(1.0 - 2.5)
        assert rev_con.high == pytest.approx(3.0 - 2.5)

    def test_silent_directions_yield_no_constraints(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        assert assumption_constraints(a, "p", "q", [], []) == []

    def test_bias_constraints(self):
        a = RoundTripBias(1.0)
        cons = assumption_constraints(a, "p", "q", fwd=[10.0], rev=[10.4])
        # One two-sided bias constraint + two non-negativity constraints.
        assert len(cons) == 3
        bias_con = cons[0]
        assert bias_con.low == pytest.approx((-1.0 - 10.0 + 10.4) / 2)
        assert bias_con.high == pytest.approx((1.0 - 10.0 + 10.4) / 2)

    def test_composite_concatenates(self):
        comp = Composite.of(
            BoundedDelay.symmetric(1.0, 3.0), lower_bounds_only(0.5)
        )
        cons = assumption_constraints(comp, "p", "q", [2.0], [2.0])
        assert len(cons) == 4

    def test_unknown_assumption_type_rejected(self):
        class Weird(RoundTripBias.__bases__[0]):  # DelayAssumption
            def mls_bound(self, timing):
                return 0.0

            def admits(self, forward, reverse):
                return True

            def flipped(self):
                return self

        with pytest.raises(LPError):
            assumption_constraints(Weird(), "p", "q", [1.0], [1.0])


class TestLpOptimalCorrections:
    def test_hand_instance(self):
        ms = {(0, 1): 3.0, (1, 0): -1.0, (0, 0): 0.0, (1, 1): 0.0}
        corrections, eps = lp_optimal_corrections([0, 1], ms)
        assert eps == pytest.approx(1.0)
        assert rho_bar(ms, corrections) == pytest.approx(1.0)
        assert corrections[0] == pytest.approx(0.0)  # root pinned

    def test_infinite_pair_rejected(self):
        with pytest.raises(LPError, match="infinite"):
            lp_optimal_corrections([0, 1], {(0, 1): 1.0, (1, 0): INF})

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_karp_on_simulations(self, seed):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=seed)
        result = ClockSynchronizer(scenario.system).from_execution(
            scenario.run()
        )
        _, eps = lp_optimal_corrections(
            list(scenario.system.processors), result.ms_tilde
        )
        assert eps == pytest.approx(result.precision, abs=1e-7)


class TestLpMsTilde:
    @pytest.mark.parametrize(
        "make_scenario",
        [
            lambda seed: bounded_uniform(line(4), lb=1.0, ub=4.0, seed=seed),
            lambda seed: round_trip_bias(line(4), bias=1.0, seed=seed),
            lambda seed: heterogeneous(line(4), seed=seed),
        ],
        ids=["bounded", "bias", "hetero"],
    )
    def test_matches_global_estimates(self, make_scenario):
        scenario = make_scenario(1)
        alpha = scenario.run()
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
        lp_ms = lp_ms_tilde(scenario.system, alpha.views())
        for pair, value in result.ms_tilde.items():
            other = lp_ms[pair]
            if value == INF or other == INF:
                assert value == other, pair
            else:
                assert other == pytest.approx(value, abs=1e-6), pair

    def test_unbounded_direction_detected(self):
        scenario = bounded_uniform(line(2), lb=1.0, ub=3.0, seed=0)
        alpha = scenario.run()
        # Re-declare the system with no upper bounds and drop the reverse
        # traffic from the constraint set by rebuilding views... simpler:
        # a no-bounds system where only one direction spoke.
        from repro.delays.bounds import no_bounds
        from repro.delays.system import System

        from conftest import make_two_node_execution

        system = System.uniform(line(2), no_bounds())
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        lp_ms = lp_ms_tilde(system, alpha.views())
        assert lp_ms[(0, 1)] == pytest.approx(2.0)
        assert lp_ms[(1, 0)] == INF


class TestSystemConstraints:
    def test_counts(self):
        scenario = bounded_uniform(line(3), lb=1.0, ub=3.0, probes=2, seed=0)
        alpha = scenario.run()
        cons = system_constraints(scenario.system, alpha.views())
        # Two links, traffic both ways on each: 2 constraints per link.
        assert len(cons) == 4
