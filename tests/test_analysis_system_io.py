"""Tests for system serialization (repro.analysis.system_io)."""

import json

import pytest

from repro._types import INF
from repro.analysis.system_io import (
    SystemIOError,
    assumption_from_dict,
    assumption_to_dict,
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.delays.base import DelayAssumption
from repro.delays.bias import RoundTripBias, RoundTripBiasUnsigned
from repro.delays.bounds import BoundedDelay, lower_bounds_only, no_bounds
from repro.delays.composite import Composite
from repro.delays.system import System
from repro.graphs.topology import Topology, line, ring
from repro.workloads.scenarios import heterogeneous


ASSUMPTIONS = [
    BoundedDelay.symmetric(1.0, 3.0),
    BoundedDelay(lb_forward=0.5, ub_forward=2.0, lb_reverse=1.0, ub_reverse=4.0),
    lower_bounds_only(1.0),
    no_bounds(),
    RoundTripBias(0.5),
    RoundTripBiasUnsigned(0.7),
    Composite.of(BoundedDelay.symmetric(0.0, 10.0), RoundTripBias(1.0)),
    Composite.of(
        Composite.of(lower_bounds_only(0.2), RoundTripBias(2.0)),
        BoundedDelay.symmetric(0.0, 30.0),
    ),
]


class TestAssumptionRoundTrip:
    @pytest.mark.parametrize("assumption", ASSUMPTIONS, ids=repr)
    def test_roundtrip(self, assumption):
        data = assumption_to_dict(assumption)
        json.dumps(data)  # must be JSON-native
        restored = assumption_from_dict(data)
        assert restored == assumption

    def test_infinite_bounds_encoded_as_string(self):
        data = assumption_to_dict(lower_bounds_only(1.0))
        assert data["ub_forward"] == "inf"
        restored = assumption_from_dict(data)
        assert restored.ub_forward == INF

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemIOError):
            assumption_from_dict({"kind": "mystery"})

    def test_unknown_type_rejected(self):
        class Weird(DelayAssumption):
            def mls_bound(self, timing):
                return 0.0

            def admits(self, forward, reverse):
                return True

            def flipped(self):
                return self

        with pytest.raises(SystemIOError):
            assumption_to_dict(Weird())


class TestSystemRoundTrip:
    def test_heterogeneous_system(self):
        system = heterogeneous(ring(5), seed=4).system
        restored = system_from_dict(system_to_dict(system))
        assert restored.topology.nodes == system.topology.nodes
        assert restored.topology.links == system.topology.links
        assert dict(restored.assumptions) == dict(system.assumptions)

    def test_string_node_ids(self):
        topo = Topology(name="wan", nodes=("a", "b"), links=(("a", "b"),))
        system = System.uniform(topo, no_bounds())
        restored = system_from_dict(system_to_dict(system))
        assert restored.topology.nodes == ("a", "b")

    def test_non_portable_node_ids_rejected(self):
        topo = Topology(name="odd", nodes=((1, 2), 3), links=(((1, 2), 3),))
        system = System.uniform(topo, no_bounds())
        with pytest.raises(SystemIOError, match="portable"):
            system_to_dict(system)

    def test_version_checked(self):
        system = System.uniform(line(2), no_bounds())
        data = system_to_dict(system)
        data["version"] = 42
        with pytest.raises(SystemIOError, match="version"):
            system_from_dict(data)

    def test_file_roundtrip(self, tmp_path):
        system = heterogeneous(ring(4), seed=1).system
        path = tmp_path / "system.json"
        save_system(system, path)
        restored = load_system(path)
        assert dict(restored.assumptions) == dict(system.assumptions)

    def test_restored_system_synchronizes_identically(self, tmp_path):
        from repro.core.synchronizer import ClockSynchronizer

        scenario = heterogeneous(ring(4), seed=6)
        alpha = scenario.run()
        path = tmp_path / "system.json"
        save_system(scenario.system, path)
        restored = load_system(path)
        a = ClockSynchronizer(scenario.system).from_execution(alpha)
        b = ClockSynchronizer(restored).from_execution(alpha)
        assert a.precision == b.precision
        assert a.corrections == b.corrections


class TestCliIntegration:
    def test_record_and_sync_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run"
        assert main(["record", str(out), "--scenario", "hetero",
                     "--size", "4", "--seed", "2"]) == 0
        assert main([
            "sync-trace", str(out / "system.json"), str(out / "trace.json")
        ]) == 0
        output = capsys.readouterr().out
        assert "certified optimal" in output
        assert "Corrections" in output
        assert "Pairwise guarantees" in output

    def test_sync_trace_flags_violations(self, tmp_path, capsys):
        from repro.analysis.system_io import save_system
        from repro.analysis.trace import save_execution
        from repro.cli import main
        from repro.delays.distributions import Constant, UniformDelay
        from repro.sim.network import NetworkSimulator, SimulationConfig
        from repro.sim.protocols import probe_automata, probe_schedule

        topo = ring(4)
        system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        samplers[topo.links[0]] = Constant(9.0)
        sim = NetworkSimulator(
            system, samplers, {p: 0.0 for p in topo.nodes}, seed=0,
            config=SimulationConfig(validate=False),
        )
        alpha = sim.run(
            dict(probe_automata(topo, probe_schedule(2, 5.0, 2.0)))
        )
        save_system(system, tmp_path / "system.json")
        save_execution(alpha, tmp_path / "trace.json")
        assert main([
            "sync-trace",
            str(tmp_path / "system.json"),
            str(tmp_path / "trace.json"),
        ]) == 0
        output = capsys.readouterr().out
        assert "WARNING" in output
        assert "convicted" in output
