"""The live reliable-transport driver: wire framing, SegmentChannel,
and the lossy-loopback smoke.

ISSUE requirements covered here:

* ``seg``/``segack`` datagrams round-trip the wire codec and defects
  are rejected, never crash;
* a :class:`SegmentChannel` pair over an injected-loss in-memory link
  delivers every payload exactly once, retransmitting as needed, and
  reports an unresponsive peer unreachable instead of hanging;
* a real loopback cluster under >= 20% injected datagram loss plus
  reordering still serves replay-audited corrections with **zero lost
  observations** -- the tentpole's live acceptance criterion.
"""

import asyncio

import pytest

from repro.live.cluster import run_smoke
from repro.live.transport import (
    LIVE_TRANSPORT_CONFIG,
    SERVER_ID,
    LossyNetwork,
    SegmentChannel,
)
from repro.live.wire import (
    Probe,
    Report,
    Seg,
    SegAck,
    WireError,
    decode,
    encode,
)
from repro.obs.recorder import Recorder, recording
from repro.transport import TransportConfig


class TestSegWire:
    def test_seg_round_trips_probe_and_report(self):
        for inner in (
            Probe(sender="p0", seq=3, send_clock=1.25),
            Report(sender="p0", receiver="p1", seq=3,
                   send_clock=1.25, recv_clock=1.75),
        ):
            seg = Seg(src="p0", dst="p1", seq=9, inner=inner)
            assert decode(encode(seg)) == seg

    def test_segack_round_trips_with_sacks(self):
        ack = SegAck(src="p1", dst="p0", cum=4, sacks=(6, 8))
        assert decode(encode(ack)) == ack
        assert decode(encode(SegAck(src="a", dst="b", cum=0))).sacks == ()

    def test_torn_seg_rejected(self):
        seg = Seg(
            src="p0", dst="p1", seq=1,
            inner=Probe(sender="p0", seq=1, send_clock=0.5),
        )
        data = encode(seg)
        with pytest.raises(WireError):
            decode(data[: len(data) // 2])

    def _forge(self, body):
        """A datagram with a *valid* CRC but a defective body."""
        import zlib

        from repro.live import wire

        body = dict(body, v=wire.WIRE_VERSION)
        body["crc"] = zlib.crc32(wire._canonical(body))
        return wire._canonical(body)

    def test_non_int_sacks_rejected(self):
        with pytest.raises(WireError, match="sacks"):
            decode(self._forge({
                "kind": "segack", "src": "a", "dst": "b", "cum": 1,
                "sacks": ["x"],
            }))

    def test_seg_cannot_carry_query(self):
        with pytest.raises(WireError, match="cannot carry"):
            decode(self._forge({
                "kind": "seg", "src": "a", "dst": "b", "seq": 0,
                "inner": {"kind": "query", "client": "c", "qid": 1},
            }))


def probe(k):
    """A framable payload (segments carry Probe/Report, not raw strings)."""
    return Probe(sender="a", seq=k, send_clock=float(k))


class LossyPipe:
    """Two SegmentChannels joined by an in-memory link that drops the
    first ``drop_first`` data frames in each direction."""

    def __init__(self, drop_first=0, config=None):
        self.drop_first = {"a": drop_first, "b": drop_first}
        self.delivered = {"a": [], "b": []}
        self.unreachable = []
        self.clock = 0.0
        config = config or TransportConfig(
            rto_initial=0.05, rto_max=0.2, backoff=2.0, jitter=0.0,
            window=8, max_retries=4,
        )
        self.channels = {
            name: SegmentChannel(
                name,
                sendto=lambda data, addr, src=name: self._carry(src, data),
                on_deliver=self._on_deliver,
                on_unreachable=lambda peer, undelivered, src=name:
                    self.unreachable.append((src, peer)),
                config=config,
                clock=lambda: self.clock,
            )
            for name in ("a", "b")
        }
        self.channels["a"].register_peer("b", ("127.0.0.1", 1))
        self.channels["b"].register_peer("a", ("127.0.0.1", 2))

    def _carry(self, src, data):
        message = decode(data)
        if isinstance(message, Seg) and self.drop_first[src] > 0:
            self.drop_first[src] -= 1
            return
        dst = "b" if src == "a" else "a"
        self.channels[dst].on_datagram(message, ("127.0.0.1", 99),
                                       self.clock)

    def _on_deliver(self, payload, src, recv_clock):
        self.delivered[src].append(payload)

    def advance(self, until, step=0.01):
        while self.clock < until:
            self.clock += step
            for channel in self.channels.values():
                channel.fire_timers_for_test(self.clock)


# SegmentChannel arms timers on the running asyncio loop; for the pure
# in-memory pipe we fire the machine's timers by hand instead.
def _fire_timers(self, now):
    self._apply(self.machine.on_timer(now))


SegmentChannel.fire_timers_for_test = _fire_timers


class TestSegmentChannel:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_lossless_pipe_delivers_in_order(self):
        async def scenario():
            pipe = LossyPipe()
            for k in range(5):
                pipe.channels["a"].send("b", probe(k))
            return pipe

        pipe = self._run(scenario())
        assert pipe.delivered["a"] == [probe(k) for k in range(5)]
        assert pipe.channels["a"].machine.idle

    def test_dropped_frames_are_retransmitted(self):
        async def scenario():
            pipe = LossyPipe(drop_first=2)
            pipe.channels["a"].send("b", probe(0))
            pipe.channels["a"].send("b", probe(1))
            pipe.advance(until=1.0)
            return pipe

        pipe = self._run(scenario())
        assert sorted(pipe.delivered["a"], key=lambda p: p.seq) == [
            probe(0), probe(1),
        ]
        stats = pipe.channels["a"].machine.stats("b")
        assert stats.retransmits >= 2
        assert stats.delivered == 0  # no reverse traffic
        assert pipe.channels["a"].machine.idle
        assert pipe.unreachable == []

    def test_silent_peer_reported_unreachable(self):
        async def scenario():
            pipe = LossyPipe(drop_first=10 ** 6)
            pipe.channels["a"].send("b", probe(0))
            pipe.advance(until=5.0)
            return pipe

        pipe = self._run(scenario())
        assert pipe.unreachable == [("a", "b")]
        assert pipe.channels["a"].machine.stats("b").undelivered == 1

    def test_unroutable_destination_counted_not_raised(self):
        async def scenario():
            channel = SegmentChannel(
                "a", sendto=lambda data, addr: None,
                on_deliver=lambda payload, src, recv_clock: None,
            )
            channel.send("ghost", probe(0))
            return channel

        with recording(Recorder()) as rec:
            channel = self._run(scenario())
        assert rec.registry.counter("live.transport.unroutable").value == 1
        assert channel.machine.pending("ghost") == 1


class TestLossySmoke:
    def test_lossy_loopback_smoke_loses_nothing(self):
        summary = asyncio.run(run_smoke(
            peers=3,
            queries=60,
            warmup_observations=18,
            interval=0.02,
            concurrency=4,
            loss=0.25,
            reorder=0.1,
            net_seed=7,
            drain_timeout=15.0,
        ))
        transport = summary["transport"]
        assert transport["enabled"]
        assert transport["drained"]
        assert transport["lost_observations"] == 0
        assert transport["totals"]["retransmits"] > 0
        assert transport["net"]["dropped"] > 0
        assert summary["replay_ok"]
        assert summary["ok_answers"] == summary["queries"]

    def test_reliable_default_config(self):
        assert LIVE_TRANSPORT_CONFIG.rto_initial < 1.0
        assert SERVER_ID == "@server"

    def test_lossy_network_counters(self):
        sent = []

        class FakeTransport:
            def sendto(self, data, addr):
                sent.append((data, addr))

        async def scenario():
            net = LossyNetwork(loss=0.5, reorder=0.0, seed=0)
            for _ in range(40):
                net.send(FakeTransport(), b"x", ("127.0.0.1", 1))
            return net

        net = asyncio.run(scenario())
        counters = net.counters()
        assert counters["dropped"] > 0
        assert counters["passed"] > 0
        assert counters["dropped"] + counters["passed"] == 40
        assert len(sent) == counters["passed"]
        with pytest.raises(ValueError):
            LossyNetwork(loss=1.0)
