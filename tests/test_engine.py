"""Unit tests for the matrix engine layer (repro.engine).

Covers the ProcessorIndex row mapping, the EngineStats hooks, the
backend registry, the numpy kernels against their graph-code oracles,
the shared argument validation of the engine base class, and the
incremental closure update of the numpy backend.
"""

import random

import numpy as np
import pytest

from repro._types import INF
from repro.core.global_estimates import InconsistentViewsError
from repro.core.shifts import UnboundedPrecisionError
from repro.engine import (
    AUTO_BACKEND,
    NUMPY_BACKEND_THRESHOLD,
    NumpyEngine,
    ProcessorIndex,
    PythonEngine,
    available_backends,
    create_engine,
    register_backend,
    resolve_backend_name,
)
from repro.engine import registry
from repro.engine.numpy_backend import (
    bellman_ford_matrix,
    has_negative_diagonal,
    karp_max_cycle_mean_matrix,
    min_plus_closure,
)
from repro.engine.stats import EngineStats
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import maximum_cycle_mean
from repro.graphs.shortest_paths import all_pairs_shortest_paths, bellman_ford


def potentials_matrix(rng, n, density=1.0, lo=0.0, hi=4.0):
    """Random mls~-style matrix guaranteed free of negative cycles.

    ``w(i, j) = u(i, j) + y_i - y_j`` with slack ``u >= lo >= 0``: every
    cycle's weight telescopes to the sum of its slacks, hence >= 0.
    Returns ``(matrix, slack)`` so tests can shrink weights safely.
    """
    y = [rng.uniform(-5.0, 5.0) for _ in range(n)]
    matrix = np.full((n, n), INF)
    np.fill_diagonal(matrix, 0.0)
    slack = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                slack[i, j] = rng.uniform(lo, hi)
                matrix[i, j] = slack[i, j] + y[i] - y[j]
    return matrix, slack


# ----------------------------------------------------------------------
# ProcessorIndex
# ----------------------------------------------------------------------


class TestProcessorIndex:
    def test_row_processor_roundtrip(self):
        index = ProcessorIndex(["c", "a", "b"])
        assert len(index) == 3
        assert list(index) == ["c", "a", "b"]
        assert index.processors == ("c", "a", "b")
        for i, p in enumerate(["c", "a", "b"]):
            assert index.row(p) == i
            assert index.processor(i) == p
        assert "a" in index and "z" not in index
        assert index.rows(["b", "c"]) == [2, 0]
        assert index.pair_rows([("a", "b"), ("b", "c")]) == [(1, 2), (2, 0)]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ProcessorIndex(["a", "b", "a"])

    def test_matrix_defaults_and_diagonal(self):
        index = ProcessorIndex([0, 1, 2])
        m = index.matrix({(0, 1): 2.5, (1, 0): -1.0})
        assert m[0, 1] == 2.5 and m[1, 0] == -1.0
        assert m[0, 2] == INF and m[2, 1] == INF
        assert m[0, 0] == m[1, 1] == m[2, 2] == 0.0

    def test_matrix_self_pair_takes_min(self):
        index = ProcessorIndex([0, 1])
        assert index.matrix({(0, 0): 3.0})[0, 0] == 0.0  # inert self-loop
        assert index.matrix({(0, 0): -2.0})[0, 0] == -2.0  # negative cycle

    def test_pairs_roundtrip(self):
        index = ProcessorIndex(["p", "q"])
        pairs = {("p", "q"): 1.5, ("q", "p"): INF}
        m = index.matrix(pairs)
        out = index.pairs(m)
        assert out[("p", "q")] == 1.5
        assert out[("q", "p")] == INF
        assert out[("p", "p")] == 0.0 and out[("q", "q")] == 0.0

    def test_pairs_shape_mismatch(self):
        index = ProcessorIndex(["p", "q"])
        with pytest.raises(ValueError, match="shape"):
            index.pairs(np.zeros((3, 3)))


# ----------------------------------------------------------------------
# EngineStats
# ----------------------------------------------------------------------


class TestEngineStats:
    def test_stage_accumulates_time_and_calls(self):
        stats = EngineStats()
        for _ in range(3):
            with stats.stage("closure"):
                pass
        assert stats.counters["closure.calls"] == 3
        assert stats.timings["closure"] >= 0.0
        assert stats.total_seconds() == pytest.approx(
            sum(stats.timings.values())
        )

    def test_counters_and_reset(self):
        stats = EngineStats()
        stats.count("nudges")
        stats.count("nudges", 4)
        assert stats.counters == {"nudges": 5}
        snap = stats.snapshot()
        assert snap["counters"]["nudges"] == 5
        stats.reset()
        assert stats.timings == {} and stats.counters == {}

    def test_engine_records_stage_stats(self):
        engine = NumpyEngine()
        mls, _ = potentials_matrix(random.Random(0), 6)
        ms = engine.global_estimates(mls)
        engine.components(mls, ms)
        engine.shifts(ms)
        stats = engine.stats
        assert stats.counters["global_estimates.calls"] == 1
        assert set(stats.timings) >= {
            "global_estimates",
            "components",
            "shifts",
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ["numpy", "python"]

    def test_auto_selects_by_size(self):
        assert resolve_backend_name(None, NUMPY_BACKEND_THRESHOLD) == "numpy"
        assert (
            resolve_backend_name(None, NUMPY_BACKEND_THRESHOLD - 1) == "python"
        )
        assert resolve_backend_name(AUTO_BACKEND, 100) == "numpy"
        assert resolve_backend_name(None, None) == "python"
        assert resolve_backend_name("python", 100) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_backend_name("cuda")

    def test_create_engine(self):
        assert isinstance(create_engine("python"), PythonEngine)
        assert isinstance(create_engine("numpy"), NumpyEngine)
        assert isinstance(create_engine(None, 100), NumpyEngine)

    def test_register_backend_guards(self):
        with pytest.raises(ValueError, match="reserved"):
            register_backend(AUTO_BACKEND, PythonEngine)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("python", PythonEngine)

    def test_register_custom_backend(self):
        register_backend("custom-test", PythonEngine)
        try:
            assert "custom-test" in available_backends()
            assert resolve_backend_name("custom-test") == "custom-test"
            assert isinstance(create_engine("custom-test"), PythonEngine)
        finally:
            registry._FACTORIES.pop("custom-test", None)


# ----------------------------------------------------------------------
# numpy kernels vs the graph-code oracles
# ----------------------------------------------------------------------


class TestKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_min_plus_closure_matches_floyd_warshall(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 10)
        mls, _ = potentials_matrix(rng, n, density=0.6)
        graph = WeightedDigraph()
        for i in range(n):
            graph.add_node(i)
        for i in range(n):
            for j in range(n):
                if i != j and np.isfinite(mls[i, j]):
                    graph.add_edge(i, j, mls[i, j])
        dist = all_pairs_shortest_paths(graph)
        closure = min_plus_closure(mls)
        for i in range(n):
            for j in range(n):
                assert closure[i, j] == pytest.approx(dist[i][j], abs=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_karp_matrix_matches_graph_karp(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 10)
        weights = np.array(
            [[rng.uniform(-3.0, 5.0) for _ in range(n)] for _ in range(n)]
        )
        graph = WeightedDigraph()
        for i in range(n):
            graph.add_node(i)
        for i in range(n):
            for j in range(n):
                if i != j:
                    graph.add_edge(i, j, weights[i, j])
        oracle = maximum_cycle_mean(graph)
        assert karp_max_cycle_mean_matrix(weights) == pytest.approx(
            oracle.mean, abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_bellman_ford_matrix_matches_graph(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 10)
        weights, _ = potentials_matrix(rng, n, density=0.8)
        graph = WeightedDigraph()
        for i in range(n):
            graph.add_node(i)
        for i in range(n):
            for j in range(n):
                if i != j and np.isfinite(weights[i, j]):
                    graph.add_edge(i, j, weights[i, j])
        dist, _ = bellman_ford(graph, 0)
        vec = bellman_ford_matrix(weights, 0)
        assert vec is not None
        for j in range(n):
            assert vec[j] == pytest.approx(dist[j], abs=1e-9)

    def test_bellman_ford_matrix_negative_cycle(self):
        weights = np.array([[0.0, -2.0], [1.0, 0.0]])
        assert bellman_ford_matrix(weights, 0) is None

    def test_has_negative_diagonal(self):
        m = np.zeros((3, 3))
        assert not has_negative_diagonal(m)
        m[1, 1] = -1e-6
        assert has_negative_diagonal(m)


# ----------------------------------------------------------------------
# Base-class validation shared by every backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine_cls", [PythonEngine, NumpyEngine])
class TestEngineValidation:
    def test_non_square_rejected(self, engine_cls):
        with pytest.raises(ValueError, match="square"):
            engine_cls().global_estimates(np.zeros((2, 3)))

    def test_unknown_method_rejected(self, engine_cls):
        ms = np.zeros((2, 2))
        with pytest.raises(ValueError, match="cycle-mean method"):
            engine_cls().shifts(ms, method="fancy")

    def test_bad_rows_rejected(self, engine_cls):
        ms = np.zeros((3, 3))
        with pytest.raises(ValueError, match="no rows"):
            engine_cls().shifts(ms, rows=[])
        with pytest.raises(ValueError, match="root row"):
            engine_cls().shifts(ms, rows=[0, 1], root_row=2)

    def test_single_row_shortcut(self, engine_cls):
        ms = np.full((3, 3), INF)
        np.fill_diagonal(ms, 0.0)
        outcome = engine_cls().shifts(ms, rows=[1])
        assert outcome.a_max == 0.0
        assert outcome.cycle_rows is None
        assert list(outcome.corrections) == [0.0]

    def test_unbounded_pairs_reported(self, engine_cls):
        ms = np.array([[0.0, INF], [1.0, 0.0]])
        with pytest.raises(UnboundedPrecisionError) as err:
            engine_cls().shifts(ms)
        assert err.value.pairs == [(0, 1)]

    def test_negative_cycle_raises_inconsistent(self, engine_cls):
        mls = np.array([[0.0, -3.0], [1.0, 0.0]])
        with pytest.raises(InconsistentViewsError):
            engine_cls().global_estimates(mls)


# ----------------------------------------------------------------------
# Incremental closure update (numpy backend)
# ----------------------------------------------------------------------


class TestIncrementalUpdate:
    def test_python_backend_has_no_incremental_path(self):
        ms = np.zeros((2, 2))
        assert PythonEngine().incremental_update(ms, [(0, 1, -1.0)]) is None

    @pytest.mark.parametrize("seed", range(10))
    def test_incremental_matches_full_closure(self, seed):
        """Decreasing mls~ entries then repairing == recomputing."""
        rng = random.Random(seed)
        n = rng.randint(3, 12)
        mls, slack = potentials_matrix(rng, n, density=0.8, lo=0.5)
        engine = NumpyEngine()
        ms = engine.global_estimates(mls)

        new_mls = mls.copy()
        changes = []
        edges = [
            (i, j)
            for i in range(n)
            for j in range(n)
            if i != j and np.isfinite(mls[i, j])
        ]
        for i, j in rng.sample(edges, min(4, len(edges))):
            # Shrink within the slack: cycle weights stay non-negative.
            new_mls[i, j] -= rng.uniform(0.0, slack[i, j])
            changes.append((i, j, float(new_mls[i, j])))

        repaired = engine.incremental_update(ms, changes)
        expected = engine.global_estimates(new_mls)
        assert repaired is not None
        assert np.allclose(repaired, expected, atol=1e-9)
        # The cached input must not have been mutated.
        assert np.array_equal(ms, engine.global_estimates(mls))

    def test_incremental_detects_negative_cycle(self):
        mls = np.array([[0.0, 1.0], [1.0, 0.0]])
        engine = NumpyEngine()
        ms = engine.global_estimates(mls)
        with pytest.raises(InconsistentViewsError):
            engine.incremental_update(ms, [(0, 1, -2.0)])
