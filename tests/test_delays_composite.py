"""Unit tests for composite assumptions (repro.delays.composite)."""

import pytest

from repro.delays.base import DirectionStats, PairTiming
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay, lower_bounds_only
from repro.delays.composite import Composite


def timing(fwd, rev) -> PairTiming:
    return PairTiming(
        forward=DirectionStats.of(list(fwd)),
        reverse=DirectionStats.of(list(rev)),
    )


class TestConstruction:
    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            Composite(components=())

    def test_flattening(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        b = RoundTripBias(0.5)
        c = lower_bounds_only(0.2)
        nested = Composite.of(Composite.of(a, b), c)
        assert nested.components == (a, b, c)


class TestMinSemantics:
    """Theorem 5.6: mls of the intersection is the min of component mls."""

    def test_mls_is_min(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        b = RoundTripBias(0.5)
        composite = Composite.of(a, b)
        t = timing([1.8, 2.0], [2.1, 2.3])
        assert composite.mls_bound(t) == pytest.approx(
            min(a.mls_bound(t), b.mls_bound(t))
        )

    def test_order_irrelevant(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        b = RoundTripBias(0.5)
        t = timing([1.8], [2.3])
        assert Composite.of(a, b).mls_bound(t) == pytest.approx(
            Composite.of(b, a).mls_bound(t)
        )

    def test_idempotent(self):
        a = BoundedDelay.symmetric(1.0, 3.0)
        t = timing([1.5], [2.5])
        assert Composite.of(a, a).mls_bound(t) == pytest.approx(
            a.mls_bound(t)
        )


class TestAdmits:
    def test_requires_all_components(self):
        composite = Composite.of(
            BoundedDelay.symmetric(1.0, 3.0), RoundTripBias(0.5)
        )
        assert composite.admits([2.0, 2.2], [2.1])
        # Bounds fine, bias violated:
        assert not composite.admits([1.0], [2.9])
        # Bias fine, bounds violated:
        assert not composite.admits([3.6], [3.7])


class TestFlip:
    def test_flip_distributes(self):
        asym = BoundedDelay(
            lb_forward=0.5, ub_forward=2.0, lb_reverse=1.0, ub_reverse=4.0
        )
        composite = Composite.of(asym, RoundTripBias(0.5))
        flipped = composite.flipped()
        assert flipped.components[0] == asym.flipped()
        assert flipped.components[1] == RoundTripBias(0.5)

    def test_mls_pair_consistency(self):
        asym = BoundedDelay(
            lb_forward=0.5, ub_forward=2.0, lb_reverse=1.0, ub_reverse=4.0
        )
        composite = Composite.of(asym, RoundTripBias(3.0))
        t = timing([1.0, 1.5], [2.0, 3.0])
        pq, qp = composite.mls_pair(t)
        assert pq == pytest.approx(composite.mls_bound(t))
        assert qp == pytest.approx(
            composite.flipped().mls_bound(t.flipped())
        )
