"""Integration tests for the experiment suite (repro.experiments).

Each experiment runs in quick mode and must (a) produce non-empty tables
and (b) exhibit the qualitative shape its claim predicts -- the same
"who wins, where the crossover falls" checks EXPERIMENTS.md records.
"""

import math

import pytest

from repro.experiments import DESCRIPTIONS, REGISTRY, run_experiment


class TestRegistry:
    def test_experiments_registered(self):
        # E16 is the live-service evaluation (EXPERIMENTS.md), not a
        # registry entry -- it runs on sockets, not the simulator.
        assert len(REGISTRY) == 16
        assert set(REGISTRY) == {f"E{i}" for i in range(1, 16)} | {"E17"}
        assert set(DESCRIPTIONS) == set(REGISTRY)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive(self):
        tables = run_experiment("e2", quick=True)
        assert tables


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_experiment_runs_and_produces_rows(experiment_id):
    tables = run_experiment(experiment_id, quick=True)
    assert tables, experiment_id
    for table in tables:
        assert table.rows, f"{experiment_id}: empty table {table.title!r}"
        text = table.format()
        assert table.title in text


class TestExperimentShapes:
    def test_e1_everything_certified(self):
        (table,) = run_experiment("E1", quick=True)
        certified_column = [row[-1] for row in table.rows]
        assert all(certified_column)
        # Adversary ratio approaches 1 on every topology.
        assert all(row[-2] > 0.99 for row in table.rows)

    def test_e2_formulas_match_search(self):
        (table,) = run_experiment("E2", quick=True)
        assert all(row[-1] for row in table.rows)

    def test_e3_finite_per_execution_and_components(self):
        tail_table, component_table = run_experiment("E3", quick=True)
        assert all(row[-2] for row in tail_table.rows)  # all finite
        one_way = component_table.rows[0]
        bidirectional = component_table.rows[1]
        assert math.isinf(one_way[1])
        assert not math.isinf(bidirectional[1])

    def test_e4_bias_wins_when_tight_bounds_win_when_loose(self):
        (table,) = run_experiment("E4", quick=True)
        winners = {row[0]: row[-1] for row in table.rows}
        assert winners[min(winners)] == "bias"
        assert winners[max(winners)] == "bounds"
        # Composite never loses.
        for row in table.rows:
            assert row[3] <= min(row[1], row[2]) + 1e-9

    def test_e5_decomposition_matches(self):
        link_table, system_table = run_experiment("E5", quick=True)
        assert all(row[-1] for row in link_table.rows)
        assert all(row[-1] for row in system_table.rows)

    def test_e6_lp_agrees_everywhere(self):
        (table,) = run_experiment("E6", quick=True)
        for row in table.rows:
            assert abs(row[1] - row[2]) < 1e-6  # Karp == LP
            assert row[3] < 1e-6  # ms~ gap
            assert row[4]

    def test_e7_optimal_never_loses(self):
        table, favourable = run_experiment("E7", quick=True)
        for row in table.rows:
            assert row[4] >= 1.0 - 1e-9  # ntp/opt
            assert row[5] >= 1.0 - 1e-9  # cristian/opt
        (row,) = favourable.rows
        assert row[-1] > 1.0  # instances genuinely vary

    def test_e8_precision_monotone_in_probes(self):
        (table,) = run_experiment("E8", quick=True)
        assert all(row[-1] for row in table.rows)
        means = [row[1] for row in table.rows]
        assert means[0] >= means[-1]

    def test_e9_reports_timings(self):
        stages, backends, engines = run_experiment("E9", quick=True)
        for row in stages.rows:
            assert row[-1] > 0  # total time positive
        for row in backends.rows:
            assert all(cell > 0 for cell in row[1:])
        for row in engines.rows:
            assert all(cell > 0 for cell in row[1:])  # times and speedup

    def test_e10_distribution_never_beats_full_information(self):
        leader_table, drift_table, reliable_table = run_experiment(
            "E10", quick=True
        )
        for row in leader_table.rows:
            protocol_rho, probe_opt, full_opt = row[1], row[2], row[3]
            assert full_opt <= protocol_rho + 1e-9
            assert row[4]
        assert drift_table.rows
        for row in reliable_table.rows:
            reliable_done, total = row[2].split("/")
            assert reliable_done == total  # reliable always completes
            if row[3] != "-":
                sound, done = row[3].split("/")
                assert sound == done

    def test_e11_windowed_reductions(self):
        equivalence, sweep = run_experiment("E11", quick=True)
        assert all(row[-1] for row in equivalence.rows)
        from repro._types import INF

        inf_row = next(row for row in sweep.rows if row[0] == INF)
        flagged, runs = inf_row[-1].split("/")
        assert flagged == runs  # unsound all-pairs model always caught
        sound_rows = [row for row in sweep.rows if row[1] is True]
        precisions = [row[2] for row in sound_rows]
        assert precisions == sorted(precisions, reverse=True)

    def test_e12_guarantee_conditional_success(self):
        tradeoff, coverage = run_experiment("E12", quick=True)
        assert tradeoff.rows
        for row in coverage.rows:
            ok, held = row[-1].split("/")
            assert ok == held

    def test_e14_monitored_convergence(self):
        trajectory, summary = run_experiment("E14", quick=True)
        # Zero monitor violations on every seed.
        assert all(row[-1] == 0 for row in summary.rows)
        assert all(row[2] > 0 for row in summary.rows)  # refreshes checked
        finite = [
            float(row[2]) for row in trajectory.rows if row[2] != "inf"
        ]
        assert finite == sorted(finite, reverse=True)  # precision tightens

    def test_e15_loss_degrades_but_never_violates(self):
        (table,) = run_experiment("E15", quick=True)
        assert all(row[-1] == 0 for row in table.rows)  # no violations
        baseline, lossy = table.rows[0], table.rows[-1]
        assert float(baseline[2]) == 0.0  # fault-free run drops nothing
        assert float(lossy[2]) > 0.0  # lossy run actually dropped traffic

    def test_e17_emergent_delays_monitor_clean(self):
        models, bias = run_experiment("E17", quick=True)
        # Strict monitors passed for every loss rate and every model.
        assert all(row[-1] == "pass (strict)" for row in models.rows)
        zero_loss, lossy = models.rows[0], models.rows[-1]
        # At zero loss the transport is invisible: no retransmissions,
        # emergent delays inside the frame bounds.
        assert float(zero_loss[1]) == 0.0
        assert float(zero_loss[2]) <= 2.0
        # Loss forces retransmissions; delays escape the frame bounds
        # (that is what makes them emergent).
        assert float(lossy[1]) > 0.0
        assert float(lossy[2]) > 2.0
        # The a-priori bias bound must cover the worst schedule, so it
        # never beats the absolute bounds; the measured-b oracle does
        # at zero loss.
        assert all(float(row[5]) >= float(row[3]) for row in models.rows)
        assert float(bias.rows[0][-1]) < 1.0

    def test_e13_detection_threshold(self):
        detection, repair = run_experiment("E13", quick=True)
        for row in detection.rows:
            detected, runs = row[2].split("/")
            if row[1]:  # detectable severity
                assert detected == runs
            else:  # sub-threshold: must not cry wolf
                assert detected == "0"
        assert all(row[-1] for row in repair.rows)
