"""Shard heartbeats: atomic sidecars, throttling, EWMA, authority.

ISSUE requirements covered here:

* heartbeat files survive torn/partial writes: a reader sees the
  previous beat or the new one, never garbage (and garbage on disk is
  treated as *absent*, not as an error);
* beats are throttled to one write per interval, driven only by the
  runner's progress hooks (the stall-detection contract);
* the campaign runner's absolute ``set_progress`` counters override the
  executor-counted fallback (retries and resumed cells would otherwise
  double- or under-count);
* a streamed ``run_campaign`` leaves a final ``complete`` heartbeat
  next to its manifest.
"""

import json

import pytest

from repro.graphs import ring
from repro.runner.heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    EWMA_ALPHA,
    HEARTBEAT_VERSION,
    Heartbeat,
    HeartbeatWriter,
    heartbeat_path,
    read_heartbeat,
)
from repro.workloads import Campaign, bounded_uniform


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_writer(tmp_path, interval=5.0, shard=None):
    wall, mono = FakeClock(1_700_000_000.0), FakeClock(50.0)
    writer = HeartbeatWriter(
        tmp_path, shard=shard, interval=interval, clock=wall, monotonic=mono
    )
    return writer, wall, mono


class TestHeartbeatRecord:
    def test_round_trip(self):
        beat = Heartbeat(
            shard=(2, 4), pid=123, host="box", started_at=10.0,
            updated_at=20.0, monotonic=5.0, cells_total=40,
            cells_completed=10, cells_quarantined=1, cache_hits=3,
            resumed=2, resident_high_water=7, throughput=1.5,
            eta_seconds=19.3, current_cell=("bounded", "ring-4", 3),
            current_cell_seconds=0.25, complete=False,
        )
        again = Heartbeat.from_json(beat.to_json())
        assert again == beat
        assert again.cells_remaining == 29

    def test_record_type_and_version(self):
        record = make_beat().to_json()
        assert record["type"] == "campaign.heartbeat"
        assert record["version"] == HEARTBEAT_VERSION

    def test_wrong_type_rejected(self):
        record = make_beat().to_json()
        record["type"] = "campaign.cell"
        with pytest.raises(ValueError, match="campaign.heartbeat"):
            Heartbeat.from_json(record)

    def test_wrong_version_rejected(self):
        record = make_beat().to_json()
        record["version"] = HEARTBEAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            Heartbeat.from_json(record)

    def test_remaining_never_negative(self):
        beat = make_beat(cells_total=2, cells_completed=5)
        assert beat.cells_remaining == 0


def make_beat(**overrides):
    base = dict(
        shard=(1, 1), pid=1, host="h", started_at=0.0, updated_at=1.0,
        monotonic=1.0, cells_total=10, cells_completed=4,
        cells_quarantined=0, cache_hits=0, resumed=0,
        resident_high_water=0, throughput=None, eta_seconds=None,
        current_cell=None, current_cell_seconds=None, complete=False,
    )
    base.update(overrides)
    return Heartbeat(**base)


class TestReadHeartbeat:
    def test_missing_file(self, tmp_path):
        assert read_heartbeat(tmp_path / "none.json") is None

    def test_torn_write_is_absent_not_error(self, tmp_path):
        writer, _, _ = make_writer(tmp_path)
        writer.begin(total=4)
        intact = writer.path.read_text()
        # Simulate the torn write the atomic-replace discipline prevents:
        # were a writer to crash mid-write *without* the tmp+replace
        # dance, the reader must degrade to "no heartbeat".
        writer.path.write_text(intact[: len(intact) // 2])
        assert read_heartbeat(writer.path) is None

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "heartbeat-1-of-1.json"
        path.write_text('["not", "a", "heartbeat"]')
        assert read_heartbeat(path) is None

    def test_missing_required_field(self, tmp_path):
        record = make_beat().to_json()
        del record["pid"]
        path = tmp_path / "heartbeat-1-of-1.json"
        path.write_text(json.dumps(record))
        assert read_heartbeat(path) is None


class TestHeartbeatWriter:
    def test_path_naming(self, tmp_path):
        assert heartbeat_path(tmp_path) == tmp_path / "heartbeat-1-of-1.json"
        assert (
            heartbeat_path(tmp_path, (2, 4))
            == tmp_path / "heartbeat-2-of-4.json"
        )
        writer, _, _ = make_writer(tmp_path, shard=(2, 4))
        assert writer.path.name == "heartbeat-2-of-4.json"

    def test_begin_writes_first_beat(self, tmp_path):
        writer, _, _ = make_writer(tmp_path)
        writer.begin(total=7)
        beat = read_heartbeat(writer.path)
        assert beat is not None
        assert beat.cells_total == 7
        assert beat.cells_completed == 0
        assert not beat.complete
        assert writer.beats == 1

    def test_no_tmp_file_left_behind(self, tmp_path):
        writer, _, mono = make_writer(tmp_path)
        writer.begin(total=4)
        mono.advance(10)
        writer.cell_finished(0.1)
        writer.close()
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["heartbeat-1-of-1.json"]

    def test_throttle_one_write_per_interval(self, tmp_path):
        writer, _, mono = make_writer(tmp_path, interval=5.0)
        writer.begin(total=100)
        for _ in range(10):
            mono.advance(0.1)  # ten completions inside one interval
            writer.cell_finished(0.1)
        assert writer.beats == 1  # only the forced begin() beat
        mono.advance(5.0)
        writer.cell_finished(0.1)
        assert writer.beats == 2

    def test_interval_zero_beats_every_event(self, tmp_path):
        writer, _, mono = make_writer(tmp_path, interval=0.0)
        writer.begin(total=3)
        for _ in range(3):
            mono.advance(0.01)
            writer.cell_finished(0.01)
        assert writer.beats == 4

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            HeartbeatWriter(tmp_path, interval=-1.0)

    def test_ewma_throughput(self, tmp_path):
        writer, _, mono = make_writer(tmp_path, interval=0.0)
        writer.begin(total=10)
        # First completion seeds the EWMA with the cell's own cost.
        writer.cell_finished(2.0)
        assert writer.throughput == pytest.approx(0.5)
        mono.advance(1.0)
        writer.cell_finished(1.0)
        expected_dt = EWMA_ALPHA * 1.0 + (1 - EWMA_ALPHA) * 2.0
        assert writer.throughput == pytest.approx(1.0 / expected_dt)
        # ETA = remaining / throughput, using the fallback count (2 done).
        assert writer.eta_seconds == pytest.approx(8 * expected_dt)

    def test_set_progress_overrides_executor_count(self, tmp_path):
        writer, _, mono = make_writer(tmp_path, interval=0.0)
        writer.begin(total=10)
        # A retried cell passes through the executor twice...
        writer.cell_finished(0.1)
        mono.advance(0.1)
        writer.cell_finished(0.1)
        assert writer.completed == 2
        # ...but the campaign runner knows only one cell is truly done.
        writer.set_progress(completed=1, quarantined=0)
        assert writer.completed == 1
        assert read_heartbeat(writer.path).cells_completed == 1

    def test_current_cell_tracking(self, tmp_path):
        writer, _, mono = make_writer(tmp_path, interval=0.0)
        writer.begin(total=2)
        writer.cell_started(("bounded", "ring-4", 1))
        mono.advance(0.5)
        writer.beat(force=True)
        beat = read_heartbeat(writer.path)
        assert beat.current_cell == ("bounded", "ring-4", 1)
        assert beat.current_cell_seconds == pytest.approx(0.5)
        writer.cell_finished(0.5)
        assert read_heartbeat(writer.path).current_cell is None

    def test_close_marks_complete_and_is_idempotent(self, tmp_path):
        writer, _, _ = make_writer(tmp_path)
        writer.begin(total=1)
        writer.cell_finished(0.1)
        path = writer.close()
        beats = writer.beats
        assert read_heartbeat(path).complete
        writer.close()
        assert writer.beats == beats  # second close writes nothing
        assert writer.beat() is False  # closed writers never beat again


class TestCampaignIntegration:
    def test_streamed_run_leaves_complete_heartbeat(self, tmp_path):
        campaign = Campaign(seeds=range(3))
        campaign.add(
            "bounded", lambda t, s: bounded_uniform(t, 1.0, 3.0, seed=s)
        )
        campaign.run_results(
            [ring(4)], results_dir=tmp_path, heartbeat_interval=0.0
        )
        beat = read_heartbeat(heartbeat_path(tmp_path))
        assert beat is not None
        assert beat.complete
        assert beat.cells_total == 3
        assert beat.cells_completed == 3
        assert beat.cells_quarantined == 0

    def test_sharded_run_names_sidecar_by_shard(self, tmp_path):
        campaign = Campaign(seeds=range(4))
        campaign.add(
            "bounded", lambda t, s: bounded_uniform(t, 1.0, 3.0, seed=s)
        )
        outcome = campaign.run_results(
            [ring(4)], shard="1/2", results_dir=tmp_path,
            heartbeat_interval=0.0,
        )
        beat = read_heartbeat(heartbeat_path(tmp_path, (1, 2)))
        assert beat is not None
        assert beat.shard == (1, 2)
        assert beat.complete
        # Sharding is deterministic-by-hash, so the shard's own cell
        # count comes from the outcome, not from grid/2 arithmetic.
        assert beat.cells_completed == len(outcome.results)
        assert beat.cells_total == len(outcome.results)
        assert 0 < len(outcome.results) < 4

    def test_default_interval_is_sane(self):
        assert DEFAULT_HEARTBEAT_INTERVAL == 5.0
