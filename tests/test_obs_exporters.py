"""Tests for the exporters: Chrome trace, JSONL, Prometheus text."""

import json
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    Recorder,
    Tracer,
    chrome_trace,
    prometheus_text,
    validate_metrics_file,
    validate_prometheus_text,
    validate_trace_file,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
)
from repro.obs.export import sanitize_metric_name


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline.sync", backend="numpy"):
        with tracer.span("engine.shifts"):
            pass
    return tracer


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.events_processed", "events popped").add(42)
    registry.gauge("pipeline.precision").set(1.25)
    h = registry.histogram("engine.latency", boundaries=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return registry


class TestChromeTrace:
    def test_document_shape_and_required_keys(self):
        document = chrome_trace(_sample_tracer().finished())
        assert "traceEvents" in document
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in event
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_round_trips_through_json_and_validator(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _sample_tracer().finished())
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert validate_trace_file(path) == 2

    def test_nonfinite_attributes_stay_json_clean(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", precision=float("inf")):
            pass
        path = write_chrome_trace(tmp_path / "t.json", tracer.finished())
        # strict JSON (no Infinity literals) must parse it
        event = json.loads(
            path.read_text(), parse_constant=lambda c: pytest.fail(c)
        )["traceEvents"][-1]
        assert event["args"]["precision"] == "inf"

    def test_validator_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        with pytest.raises(ValueError):
            validate_trace_file(bad)
        bad.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            validate_trace_file(bad)


class TestJsonl:
    def test_metrics_jsonl_parses_and_validates(self, tmp_path):
        path = write_metrics_jsonl(tmp_path / "m.jsonl", _sample_registry())
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert {r["name"] for r in records} == {
            "sim.events_processed",
            "pipeline.precision",
            "engine.latency",
        }
        by_name = {r["name"]: r for r in records}
        assert by_name["sim.events_processed"]["value"] == 42
        assert by_name["engine.latency"]["counts"] == [1, 1, 1]
        assert validate_metrics_file(path) == 3

    def test_events_jsonl_interleaves_spans_and_metrics(self, tmp_path):
        recorder = Recorder(
            registry=_sample_registry(), tracer=_sample_tracer()
        )
        path = write_events_jsonl(tmp_path / "events.jsonl", recorder)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        kinds = {r["record"] for r in records}
        assert kinds == {"span", "metric"}
        spans = [r for r in records if r["record"] == "span"]
        assert {s["name"] for s in spans} == {
            "pipeline.sync", "engine.shifts"
        }
        child = next(s for s in spans if s["name"] == "engine.shifts")
        parent = next(s for s in spans if s["name"] == "pipeline.sync")
        assert child["parent"] == parent["id"]
        assert validate_metrics_file(path) == len(records)

    def test_validator_rejects_empty_and_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            validate_metrics_file(empty)
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text('{"no": "record key"}\n')
        with pytest.raises(ValueError):
            validate_metrics_file(garbage)


class TestPrometheus:
    def test_exposition_grammar(self):
        text = prometheus_text(_sample_registry())
        assert validate_prometheus_text(text) > 0
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)

    def test_counter_gauge_histogram_sections(self):
        text = prometheus_text(_sample_registry())
        assert "# TYPE sim_events_processed counter" in text
        assert "sim_events_processed 42" in text
        assert "# HELP sim_events_processed events popped" in text
        assert "pipeline_precision 1.25" in text
        # histogram: cumulative buckets, +Inf, sum and count
        assert 'engine_latency_bucket{le="0.1"} 1' in text
        assert 'engine_latency_bucket{le="1"} 2' in text
        assert 'engine_latency_bucket{le="+Inf"} 3' in text
        assert "engine_latency_count 3" in text

    def test_name_sanitization(self):
        assert sanitize_metric_name("sim.queue-depth") == "sim_queue_depth"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_infinite_gauge_renders_as_inf(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("inf"))
        assert "g +Inf" in prometheus_text(registry)
        assert validate_prometheus_text(prometheus_text(registry)) == 1
