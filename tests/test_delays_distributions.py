"""Unit tests for delay samplers (repro.delays.distributions)."""

import random

import pytest

from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay
from repro.delays.distributions import (
    AsymmetricUniform,
    Bimodal,
    Constant,
    CorrelatedLoad,
    Direction,
    ShiftedExponential,
    TruncatedNormal,
    UniformDelay,
)


def draw(sampler, n=200, seed=0, direction=Direction.FORWARD):
    rng = random.Random(seed)
    return [sampler.sample(rng, direction) for _ in range(n)]


class TestDirection:
    def test_flip(self):
        assert Direction.FORWARD.flipped() is Direction.REVERSE
        assert Direction.REVERSE.flipped() is Direction.FORWARD


class TestUniform:
    def test_support(self):
        values = draw(UniformDelay(1.0, 3.0))
        assert all(1.0 <= v <= 3.0 for v in values)

    def test_respects_matching_assumption(self):
        assumption = BoundedDelay.symmetric(1.0, 3.0)
        assert assumption.admits(draw(UniformDelay(1.0, 3.0)), [])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UniformDelay(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(-1.0, 1.0)

    def test_deterministic_given_seed(self):
        assert draw(UniformDelay(1.0, 3.0), seed=5) == draw(
            UniformDelay(1.0, 3.0), seed=5
        )


class TestAsymmetricUniform:
    def test_per_direction_support(self):
        s = AsymmetricUniform(1.0, 2.0, 5.0, 6.0)
        fwd = draw(s, direction=Direction.FORWARD)
        rev = draw(s, direction=Direction.REVERSE)
        assert all(1.0 <= v <= 2.0 for v in fwd)
        assert all(5.0 <= v <= 6.0 for v in rev)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            AsymmetricUniform(2.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            AsymmetricUniform(0.0, 1.0, 2.0, 1.0)


class TestShiftedExponential:
    def test_support_above_minimum(self):
        values = draw(ShiftedExponential(1.5, 2.0))
        assert all(v >= 1.5 for v in values)

    def test_cap_truncates(self):
        values = draw(ShiftedExponential(1.0, 10.0, cap=2.0))
        assert all(1.0 <= v <= 2.0 for v in values)

    def test_zero_mean_extra_is_constant(self):
        values = draw(ShiftedExponential(1.5, 0.0))
        assert all(v == 1.5 for v in values)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShiftedExponential(-1.0, 1.0)
        with pytest.raises(ValueError):
            ShiftedExponential(2.0, 1.0, cap=1.0)


class TestTruncatedNormal:
    def test_support(self):
        values = draw(TruncatedNormal(2.0, 0.5, 1.0, 3.0))
        assert all(1.0 <= v <= 3.0 for v in values)

    def test_pathological_params_fall_back_to_clamp(self):
        # mu far outside the window: resampling fails, clamp applies.
        s = TruncatedNormal(100.0, 0.001, 1.0, 3.0)
        values = draw(s, n=5)
        assert all(v == 3.0 for v in values)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TruncatedNormal(2.0, -1.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            TruncatedNormal(2.0, 1.0, 3.0, 1.0)


class TestCorrelatedLoad:
    def test_respects_implied_bias(self):
        s = CorrelatedLoad(1.0, 20.0, max_jitter=0.25)
        rng = random.Random(3)
        fwd = [s.sample(rng, Direction.FORWARD) for _ in range(100)]
        rev = [s.sample(rng, Direction.REVERSE) for _ in range(100)]
        assumption = RoundTripBias(s.implied_bias)
        assert assumption.admits(fwd, rev)
        assert s.implied_bias == pytest.approx(0.5)

    def test_base_drawn_once(self):
        s = CorrelatedLoad(1.0, 20.0, max_jitter=0.1)
        values = draw(s, n=50, seed=9)
        spread = max(values) - min(values)
        assert spread <= 0.2 + 1e-12

    def test_nonnegative_even_with_small_base(self):
        s = CorrelatedLoad(0.0, 0.01, max_jitter=1.0)
        assert all(v >= 0.0 for v in draw(s, n=100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            CorrelatedLoad(5.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            CorrelatedLoad(1.0, 5.0, -0.1)


class TestBimodalAndConstant:
    def test_bimodal_mixes(self):
        s = Bimodal(Constant(1.0), Constant(10.0), slow_probability=0.5)
        values = set(draw(s, n=100))
        assert values == {1.0, 10.0}

    def test_bimodal_extremes(self):
        always_slow = Bimodal(Constant(1.0), Constant(10.0), 1.0)
        assert set(draw(always_slow, n=20)) == {10.0}
        never_slow = Bimodal(Constant(1.0), Constant(10.0), 0.0)
        assert set(draw(never_slow, n=20)) == {1.0}

    def test_bimodal_invalid_probability(self):
        with pytest.raises(ValueError):
            Bimodal(Constant(1.0), Constant(2.0), 1.5)

    def test_constant(self):
        assert draw(Constant(2.5), n=5) == [2.5] * 5
        with pytest.raises(ValueError):
            Constant(-1.0)
