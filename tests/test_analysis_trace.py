"""Tests for execution-trace serialization (repro.analysis.trace)."""

import json

import pytest

from repro.analysis.trace import (
    TraceError,
    execution_from_dict,
    execution_to_dict,
    load_execution,
    save_execution,
)
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import ring, star
from repro.model.execution import executions_equivalent
from repro.sim.network import NetworkSimulator
from repro.sim.protocols import echo_automata, flood_automata, probe_schedule
from repro.workloads.scenarios import bounded_uniform, heterogeneous

from conftest import make_two_node_execution


class TestRoundTrip:
    def test_hand_built_execution(self):
        alpha = make_two_node_execution(3.0, 7.0, [2.0, 2.5], [1.5])
        beta = execution_from_dict(execution_to_dict(alpha))
        assert beta.start_times() == alpha.start_times()
        assert executions_equivalent(alpha, beta)
        assert len(beta.message_records()) == 3

    def test_simulated_probe_execution(self):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=12)
        alpha = scenario.run()
        beta = execution_from_dict(execution_to_dict(alpha))
        assert executions_equivalent(alpha, beta)
        delays_a = sorted(r.delay for r in alpha.message_records().values())
        delays_b = sorted(r.delay for r in beta.message_records().values())
        assert delays_a == pytest.approx(delays_b)

    def test_echo_payloads_roundtrip(self):
        from repro.delays.bounds import no_bounds
        from repro.delays.distributions import Constant
        from repro.delays.system import System

        topo = star(4)
        system = System.uniform(topo, no_bounds())
        samplers = {link: Constant(1.0) for link in topo.links}
        sim = NetworkSimulator(system, samplers, {p: 0.0 for p in topo.nodes})
        alpha = sim.run(
            dict(echo_automata(topo, {1: probe_schedule(2, 1.0, 1.0)}))
        )
        beta = execution_from_dict(execution_to_dict(alpha))
        assert executions_equivalent(alpha, beta)

    def test_flood_frozenset_states_roundtrip(self):
        from repro.delays.bounds import no_bounds
        from repro.delays.distributions import Constant
        from repro.delays.system import System

        topo = ring(4)
        system = System.uniform(topo, no_bounds())
        samplers = {link: Constant(1.0) for link in topo.links}
        sim = NetworkSimulator(system, samplers, {p: 0.0 for p in topo.nodes})
        alpha = sim.run(dict(flood_automata(topo, origins=[0, 2])))
        beta = execution_from_dict(execution_to_dict(alpha))
        final = beta.history(1).steps[-1].step.new_state
        assert final == frozenset({0, 2})

    def test_file_roundtrip(self, tmp_path):
        scenario = heterogeneous(ring(4), seed=5)
        alpha = scenario.run()
        path = tmp_path / "trace.json"
        save_execution(alpha, path)
        beta = load_execution(path)
        assert executions_equivalent(alpha, beta)

    def test_synchronization_identical_after_reload(self, tmp_path):
        """Golden-trace property: reloaded executions synchronize
        bit-for-bit identically."""
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=9)
        alpha = scenario.run()
        path = tmp_path / "trace.json"
        save_execution(alpha, path)
        beta = load_execution(path)
        sync = ClockSynchronizer(scenario.system)
        a = sync.from_execution(alpha)
        b = sync.from_execution(beta)
        assert a.precision == b.precision
        assert a.corrections == b.corrections


class TestErrorHandling:
    def test_unserializable_payload_rejected(self):
        class Weird:
            pass

        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        # Corrupt a payload in-memory by rebuilding a message... easier:
        # directly check the codec boundary.
        from repro.analysis.trace import _encode_value

        with pytest.raises(TraceError, match="not trace-serializable"):
            _encode_value(Weird())

    def test_version_mismatch_rejected(self):
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        data = execution_to_dict(alpha)
        data["version"] = 999
        with pytest.raises(TraceError, match="version"):
            execution_from_dict(data)

    def test_unknown_tags_rejected(self):
        from repro.analysis.trace import _decode_event, _decode_value

        with pytest.raises(TraceError):
            _decode_value({"__t__": "mystery"})
        with pytest.raises(TraceError):
            _decode_event({"kind": "mystery"})

    def test_output_is_plain_json(self, tmp_path):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=2)
        path = tmp_path / "trace.json"
        save_execution(scenario.run(), path)
        data = json.loads(path.read_text())  # must parse as vanilla JSON
        assert data["version"] == 1
        assert len(data["histories"]) == 4


class TestTelemetryTrace:
    """Trace v2: the optional telemetry block added for protocol telemetry."""

    @pytest.fixture()
    def captured(self):
        from repro.obs import FlowLog, recording
        from repro.obs.timeline import replay_online

        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=7)
        with recording() as recorder:
            flow_log = FlowLog()
            recorder.add_observer(flow_log)
            alpha = scenario.run()
            replay = replay_online(scenario.system, alpha)
        return scenario, alpha, flow_log, replay.timeline

    def test_telemetry_free_save_stays_version_1(self):
        from repro.analysis.trace import telemetry_to_dict

        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        assert telemetry_to_dict() is None
        assert execution_to_dict(alpha)["version"] == 1

    def test_round_trip_with_telemetry(self, captured, tmp_path):
        from repro.analysis.trace import (
            load_execution_with_telemetry,
            telemetry_to_dict,
        )

        scenario, alpha, flow_log, timeline = captured
        path = tmp_path / "trace.json"
        telemetry = telemetry_to_dict(flow_log=flow_log, timeline=timeline)
        save_execution(alpha, path, telemetry=telemetry)
        data = json.loads(path.read_text())
        assert data["version"] == 2

        beta, loaded = load_execution_with_telemetry(path)
        assert executions_equivalent(alpha, beta)
        assert len(loaded["messages"]) == len(flow_log.records())
        assert set(loaded["timeseries"]) == set(timeline.names())

    def test_plain_loader_ignores_telemetry(self, captured, tmp_path):
        from repro.analysis.trace import telemetry_to_dict

        _, alpha, flow_log, _ = captured
        path = tmp_path / "trace.json"
        save_execution(
            alpha, path, telemetry=telemetry_to_dict(flow_log=flow_log)
        )
        beta = load_execution(path)
        assert executions_equivalent(alpha, beta)

    def test_v1_file_loads_with_none_telemetry(self, tmp_path):
        from repro.analysis.trace import load_execution_with_telemetry

        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        path = tmp_path / "v1.json"
        save_execution(alpha, path)
        beta, telemetry = load_execution_with_telemetry(path)
        assert telemetry is None
        assert executions_equivalent(alpha, beta)

    def test_monitors_pass_on_reloaded_execution(self, captured, tmp_path):
        from repro.analysis.trace import telemetry_to_dict
        from repro.obs.monitor import MonitorSuite

        scenario, alpha, flow_log, timeline = captured
        path = tmp_path / "trace.json"
        save_execution(
            alpha, path,
            telemetry=telemetry_to_dict(flow_log=flow_log, timeline=timeline),
        )
        beta = load_execution(path)
        result = ClockSynchronizer(scenario.system).from_execution(beta)
        suite = MonitorSuite()
        suite.check_final(scenario.system, result, beta)
        assert suite.ok, [v.message for v in suite.violations]
