"""Tests for execution-trace serialization (repro.analysis.trace)."""

import json

import pytest

from repro.analysis.trace import (
    TraceError,
    execution_from_dict,
    execution_to_dict,
    load_execution,
    save_execution,
)
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import ring, star
from repro.model.execution import executions_equivalent
from repro.sim.network import NetworkSimulator
from repro.sim.protocols import echo_automata, flood_automata, probe_schedule
from repro.workloads.scenarios import bounded_uniform, heterogeneous

from conftest import make_two_node_execution


class TestRoundTrip:
    def test_hand_built_execution(self):
        alpha = make_two_node_execution(3.0, 7.0, [2.0, 2.5], [1.5])
        beta = execution_from_dict(execution_to_dict(alpha))
        assert beta.start_times() == alpha.start_times()
        assert executions_equivalent(alpha, beta)
        assert len(beta.message_records()) == 3

    def test_simulated_probe_execution(self):
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=12)
        alpha = scenario.run()
        beta = execution_from_dict(execution_to_dict(alpha))
        assert executions_equivalent(alpha, beta)
        delays_a = sorted(r.delay for r in alpha.message_records().values())
        delays_b = sorted(r.delay for r in beta.message_records().values())
        assert delays_a == pytest.approx(delays_b)

    def test_echo_payloads_roundtrip(self):
        from repro.delays.bounds import no_bounds
        from repro.delays.distributions import Constant
        from repro.delays.system import System

        topo = star(4)
        system = System.uniform(topo, no_bounds())
        samplers = {link: Constant(1.0) for link in topo.links}
        sim = NetworkSimulator(system, samplers, {p: 0.0 for p in topo.nodes})
        alpha = sim.run(
            dict(echo_automata(topo, {1: probe_schedule(2, 1.0, 1.0)}))
        )
        beta = execution_from_dict(execution_to_dict(alpha))
        assert executions_equivalent(alpha, beta)

    def test_flood_frozenset_states_roundtrip(self):
        from repro.delays.bounds import no_bounds
        from repro.delays.distributions import Constant
        from repro.delays.system import System

        topo = ring(4)
        system = System.uniform(topo, no_bounds())
        samplers = {link: Constant(1.0) for link in topo.links}
        sim = NetworkSimulator(system, samplers, {p: 0.0 for p in topo.nodes})
        alpha = sim.run(dict(flood_automata(topo, origins=[0, 2])))
        beta = execution_from_dict(execution_to_dict(alpha))
        final = beta.history(1).steps[-1].step.new_state
        assert final == frozenset({0, 2})

    def test_file_roundtrip(self, tmp_path):
        scenario = heterogeneous(ring(4), seed=5)
        alpha = scenario.run()
        path = tmp_path / "trace.json"
        save_execution(alpha, path)
        beta = load_execution(path)
        assert executions_equivalent(alpha, beta)

    def test_synchronization_identical_after_reload(self, tmp_path):
        """Golden-trace property: reloaded executions synchronize
        bit-for-bit identically."""
        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=9)
        alpha = scenario.run()
        path = tmp_path / "trace.json"
        save_execution(alpha, path)
        beta = load_execution(path)
        sync = ClockSynchronizer(scenario.system)
        a = sync.from_execution(alpha)
        b = sync.from_execution(beta)
        assert a.precision == b.precision
        assert a.corrections == b.corrections


class TestErrorHandling:
    def test_unserializable_payload_rejected(self):
        class Weird:
            pass

        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        # Corrupt a payload in-memory by rebuilding a message... easier:
        # directly check the codec boundary.
        from repro.analysis.trace import _encode_value

        with pytest.raises(TraceError, match="not trace-serializable"):
            _encode_value(Weird())

    def test_version_mismatch_rejected(self):
        alpha = make_two_node_execution(0.0, 0.0, [2.0], [])
        data = execution_to_dict(alpha)
        data["version"] = 999
        with pytest.raises(TraceError, match="version"):
            execution_from_dict(data)

    def test_unknown_tags_rejected(self):
        from repro.analysis.trace import _decode_event, _decode_value

        with pytest.raises(TraceError):
            _decode_value({"__t__": "mystery"})
        with pytest.raises(TraceError):
            _decode_event({"kind": "mystery"})

    def test_output_is_plain_json(self, tmp_path):
        scenario = bounded_uniform(ring(4), lb=1.0, ub=3.0, seed=2)
        path = tmp_path / "trace.json"
        save_execution(scenario.run(), path)
        data = json.loads(path.read_text())  # must parse as vanilla JSON
        assert data["version"] == 1
        assert len(data["histories"]) == 4
