"""Chaos acceptance suite (ISSUE 5): injected faults vs the whole stack.

Two contracts, end to end:

* **True positives**: the theorem monitors flag a run whose injected
  faults actually break the delay assumptions (timestamp corruption) --
  either as recorded violations or as the pipeline rejecting the views
  as inconsistent.
* **Zero false positives**: faults that merely remove information
  (message loss, link down, processor crash, duplicate delivery) never
  produce a single monitor violation -- precision degrades, correctness
  does not.

Plus the campaign-level acceptance: a sweep with injected crash + hang
+ flaky cells completes with exactly those cells quarantined and every
other cell byte-identical to the fault-free run.
"""

import signal

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.core.global_estimates import InconsistentViewsError
from repro.faults.chaos import (
    CHAOS_DIR_ENV,
    CRASH_ENV,
    FLAKY_ENV,
    HANG_ENV,
    HANG_SECONDS_ENV,
    chaos_bounded_builder,
    with_fault_plan,
)
from repro.faults.plan import (
    DuplicateDelivery,
    FaultPlan,
    LinkDown,
    MessageLoss,
    ProcessorCrash,
    TimestampCorruption,
)
from repro.graphs.topology import ring
from repro.obs.monitor import MonitorSuite
from repro.runner.cells import CellSpec, CellTask
from repro.workloads.parallel import run_campaign
from repro.workloads.scenarios import bounded_uniform

BENIGN_PLANS = {
    "loss": FaultPlan(faults=(MessageLoss(rate=0.3),), seed=5),
    "link-down": FaultPlan(
        faults=(LinkDown(edge=(0, 1), start=0.0, end=15.0),), seed=5
    ),
    "crash": FaultPlan(
        faults=(ProcessorCrash(processor=2, at=12.0, restart=22.0),), seed=5
    ),
    "duplicates": FaultPlan(faults=(DuplicateDelivery(rate=0.5),), seed=5),
}


def run_monitored(plan, seed=0):
    """Simulate under ``plan`` and run the final-result monitor checks.

    Returns (suite, rejected): ``rejected`` is True when the pipeline
    refused the views as inconsistent (itself a detection).
    """
    scenario = bounded_uniform(
        ring(5), lb=1.0, ub=3.0, probes=3, spacing=2.0, seed=seed
    )
    if plan is not None:
        scenario = scenario.with_faults(plan)
    alpha = scenario.run()
    suite = MonitorSuite(execution=alpha)
    try:
        result = ClockSynchronizer(scenario.system).from_execution(alpha)
    except InconsistentViewsError:
        return suite, True
    suite.check_final(scenario.system, result, alpha)
    return suite, False


class TestNoFalsePositives:
    def test_fault_free_run_is_clean(self):
        suite, rejected = run_monitored(None)
        assert not rejected
        assert suite.ok
        assert suite.checks > 0

    @pytest.mark.parametrize("name", sorted(BENIGN_PLANS))
    def test_information_losing_faults_never_flag(self, name):
        for seed in (0, 1, 2):
            suite, rejected = run_monitored(BENIGN_PLANS[name], seed=seed)
            assert not rejected, f"{name} seed {seed}: views rejected"
            assert suite.ok, (
                f"{name} seed {seed}: false positives "
                f"{[v.message for v in suite.violations]}"
            )


class TestTruePositives:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_corruption_is_always_detected(self, seed):
        plan = FaultPlan(
            faults=(TimestampCorruption(offset=-2.5, edge=(0, 1)),),
            seed=seed,
        )
        suite, rejected = run_monitored(plan, seed=seed)
        assert rejected or suite.violations, (
            "corrupted timestamps were neither rejected as inconsistent "
            "nor flagged by any monitor"
        )

    def test_corruption_marks_run_inadmissible(self):
        plan = FaultPlan(
            faults=(TimestampCorruption(offset=-2.5, edge=(0, 1)),), seed=0
        )
        scenario = bounded_uniform(
            ring(5), lb=1.0, ub=3.0, probes=3, seed=0
        ).with_faults(plan)
        scenario.run()
        assert scenario.last_run_summary.inadmissible


def chaos_tasks(seeds):
    return [
        CellTask(
            spec=CellSpec(
                builder="chaos-bounded", topology=ring(4), seed=seed
            ),
            build=chaos_bounded_builder,
            certify=True,
        )
        for seed in seeds
    ]


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs SIGALRM for timeouts"
)
class TestCampaignAcceptance:
    def test_crash_hang_flaky_quarantined_rest_identical(
        self, monkeypatch, tmp_path
    ):
        """The headline acceptance test: a campaign with an injected
        per-cell crash and timeout completes, with those cells
        quarantined and all other cells byte-identical to the
        fault-free run."""
        for name in (CRASH_ENV, HANG_ENV, HANG_SECONDS_ENV, FLAKY_ENV,
                     CHAOS_DIR_ENV):
            monkeypatch.delenv(name, raising=False)
        seeds = [0, 1, 2, 3, 4, 5]
        control = run_campaign(chaos_tasks(seeds), workers=2)

        monkeypatch.setenv(CRASH_ENV, "2")
        monkeypatch.setenv(HANG_ENV, "4")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        monkeypatch.setenv(FLAKY_ENV, "1")
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        chaotic = run_campaign(
            chaos_tasks(seeds), workers=2, cell_timeout=3.0, retries=1
        )

        assert sorted((f.seed, f.kind) for f in chaotic.quarantined) == [
            (2, "crash"),
            (4, "timeout"),
        ]
        assert all(f.attempts == 2 for f in chaotic.quarantined)
        assert chaotic.retried >= 1  # the flaky cell needed a second round
        expected = [r for r in control.results if r.seed not in (2, 4)]
        assert [r.fingerprint() for r in chaotic.results] == [
            r.fingerprint() for r in expected
        ]

    def test_faulted_campaign_cells_differ_from_fault_free(self):
        """with_fault_plan changes cell identity and results."""
        plan = FaultPlan(faults=(MessageLoss(rate=0.4),), seed=9)
        faulted = [
            CellTask(
                spec=CellSpec(
                    builder="chaos-bounded", topology=ring(4), seed=seed
                ),
                build=with_fault_plan(chaos_bounded_builder, plan),
                certify=True,
            )
            for seed in (0, 1)
        ]
        clean = run_campaign(chaos_tasks([0, 1]))
        lossy = run_campaign(faulted)
        assert [r.precision for r in lossy.results] != [
            r.precision for r in clean.results
        ]
