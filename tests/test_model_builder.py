"""Tests for the execution builders (repro.model.builder)."""

import pytest

from repro.model.builder import (
    ExecutionBuilder,
    build_history,
    two_processor_execution,
)
from repro.model.events import Message


class TestExecutionBuilder:
    def test_fluent_construction(self):
        alpha = (
            ExecutionBuilder()
            .processor("p", start=5.0)
            .processor("q", start=8.0)
            .message("p", "q", send_clock=10.0, delay=2.0)
            .message("q", "p", send_clock=12.0, delay=1.5)
            .build()
        )
        assert alpha.start_time("p") == 5.0
        assert alpha.start_time("q") == 8.0
        delays = sorted(r.delay for r in alpha.message_records().values())
        assert delays == pytest.approx([1.5, 2.0])

    def test_receive_clock_derivation(self):
        """Receive clock = S_p + c + d - S_q, the model identity."""
        alpha = (
            ExecutionBuilder()
            .processor("p", start=5.0)
            .processor("q", start=8.0)
            .message("p", "q", send_clock=10.0, delay=2.0)
            .build()
        )
        view_q = alpha.view("q")
        (uid,) = view_q.receive_clock_times()
        assert view_q.receive_clock_times()[uid] == pytest.approx(
            5.0 + 10.0 + 2.0 - 8.0
        )

    def test_in_flight_messages_allowed(self):
        alpha = (
            ExecutionBuilder()
            .processor("p", start=0.0)
            .processor("q", start=0.0)
            .in_flight_message("p", "q", send_clock=5.0)
            .build()
        )
        assert alpha.message_records() == {}
        assert len(alpha.view("p").sent_messages()) == 1

    def test_payloads_carried(self):
        alpha = (
            ExecutionBuilder()
            .processor(0, start=0.0)
            .processor(1, start=0.0)
            .message(0, 1, send_clock=1.0, delay=1.0, payload=("hello", 3))
            .build()
        )
        (record,) = alpha.message_records().values()
        assert record.message.payload == ("hello", 3)

    def test_duplicate_processor_rejected(self):
        builder = ExecutionBuilder().processor(0, start=0.0)
        with pytest.raises(ValueError, match="already"):
            builder.processor(0, start=1.0)

    def test_undeclared_processor_rejected(self):
        builder = ExecutionBuilder().processor(0, start=0.0)
        with pytest.raises(ValueError, match="not declared"):
            builder.message(0, 1, send_clock=1.0, delay=1.0)
        with pytest.raises(ValueError, match="not declared"):
            builder.in_flight_message(7, 0, send_clock=1.0)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError, match="no processors"):
            ExecutionBuilder().build()

    def test_negative_delay_constructs_but_detected_by_systems(self):
        """The builder is ground-truth-faithful: it can express a
        physically impossible execution; admissibility checks catch it."""
        from repro.delays.bounds import no_bounds
        from repro.delays.system import System
        from repro.graphs.topology import line

        alpha = (
            ExecutionBuilder()
            .processor(0, start=0.0)
            .processor(1, start=0.0)
            .message(0, 1, send_clock=10.0, delay=-1.0)
            .build()
        )
        system = System.uniform(line(2), no_bounds())
        assert not system.is_admissible(alpha)


class TestBuildHistory:
    def test_simultaneous_recv_and_send_ordering(self):
        """A receive and a send at the same clock: timer ordered last."""
        m_in = Message(sender=1, receiver=0)
        m_out = Message(sender=0, receiver=1)
        history = build_history(
            0, start=2.0, sends=[(5.0, m_out)], receives=[(5.0, m_in)]
        )
        history.validate()
        kinds = [type(ts.step.interrupt).__name__ for ts in history.steps]
        assert kinds == ["StartEvent", "MessageReceiveEvent", "TimerEvent"]

    def test_multiple_sends_same_clock_batched(self):
        msgs = [Message(sender=0, receiver=1) for _ in range(3)]
        history = build_history(
            0, start=0.0, sends=[(5.0, m) for m in msgs], receives=[]
        )
        timer_steps = [
            ts for ts in history.steps if ts.step.sends
        ]
        assert len(timer_steps) == 1
        assert len(timer_steps[0].step.sends) == 3


class TestTwoProcessorExecution:
    def test_defaults(self):
        alpha = two_processor_execution(0.0, 0.0, [1.0, 2.0], [1.5])
        assert len(alpha.message_records()) == 3
        sends = alpha.view(0).send_clock_times()
        assert sorted(sends.values()) == [10.0, 20.0]

    def test_custom_send_clocks(self):
        alpha = two_processor_execution(
            0.0, 0.0, [1.0], [], send_clocks_p=[3.5]
        )
        assert list(alpha.view(0).send_clock_times().values()) == [3.5]
