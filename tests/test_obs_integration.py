"""Instrumentation integration: sim, pipeline, online, EngineStats.

Checks that the hot paths report into an enabled recorder, that the
refactored :class:`EngineStats` keeps its original shape, is thread-safe
and mergeable, and that the no-op default leaves results untouched.
"""

import threading

import pytest

from repro.core.synchronizer import ClockSynchronizer
from repro.engine.stats import EngineStats
from repro.extensions.online import OnlineSynchronizer
from repro.graphs import ring
from repro.obs import MetricsRegistry, recording
from repro.obs.report import aggregate_spans
from repro.workloads.scenarios import bounded_uniform


def _scenario(n=5, seed=0):
    return bounded_uniform(ring(n), lb=1.0, ub=3.0, seed=seed)


class TestSimInstrumentation:
    def test_run_summary_matches_metrics(self):
        scenario = _scenario()
        with recording() as rec:
            alpha = scenario.run()
        summary = scenario.last_run_summary
        assert summary is not None
        assert summary.events_processed > 0
        assert summary.messages_delivered == len(alpha.message_records())
        assert summary.messages_sent == summary.messages_delivered
        assert summary.messages_dropped == 0
        assert summary.peak_queue_depth >= 1
        registry = rec.registry
        assert registry.counter("sim.events_processed").value == (
            summary.events_processed
        )
        assert registry.counter("sim.messages.delivered").value == (
            summary.messages_delivered
        )
        assert registry.gauge("sim.scheduler.peak_queue_depth").value == (
            summary.peak_queue_depth
        )
        depth = registry.histogram("sim.scheduler.queue_depth")
        assert depth.count == summary.events_processed

    def test_loss_shows_up_as_dropped(self):
        from repro.delays.bounds import lower_bounds_only
        from repro.delays.distributions import UniformDelay
        from repro.delays.system import System
        from repro.sim.network import NetworkSimulator
        from repro.sim.protocols import probe_automata, probe_schedule

        topo = ring(4)
        system = System.uniform(topo, lower_bounds_only(1.0))
        samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
        starts = {p: 0.0 for p in topo.nodes}
        loss = {link: 1.0 for link in topo.links}  # lose everything
        sim = NetworkSimulator(system, samplers, starts, seed=1, loss=loss)
        sim.run(probe_automata(topo, probe_schedule(2, 1.0, 1.0)))
        summary = sim.last_run_summary
        assert summary.messages_sent > 0
        assert summary.messages_dropped == summary.messages_sent
        assert summary.messages_delivered == 0

    def test_summary_available_without_recorder(self):
        scenario = _scenario()
        scenario.run()
        assert scenario.last_run_summary.events_processed > 0


class TestPipelineInstrumentation:
    def test_spans_nest_sim_pipeline_engine(self):
        scenario = _scenario()
        with recording() as rec:
            alpha = scenario.run()
            result = ClockSynchronizer(scenario.system).from_execution(alpha)
        names = {s.name for s in rec.tracer.finished()}
        assert {"sim.run", "pipeline.from_views", "pipeline.shifts",
                "engine.global_estimates", "engine.shifts"} <= names
        root = aggregate_spans(rec.tracer.finished())
        pipeline = root.children["pipeline.from_views"]
        assert "pipeline.global_estimates" in pipeline.children
        assert (
            "engine.global_estimates"
            in pipeline.children["pipeline.global_estimates"].children
        )
        gauges = rec.registry
        assert gauges.gauge("pipeline.precision").value == pytest.approx(
            result.precision
        )
        spread = max(result.corrections.values()) - min(
            result.corrections.values()
        )
        assert gauges.gauge("pipeline.correction_spread").value == (
            pytest.approx(spread)
        )

    def test_noop_recorder_leaves_results_identical(self):
        scenario = _scenario(seed=3)
        alpha = scenario.run()
        plain = ClockSynchronizer(scenario.system).from_execution(alpha)
        with recording():
            traced = ClockSynchronizer(scenario.system).from_execution(alpha)
        assert plain.precision == traced.precision
        assert plain.corrections == traced.corrections


class TestOnlineInstrumentation:
    def test_cache_hits_and_recompute_counters(self):
        scenario = _scenario(seed=2)
        views = scenario.run().views()
        with recording() as rec:
            online = OnlineSynchronizer(scenario.system, backend="numpy")
            ingested = online.ingest_views(views)
            online.result()
            online.result()  # cached
            # a slightly tighter extreme forces a refresh; the numpy
            # engine repairs the cached closure incrementally
            edge = next(iter(scenario.system.topology.links))
            current = online.edge_stats(edge[0], edge[1]).min_delay
            online.observe(edge[0], edge[1], current - 0.01)
            online.result()
        registry = rec.registry
        assert registry.counter("online.observations").value == ingested + 1
        assert registry.counter("online.cache_hits").value == 1
        assert registry.counter("online.full_recomputes").value == 1
        assert registry.counter("online.incremental_repairs").value == 1


class TestEngineStats:
    def test_snapshot_shape_unchanged(self):
        stats = EngineStats()
        with stats.stage("shifts"):
            pass
        stats.count("shifts.nudge_retries", 2)
        snap = stats.snapshot()
        assert set(snap) == {"timings", "counters"}
        assert set(snap["timings"]) == {"shifts"}
        assert snap["counters"] == {"shifts.calls": 1,
                                    "shifts.nudge_retries": 2}
        assert stats.total_seconds() == sum(snap["timings"].values())

    def test_reset_zeroes_everything(self):
        stats = EngineStats()
        with stats.stage("a"):
            pass
        stats.reset()
        assert stats.timings == {}
        assert stats.counters == {}

    def test_thread_safety_of_interleaved_stages(self):
        stats = EngineStats()

        def work():
            for _ in range(200):
                with stats.stage("stage"):
                    pass
                stats.count("events")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.counters["stage.calls"] == 1600
        assert stats.counters["events"] == 1600

    def test_merge_aggregates_across_engines(self):
        a, b = EngineStats(), EngineStats()
        with a.stage("shifts"):
            pass
        with b.stage("shifts"):
            pass
        b.count("relaxed", 3)
        a.merge(b)
        assert a.counters["shifts.calls"] == 2
        assert a.counters["relaxed"] == 3
        assert a.timings["shifts"] >= b.timings["shifts"]
        # b is untouched
        assert b.counters["shifts.calls"] == 1

    def test_merge_shared_registry_raises(self):
        registry = MetricsRegistry()
        a = EngineStats(registry=registry)
        b = EngineStats(registry=registry)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_enabled_recorder_shares_registry_and_emits_spans(self):
        with recording() as rec:
            stats = EngineStats()
            with stats.stage("global_estimates"):
                pass
        assert stats.registry is rec.registry
        assert (
            rec.registry.counter("engine.global_estimates.calls").value == 1
        )
        assert [s.name for s in rec.tracer.finished()] == [
            "engine.global_estimates"
        ]

    def test_disabled_recorder_keeps_private_registry(self):
        a, b = EngineStats(), EngineStats()
        assert a.registry is not b.registry
