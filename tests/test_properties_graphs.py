"""Property-based tests for the graph algorithms (hypothesis).

Karp's algorithm is checked against exhaustive cycle enumeration and
shortest paths against networkx on random weighted digraphs.
"""

import networkx as nx
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import (
    cycle_mean,
    enumerate_simple_cycle_means,
    maximum_cycle_mean,
    minimum_cycle_mean,
)
from repro.graphs.shortest_paths import (
    NegativeCycleError,
    bellman_ford,
    floyd_warshall,
    johnson,
)

# Integer-valued weights keep float arithmetic exact, so "negative cycle"
# means the same thing to our tolerance-based detector (which deliberately
# ignores epsilon-scale cycles; see shortest_paths.py) and to networkx's
# strict one.  Epsilon-scale behaviour is covered by unit tests instead.
weights = st.integers(min_value=-5, max_value=5).map(float)


@st.composite
def digraphs(draw, max_nodes=7, allow_negative=True):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                w = draw(weights)
                if not allow_negative:
                    w = abs(w)
                g.add_edge(u, v, w)
    return g


class TestKarpProperties:
    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_min_cycle_mean_matches_enumeration(self, g):
        result = minimum_cycle_mean(g)
        cycles = enumerate_simple_cycle_means(g)
        if not cycles:
            assert result.is_acyclic
        else:
            expected = min(m for m, _ in cycles)
            assert abs(result.mean - expected) < 1e-7
            assert abs(cycle_mean(g, result.cycle) - result.mean) < 1e-7

    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_max_is_negated_min(self, g):
        mx = maximum_cycle_mean(g)
        neg = WeightedDigraph()
        for node in g.nodes:
            neg.add_node(node)
        for u, v, w in g.edges():
            neg.add_edge(u, v, -w)
        mn = minimum_cycle_mean(neg)
        if mx.is_acyclic:
            assert mn.is_acyclic
        else:
            assert abs(mx.mean + mn.mean) < 1e-9

    @given(digraphs(), st.floats(min_value=-3.0, max_value=3.0,
                                 allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_uniform_weight_shift_moves_mean_by_same(self, g, delta):
        base = minimum_cycle_mean(g)
        shifted = WeightedDigraph()
        for node in g.nodes:
            shifted.add_node(node)
        for u, v, w in g.edges():
            shifted.add_edge(u, v, w + delta)
        after = minimum_cycle_mean(shifted)
        if base.is_acyclic:
            assert after.is_acyclic
        else:
            assert abs(after.mean - (base.mean + delta)) < 1e-7


class TestShortestPathProperties:
    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_bellman_ford_matches_networkx(self, g):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes)
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        try:
            expected = nx.single_source_bellman_ford_path_length(nxg, 0)
            has_negative_cycle = False
        except nx.NetworkXUnbounded:
            has_negative_cycle = True
        if has_negative_cycle:
            try:
                bellman_ford(g, 0)
                raised = False
            except NegativeCycleError:
                raised = True
            assert raised
        else:
            dist, _ = bellman_ford(g, 0)
            for node, d in expected.items():
                assert abs(dist[node] - d) < 1e-7

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_johnson_matches_floyd_warshall(self, g):
        try:
            fw = floyd_warshall(g)
        except NegativeCycleError:
            return  # covered by the bellman-ford property
        jo = johnson(g)
        for u in g.nodes:
            for v in g.nodes:
                a, b = fw[u][v], jo[u][v]
                if a == float("inf") or b == float("inf"):
                    assert a == b
                else:
                    assert abs(a - b) < 1e-6
