"""Robust campaign execution (repro.runner.executor + parallel runner).

Worker death, hung cells, transient failures and cache corruption must
degrade to quarantined/retried cells and counters -- never to a hung
``imap_unordered`` or an aborted sweep.  The misbehaving cells come from
:mod:`repro.faults.chaos`, whose builders read their schedule from
environment variables (so they misbehave inside pool workers too).
"""

import json
import signal

import pytest

from repro.faults.chaos import (
    CHAOS_DIR_ENV,
    CRASH_ENV,
    FLAKY_ENV,
    HANG_ENV,
    HANG_SECONDS_ENV,
    chaos_bounded_builder,
)
from repro.graphs.topology import ring
from repro.runner.cache import CACHE_VERSION, ResultCache, cell_cache_key
from repro.runner.cells import CellSpec, CellTask
from repro.runner.executor import (
    CellFailure,
    ProcessExecutor,
    RobustProcessExecutor,
    RobustSequentialExecutor,
    SequentialExecutor,
    resolve_start_method,
)
from repro.workloads.parallel import run_campaign

HAS_SIGALRM = hasattr(signal, "SIGALRM")


def chaos_tasks(seeds, certify=True):
    return [
        CellTask(
            spec=CellSpec(
                builder="chaos-bounded", topology=ring(4), seed=seed
            ),
            build=chaos_bounded_builder,
            certify=certify,
        )
        for seed in seeds
    ]


def clean_env(monkeypatch):
    for name in (CRASH_ENV, HANG_ENV, HANG_SECONDS_ENV, FLAKY_ENV,
                 CHAOS_DIR_ENV):
        monkeypatch.delenv(name, raising=False)


class TestStartMethod:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="not supported"):
            resolve_start_method("teleport")

    def test_honors_explicit_spawn(self):
        assert resolve_start_method("spawn") == "spawn"

    def test_defaults_to_fork_where_available(self):
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            assert resolve_start_method() == "fork"
        else:  # pragma: no cover - non-POSIX platforms
            assert resolve_start_method() == "spawn"


class TestSpawnPath:
    def test_process_executor_spawn_matches_sequential(self, monkeypatch):
        """Module-level builders travel by pickle under spawn."""
        clean_env(monkeypatch)
        tasks = chaos_tasks([0, 1])
        sequential = SequentialExecutor().execute(tasks)
        spawned = ProcessExecutor(2, start_method="spawn").execute(tasks)
        # Fingerprints exclude wall-clock seconds, which legitimately
        # differ between runs.
        assert [o.result.fingerprint() for o in spawned] == [
            o.result.fingerprint() for o in sequential
        ]

    def test_robust_executor_spawn_path(self, monkeypatch):
        clean_env(monkeypatch)
        tasks = chaos_tasks([0, 1])
        outcomes = RobustProcessExecutor(
            2, start_method="spawn"
        ).execute(tasks)
        assert not any(isinstance(o, CellFailure) for o in outcomes)
        assert [o.result.seed for o in outcomes] == [0, 1]


class TestWorkerDeath:
    def test_sigkilled_worker_is_quarantined_not_hung(self, monkeypatch):
        """BrokenProcessPool containment: the culprit cell is identified,
        innocent bystanders still complete."""
        clean_env(monkeypatch)
        monkeypatch.setenv(CRASH_ENV, "1")
        tasks = chaos_tasks([0, 1, 2])
        outcomes = RobustProcessExecutor(2).execute(tasks)
        kinds = [
            o.kind if isinstance(o, CellFailure) else "ok" for o in outcomes
        ]
        assert kinds == ["ok", "crash", "ok"]
        failure = outcomes[1]
        assert failure.seed == 1
        assert "died" in failure.message

    def test_crash_failure_serializes(self, monkeypatch):
        clean_env(monkeypatch)
        monkeypatch.setenv(CRASH_ENV, "0")
        (outcome,) = [
            o
            for o in RobustProcessExecutor(2).execute(chaos_tasks([0, 3]))
            if isinstance(o, CellFailure)
        ]
        record = outcome.to_json()
        assert record["type"] == "campaign.cell.failure"
        assert record["kind"] == "crash"


@pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
class TestTimeouts:
    def test_hung_cell_times_out_sequentially(self, monkeypatch):
        clean_env(monkeypatch)
        monkeypatch.setenv(HANG_ENV, "0")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        outcomes = RobustSequentialExecutor(timeout=0.3).execute(
            chaos_tasks([0, 1])
        )
        assert isinstance(outcomes[0], CellFailure)
        assert outcomes[0].kind == "timeout"
        assert not isinstance(outcomes[1], CellFailure)

    def test_hung_cell_times_out_in_worker(self, monkeypatch):
        clean_env(monkeypatch)
        monkeypatch.setenv(HANG_ENV, "1")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        outcomes = RobustProcessExecutor(2, timeout=0.5).execute(
            chaos_tasks([0, 1, 2])
        )
        kinds = [
            o.kind if isinstance(o, CellFailure) else "ok" for o in outcomes
        ]
        assert kinds == ["ok", "timeout", "ok"]


class TestErrors:
    def test_raising_cell_is_quarantined_as_error(self, monkeypatch):
        clean_env(monkeypatch)
        monkeypatch.setenv(FLAKY_ENV, "0")  # no CHAOS_DIR: raises every time
        outcomes = RobustSequentialExecutor().execute(chaos_tasks([0, 1]))
        assert isinstance(outcomes[0], CellFailure)
        assert outcomes[0].kind == "error"
        assert "FlakyCellError" in outcomes[0].message
        assert not isinstance(outcomes[1], CellFailure)


class TestCampaignRetry:
    def test_flaky_cell_recovers_on_retry(self, monkeypatch, tmp_path):
        clean_env(monkeypatch)
        monkeypatch.setenv(FLAKY_ENV, "1")
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        outcome = run_campaign(chaos_tasks([0, 1, 2]), workers=1, retries=1)
        assert not outcome.quarantined
        assert outcome.retried == 1
        assert [r.seed for r in outcome.results] == [0, 1, 2]

    def test_exhausted_retries_quarantine(self, monkeypatch):
        clean_env(monkeypatch)
        monkeypatch.setenv(FLAKY_ENV, "1")  # no CHAOS_DIR: never recovers
        outcome = run_campaign(chaos_tasks([0, 1, 2]), workers=1, retries=1)
        assert len(outcome.quarantined) == 1
        failure = outcome.quarantined[0]
        assert failure.seed == 1
        assert failure.attempts == 2
        assert [r.seed for r in outcome.results] == [0, 2]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_campaign(chaos_tasks([0]), retries=-1)

    def test_quarantine_preserves_surviving_cells(self, monkeypatch):
        """Acceptance: surviving cells are byte-identical to a fault-free
        run of the same grid."""
        clean_env(monkeypatch)
        control = run_campaign(chaos_tasks([0, 1, 2, 3]), workers=1)
        monkeypatch.setenv(FLAKY_ENV, "2")  # never recovers
        chaotic = run_campaign(
            chaos_tasks([0, 1, 2, 3]), workers=1, retries=1
        )
        assert [f.seed for f in chaotic.quarantined] == [2]
        expected = [r for r in control.results if r.seed != 2]
        assert [r.fingerprint() for r in chaotic.results] == [
            r.fingerprint() for r in expected
        ]


class TestCacheCorruption:
    def put_one(self, cache, monkeypatch):
        clean_env(monkeypatch)
        (task,) = chaos_tasks([0])
        key = cell_cache_key(task)
        outcome = run_campaign([task], cache_dir=str(cache.directory))
        assert cache.get(key) is not None
        return key, outcome.results[0]

    def test_truncated_entry_counts_as_corrupt(self, monkeypatch, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = self.put_one(cache, monkeypatch)
        path = cache.directory / f"{key}.json"
        path.write_text(path.read_text()[:40])  # truncated write
        assert cache.get(key) is None
        assert cache.corrupt_entries == 1

    def test_non_record_entry_counts_as_corrupt(self, monkeypatch, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = self.put_one(cache, monkeypatch)
        (cache.directory / f"{key}.json").write_text('["not", "a", "dict"]')
        assert cache.get(key) is None
        assert cache.corrupt_entries == 1

    def test_version_mismatch_is_a_plain_miss(self, monkeypatch, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = self.put_one(cache, monkeypatch)
        path = cache.directory / f"{key}.json"
        record = json.loads(path.read_text())
        record["version"] = CACHE_VERSION - 1
        path.write_text(json.dumps(record))
        assert cache.get(key) is None
        assert cache.corrupt_entries == 0  # deliberate format change

    def test_campaign_surfaces_corruption_count(self, monkeypatch, tmp_path):
        clean_env(monkeypatch)
        tasks = chaos_tasks([0, 1])
        first = run_campaign(tasks, cache_dir=str(tmp_path))
        key = cell_cache_key(tasks[0])
        (tmp_path / f"{key}.json").write_text("{garbage")
        again = run_campaign(tasks, cache_dir=str(tmp_path))
        assert again.cache_corrupt == 1
        assert again.cache_hits == 1  # the intact entry still hit
        assert [r.fingerprint() for r in again.results] == [
            r.fingerprint() for r in first.results
        ]

    def test_corruption_warning_is_logged(self, monkeypatch, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        key, _ = self.put_one(cache, monkeypatch)
        (cache.directory / f"{key}.json").write_text("{garbage")
        with caplog.at_level("WARNING", logger="repro.runner.cache"):
            cache.get(key)
        # The structured event mirrors to stdlib logging, so ad-hoc
        # `--log-level` style configuration still sees corruption.
        assert any(
            "cache.corrupt_entry" in r.message for r in caplog.records
        )
