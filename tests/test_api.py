"""Tests for the top-level facade: repro.run and repro.sweep."""

import pytest

import repro
from repro import (
    BoundedDelay,
    ClockSynchronizer,
    NetworkSimulator,
    System,
    UniformDelay,
    draw_start_times,
    probe_automata,
    probe_schedule,
    ring,
)
from repro.analysis.reporting import Table
from repro.core.optimality import CertificateError
from repro.workloads import bounded_uniform


def simulate(n=5, seed=7):
    topo = ring(n)
    system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
    starts = draw_start_times(topo.nodes, max_skew=10.0, seed=seed)
    sim = NetworkSimulator(system, samplers, starts, seed=seed)
    alpha = sim.run(probe_automata(topo, probe_schedule(3, 20.0, 5.0)))
    return system, alpha


def bounded_builder(topology, seed):
    return bounded_uniform(topology, lb=1.0, ub=3.0, seed=seed)


class TestRun:
    def test_exported_from_top_level(self):
        assert repro.run is not None
        assert repro.sweep is not None
        assert "run" in repro.__all__ and "sweep" in repro.__all__

    def test_matches_synchronizer_path(self):
        system, alpha = simulate()
        facade = repro.run(system, alpha)
        manual = ClockSynchronizer(system).from_execution(alpha)
        assert facade.precision == pytest.approx(manual.precision)
        assert facade.corrections == manual.corrections

    def test_accepts_views_mapping(self):
        system, alpha = simulate()
        from_views = repro.run(system, alpha.views())
        from_execution = repro.run(system, alpha)
        assert from_views.precision == from_execution.precision

    def test_certifies_by_default(self, monkeypatch):
        system, alpha = simulate()
        calls = []

        def fake_verify(result, **kwargs):
            calls.append(result)

        monkeypatch.setattr(repro.api, "verify_certificate", fake_verify)
        repro.run(system, alpha)
        assert len(calls) == 1
        repro.run(system, alpha, certify=False)
        assert len(calls) == 1  # not called again

    def test_certification_failure_propagates(self, monkeypatch):
        system, alpha = simulate()

        def failing_verify(result, **kwargs):
            raise CertificateError("forced")

        monkeypatch.setattr(repro.api, "verify_certificate", failing_verify)
        with pytest.raises(CertificateError, match="forced"):
            repro.run(system, alpha)

    def test_backend_and_options_are_keyword_only(self):
        system, alpha = simulate()
        with pytest.raises(TypeError):
            repro.run(system, alpha, "numpy")  # noqa: too many positionals

    def test_explicit_backend_is_used(self):
        system, alpha = simulate()
        result = repro.run(system, alpha, backend="python")
        assert result.precision == repro.run(system, alpha).precision


class TestSweep:
    def test_returns_summary_table(self):
        table = repro.sweep(
            {"bounded": bounded_builder}, [ring(4)], seeds=range(2)
        )
        assert isinstance(table, Table)
        assert len(table.rows) == 1
        assert table.headers[0] == "scenario"

    def test_accepts_pairs_and_mappings(self):
        from_mapping = repro.sweep(
            {"bounded": bounded_builder}, [ring(4)], seeds=range(2)
        )
        from_pairs = repro.sweep(
            [("bounded", bounded_builder)], [ring(4)], seeds=range(2)
        )
        assert from_pairs.format() == from_mapping.format()

    def test_workers_do_not_change_the_table(self):
        kwargs = dict(seeds=range(2))
        seq = repro.sweep(
            {"bounded": bounded_builder}, [ring(4), ring(6)], **kwargs
        )
        pool = repro.sweep(
            {"bounded": bounded_builder}, [ring(4), ring(6)],
            workers=2, **kwargs
        )
        assert pool.format() == seq.format()

    def test_shard_and_cache_pass_through(self, tmp_path):
        table = repro.sweep(
            {"bounded": bounded_builder},
            [ring(4)],
            seeds=range(2),
            shard="1/1",
            cache_dir=str(tmp_path),
        )
        assert len(table.rows) == 1
        assert len(list(tmp_path.glob("*.json"))) == 2  # both cells cached

    def test_matches_campaign_api(self):
        from repro.workloads import Campaign

        campaign = Campaign(seeds=range(2))
        campaign.add("bounded", bounded_builder)
        assert repro.sweep(
            {"bounded": bounded_builder}, [ring(4)], seeds=range(2)
        ).format() == campaign.run([ring(4)]).format()
