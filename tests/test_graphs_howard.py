"""Unit and cross-validation tests for Howard's algorithm
(repro.graphs.howard)."""

import random

import pytest

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.howard import (
    maximum_cycle_mean_howard,
    minimum_cycle_mean_howard,
)
from repro.graphs.karp import cycle_mean, maximum_cycle_mean, minimum_cycle_mean


def random_graph(rng: random.Random, n: int, density: float = 0.4):
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                g.add_edge(u, v, rng.uniform(-5.0, 5.0))
    return g


class TestKnownInstances:
    def test_two_cycles(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 2.0), (1, 0, 4.0), (1, 2, 1.0), (2, 0, 3.0)]
        )
        assert minimum_cycle_mean_howard(g).mean == pytest.approx(2.0)
        assert maximum_cycle_mean_howard(g).mean == pytest.approx(3.0)

    def test_self_loop(self):
        g = WeightedDigraph.from_edges(
            [(0, 0, -7.0), (0, 1, 1.0), (1, 0, 1.0)]
        )
        assert minimum_cycle_mean_howard(g).mean == pytest.approx(-7.0)

    def test_acyclic(self):
        g = WeightedDigraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert minimum_cycle_mean_howard(g).is_acyclic

    def test_empty(self):
        assert minimum_cycle_mean_howard(WeightedDigraph()).is_acyclic

    def test_witness_cycle_achieves_mean(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 2.0), (1, 0, 4.0), (1, 2, 1.0), (2, 0, 3.0)]
        )
        result = minimum_cycle_mean_howard(g)
        assert cycle_mean(g, result.cycle) == pytest.approx(result.mean)

    def test_multichain_policy_instance(self):
        """Two disjoint-ish cycles joined so the initial greedy policy is
        multichain: forces the gain-improvement step."""
        g = WeightedDigraph.from_edges(
            [
                (0, 1, 10.0),
                (1, 0, 10.0),  # expensive cycle, mean 10
                (2, 3, -1.0),
                (3, 2, -1.0),  # cheap cycle, mean -1
                (0, 2, 0.0),
                (2, 0, 0.0),  # connectivity
            ]
        )
        assert minimum_cycle_mean_howard(g).mean == pytest.approx(-1.0)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_karp_random(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            g = random_graph(rng, rng.randrange(2, 10))
            karp = minimum_cycle_mean(g)
            howard = minimum_cycle_mean_howard(g)
            if karp.is_acyclic:
                assert howard.is_acyclic
            else:
                assert howard.mean == pytest.approx(karp.mean, abs=1e-7)
                assert cycle_mean(g, howard.cycle) == pytest.approx(
                    howard.mean
                )

    def test_matches_karp_dense_max(self):
        rng = random.Random(77)
        for _ in range(10):
            g = random_graph(rng, 12, density=1.0)
            assert maximum_cycle_mean_howard(g).mean == pytest.approx(
                maximum_cycle_mean(g).mean, abs=1e-7
            )


class TestShiftsIntegration:
    def test_shifts_method_howard_matches_karp(self):
        from repro.core.shifts import shifts
        from repro.core.precision import rho_bar

        rng = random.Random(5)
        for _ in range(10):
            n = rng.randrange(2, 7)
            ms = {}
            starts = [rng.uniform(0, 10) for _ in range(n)]
            for p in range(n):
                for q in range(n):
                    if p != q:
                        ms[(p, q)] = rng.uniform(0, 5) + starts[p] - starts[q]
            # Close under triangle inequality (ms is a path metric).
            for k in range(n):
                for p in range(n):
                    for q in range(n):
                        if len({p, q, k}) == 3:
                            ms[(p, q)] = min(
                                ms[(p, q)], ms[(p, k)] + ms[(k, q)]
                            )
            a = shifts(list(range(n)), ms, method="karp")
            b = shifts(list(range(n)), ms, method="howard")
            assert b.precision == pytest.approx(a.precision, abs=1e-7)
            assert rho_bar(ms, b.corrections) == pytest.approx(
                a.precision, abs=1e-7
            )

    def test_unknown_method_rejected(self):
        from repro.core.shifts import shifts

        with pytest.raises(ValueError, match="method"):
            shifts([0, 1], {(0, 1): 1.0, (1, 0): 1.0}, method="magic")

    def test_synchronizer_accepts_method(self):
        from repro.core.synchronizer import ClockSynchronizer
        from repro.workloads.scenarios import bounded_uniform
        from repro.graphs.topology import ring

        scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=3)
        alpha = scenario.run()
        karp = ClockSynchronizer(scenario.system, method="karp")
        howard = ClockSynchronizer(scenario.system, method="howard")
        a = karp.from_execution(alpha)
        b = howard.from_execution(alpha)
        assert b.precision == pytest.approx(a.precision)
