"""Cross-backend matrix: every cycle-mean backend, every delay model.

The ``method=`` knob must be purely a performance choice: for each
scenario family, all three backends must produce certified results with
identical precision and equally optimal corrections.
"""

import pytest

from repro.core.optimality import verify_certificate
from repro.core.precision import rho_bar
from repro.core.shifts import CYCLE_MEAN_METHODS
from repro.core.synchronizer import ClockSynchronizer
from repro.graphs.topology import ring
from repro.workloads.scenarios import (
    bounded_uniform,
    fully_asynchronous,
    heterogeneous,
    lower_bound_only,
    round_trip_bias,
)

SCENARIOS = {
    "bounded": lambda: bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=5),
    "lower-only": lambda: lower_bound_only(ring(5), lb=1.0, mean_extra=2.0, seed=5),
    "async": lambda: fully_asynchronous(ring(5), mean_delay=2.0, seed=5),
    "bias": lambda: round_trip_bias(ring(5), bias=0.5, seed=5),
    "hetero": lambda: heterogeneous(ring(5), seed=5),
}


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@pytest.mark.parametrize("method", sorted(CYCLE_MEAN_METHODS))
def test_backend_certified_on_every_model(scenario_name, method):
    scenario = SCENARIOS[scenario_name]()
    alpha = scenario.run()
    result = ClockSynchronizer(scenario.system, method=method).from_execution(
        alpha
    )
    verify_certificate(result)
    # Cross-check precision against the default backend.
    reference = ClockSynchronizer(scenario.system).from_execution(alpha)
    assert result.precision == pytest.approx(reference.precision, abs=1e-9)
    # Both correction sets are optimal under the same ms~.
    assert rho_bar(reference.ms_tilde, result.corrections) == pytest.approx(
        reference.precision, abs=1e-7
    )
