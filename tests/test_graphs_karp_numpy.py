"""Tests for the numpy Karp backend (repro.graphs.karp_numpy)."""

import random

import pytest

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.karp import cycle_mean, minimum_cycle_mean
from repro.graphs.karp_numpy import (
    maximum_cycle_mean_numpy,
    minimum_cycle_mean_numpy,
)


def random_graph(rng, n, density=0.4):
    g = WeightedDigraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                g.add_edge(u, v, rng.uniform(-5.0, 5.0))
    return g


class TestKnownInstances:
    def test_two_cycles(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 2.0), (1, 0, 4.0), (1, 2, 1.0), (2, 0, 3.0)]
        )
        assert minimum_cycle_mean_numpy(g).mean == pytest.approx(2.0)
        assert maximum_cycle_mean_numpy(g).mean == pytest.approx(3.0)

    def test_acyclic(self):
        g = WeightedDigraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert minimum_cycle_mean_numpy(g).is_acyclic

    def test_empty(self):
        assert minimum_cycle_mean_numpy(WeightedDigraph()).is_acyclic

    def test_self_loop(self):
        g = WeightedDigraph.from_edges(
            [(0, 0, -7.0), (0, 1, 1.0), (1, 0, 1.0)]
        )
        assert minimum_cycle_mean_numpy(g).mean == pytest.approx(-7.0)

    def test_witness_achieves_mean(self):
        g = WeightedDigraph.from_edges(
            [(0, 1, 2.0), (1, 0, 4.0), (1, 2, 1.0), (2, 0, 3.0)]
        )
        result = minimum_cycle_mean_numpy(g)
        assert cycle_mean(g, result.cycle) == pytest.approx(result.mean)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar_karp(self, seed):
        rng = random.Random(seed)
        for _ in range(30):
            g = random_graph(rng, rng.randrange(2, 10))
            a = minimum_cycle_mean(g)
            b = minimum_cycle_mean_numpy(g)
            if a.is_acyclic:
                assert b.is_acyclic
            else:
                assert b.mean == pytest.approx(a.mean, abs=1e-9)

    def test_dense_large(self):
        rng = random.Random(9)
        g = random_graph(rng, 30, density=1.0)
        a = minimum_cycle_mean(g)
        b = minimum_cycle_mean_numpy(g)
        assert b.mean == pytest.approx(a.mean, abs=1e-9)


class TestShiftsBackend:
    def test_registered_and_consistent(self):
        from repro.core.shifts import CYCLE_MEAN_METHODS, shifts

        assert "karp-numpy" in CYCLE_MEAN_METHODS
        ms = {
            (0, 1): 2.0,
            (1, 2): 2.0,
            (2, 0): 2.0,
            (1, 0): 0.0,
            (2, 1): 0.0,
            (0, 2): 0.0,
        }
        a = shifts([0, 1, 2], ms, method="karp")
        b = shifts([0, 1, 2], ms, method="karp-numpy")
        assert b.precision == pytest.approx(a.precision)
