"""Property-based tests for serialization, online sync and offset intervals."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.system_io import assumption_from_dict, assumption_to_dict
from repro.analysis.trace import execution_from_dict, execution_to_dict
from repro.core.synchronizer import ClockSynchronizer
from repro.delays.bias import RoundTripBias
from repro.delays.bounds import BoundedDelay
from repro.delays.composite import Composite
from repro.delays.system import System
from repro.extensions.online import OnlineSynchronizer
from repro.graphs.topology import line
from repro.model.execution import executions_equivalent

from conftest import make_two_node_execution

starts = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
delays = st.lists(
    st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    min_size=0,
    max_size=4,
)
nonempty_delays = st.lists(
    st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    min_size=1,
    max_size=4,
)


@st.composite
def assumptions(draw, depth=2):
    kind = draw(st.sampled_from(["bounded", "bias"] + (["composite"] if depth else [])))
    if kind == "bounded":
        lb = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        width = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        unbounded = draw(st.booleans())
        ub = float("inf") if unbounded else lb + width
        return BoundedDelay(
            lb_forward=lb, ub_forward=ub, lb_reverse=lb, ub_reverse=ub
        )
    if kind == "bias":
        return RoundTripBias(
            draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        )
    components = draw(
        st.lists(assumptions(depth=depth - 1), min_size=1, max_size=3)
    )
    return Composite.of(*components)


class TestSerializationProperties:
    @given(assumptions())
    @settings(max_examples=60, deadline=None)
    def test_assumption_roundtrip(self, assumption):
        assert assumption_from_dict(assumption_to_dict(assumption)) == assumption

    @given(starts, starts, delays, delays)
    @settings(max_examples=30, deadline=None)
    def test_trace_roundtrip_preserves_everything(self, s_p, s_q, fwd, rev):
        alpha = make_two_node_execution(s_p, s_q, fwd, rev)
        beta = execution_from_dict(execution_to_dict(alpha))
        assert executions_equivalent(alpha, beta)
        assert beta.start_times() == alpha.start_times()
        assert len(beta.message_records()) == len(alpha.message_records())


class TestOnlineProperties:
    @given(starts, starts, nonempty_delays, nonempty_delays)
    @settings(max_examples=25, deadline=None)
    def test_streaming_equals_batch(self, s_p, s_q, fwd, rev):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, fwd, rev)
        batch = ClockSynchronizer(system).from_execution(alpha)
        online = OnlineSynchronizer(system)
        online.ingest_views(alpha.views())
        streamed = online.result()
        assert streamed.precision == batch.precision
        assert streamed.corrections == batch.corrections

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
            ),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_precision_monotone_under_stream(self, stream):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        online = OnlineSynchronizer(system)
        previous = float("inf")
        for forward, value in stream:
            if forward:
                online.observe(0, 1, value)
            else:
                online.observe(1, 0, value)
            current = online.precision()
            if not math.isinf(previous):
                assert current <= previous + 1e-9
            if not math.isinf(current):
                previous = current


class TestOffsetIntervalProperties:
    @given(starts, starts, nonempty_delays, nonempty_delays)
    @settings(max_examples=30, deadline=None)
    def test_truth_always_inside_interval(self, s_p, s_q, fwd, rev):
        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, fwd, rev)
        result = ClockSynchronizer(system).from_execution(alpha)
        low, high = result.offset_interval(0, 1)
        assert low - 1e-9 <= (s_p - s_q) <= high + 1e-9

    @given(starts, starts, nonempty_delays, nonempty_delays)
    @settings(max_examples=30, deadline=None)
    def test_interval_shift_invariant(self, s_p, s_q, fwd, rev):
        """The interval is computed from views, so equivalent executions
        yield the same interval even though their true offsets differ."""
        from repro.model.execution import shift_execution

        system = System.uniform(line(2), BoundedDelay.symmetric(1.0, 3.0))
        alpha = make_two_node_execution(s_p, s_q, fwd, rev)
        sync = ClockSynchronizer(system)
        a = sync.from_execution(alpha).offset_interval(0, 1)
        beta = shift_execution(alpha, {0: 0.25, 1: -0.5})
        b = sync.from_execution(beta).offset_interval(0, 1)
        assert a == b
