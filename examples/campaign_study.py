"""An ad-hoc study with the Campaign API: models x topologies in one table.

The registered experiments (E1..E13) are fixed narratives; when you want
your own sweep -- "how does precision scale with topology under each
delay model?" -- the :class:`~repro.workloads.Campaign` API runs the
cartesian product, certifies every instance, and summarises it.  The
markdown rendering drops straight into a lab notebook.

Run:  python examples/campaign_study.py
"""

from repro.graphs import complete, grid, line, ring
from repro.workloads import (
    Campaign,
    bounded_uniform,
    fully_asynchronous,
    heterogeneous,
    round_trip_bias,
)


def main() -> None:
    campaign = Campaign(seeds=range(3))
    campaign.add(
        "bounded[1,3]",
        lambda topo, seed: bounded_uniform(topo, lb=1.0, ub=3.0, seed=seed),
    )
    campaign.add(
        "bias[0.5]",
        lambda topo, seed: round_trip_bias(topo, bias=0.5, seed=seed),
    )
    campaign.add(
        "async",
        lambda topo, seed: fully_asynchronous(topo, mean_delay=2.0, seed=seed),
    )
    campaign.add(
        "hetero",
        lambda topo, seed: heterogeneous(topo, seed=seed),
    )

    topologies = [line(6), ring(6), grid(2, 3), complete(6)]
    table = campaign.run(topologies)
    table.show()

    print("observations:")
    print(" - every cell is certified: the realized spread never exceeded")
    print("   the claimed optimal precision on any of the runs;")
    print(" - denser topologies synchronize tighter under every model")
    print("   (shorter shift paths between any two processors);")
    print(" - the bias model's precision is set by the jitter, not the")
    print("   (much larger) absolute delays.")

    print("\nmarkdown rendering (paste into a notebook):\n")
    print(table.to_markdown())


if __name__ == "__main__":
    main()
