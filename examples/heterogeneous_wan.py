"""A heterogeneous wide-area network: different assumptions per link.

This is the scenario the paper's modularity was built for (and that no
prior work handled): a WAN where

* the datacenter backbone has tight delay bounds ([2, 3] ms),
* the campus links only have a known minimum (lower bound 1, no upper),
* the transatlantic links have huge, variable delays but a small
  round-trip bias (the NTP observation, model 4),
* one flaky link satisfies BOTH a loose bound and a bias bound
  simultaneously -- composed with Theorem 5.6.

The optimal pipeline handles the mixture out of the box and is compared
against an NTP-style baseline on the exact same views, scored by the
paper's own worst-case measure.  Finally the clocks are anchored to real
time through a GPS-equipped processor.

Run:  python examples/heterogeneous_wan.py
"""

from repro import (
    BoundedDelay,
    ClockSynchronizer,
    Composite,
    CorrelatedLoad,
    NetworkSimulator,
    RoundTripBias,
    ShiftedExponential,
    System,
    Topology,
    UniformDelay,
    draw_start_times,
    lower_bounds_only,
    probe_automata,
    probe_schedule,
    realized_spread,
    rho_bar,
)
from repro.baselines import ntp_corrections
from repro.extensions import anchor_to_real_time, realized_real_time_errors


def build_wan():
    """Six sites: two datacenters, two campuses, two overseas."""
    nodes = ("dc-east", "dc-west", "campus-a", "campus-b", "eu-1", "eu-2")
    links = (
        ("dc-east", "dc-west"),    # backbone
        ("dc-east", "campus-a"),   # campus uplink
        ("dc-west", "campus-b"),   # campus uplink
        ("dc-east", "eu-1"),       # transatlantic
        ("dc-west", "eu-2"),       # transatlantic
        ("eu-1", "eu-2"),          # flaky intra-EU link
    )
    topology = Topology(name="wan-6", nodes=nodes, links=links)

    assumptions = {
        ("dc-east", "dc-west"): BoundedDelay.symmetric(2.0, 3.0),
        ("dc-east", "campus-a"): lower_bounds_only(1.0),
        ("dc-west", "campus-b"): lower_bounds_only(1.0),
        ("dc-east", "eu-1"): RoundTripBias(0.4),
        ("dc-west", "eu-2"): RoundTripBias(0.4),
        ("eu-1", "eu-2"): Composite.of(
            BoundedDelay.symmetric(0.0, 30.0), RoundTripBias(2.0)
        ),
    }
    samplers = {
        ("dc-east", "dc-west"): UniformDelay(2.0, 3.0),
        ("dc-east", "campus-a"): ShiftedExponential(1.0, 1.5),
        ("dc-west", "campus-b"): ShiftedExponential(1.0, 1.5),
        ("dc-east", "eu-1"): CorrelatedLoad(35.0, 45.0, 0.2),
        ("dc-west", "eu-2"): CorrelatedLoad(35.0, 45.0, 0.2),
        ("eu-1", "eu-2"): CorrelatedLoad(5.0, 25.0, 1.0),
    }
    return System(topology=topology, assumptions=assumptions), samplers


def main() -> None:
    system, samplers = build_wan()
    topology = system.topology
    start_times = draw_start_times(topology.nodes, max_skew=30.0, seed=23)

    simulator = NetworkSimulator(system, samplers, start_times, seed=23)
    automata = probe_automata(topology, probe_schedule(4, 31.0, 10.0))
    execution = simulator.run(automata)
    print(f"WAN simulated: {len(execution.message_records())} messages")

    result = ClockSynchronizer(system).from_execution(execution)
    print(f"\noptimal guaranteed precision: {result.precision:.4f}")
    print("per-pair guarantees are much tighter where links are good:")
    for p, q in [("dc-east", "dc-west"), ("dc-east", "eu-1"),
                 ("campus-a", "eu-2")]:
        print(f"  |{p} - {q}| <= {result.pair_precision(p, q):.4f}")

    # --- same views, NTP-style baseline, same scoring measure ---
    baseline = ntp_corrections(topology, execution.views())
    opt_score = rho_bar(result.ms_tilde, result.corrections)
    ntp_score = rho_bar(result.ms_tilde, baseline)
    print(f"\nguaranteed worst case (rho_bar): optimal {opt_score:.4f} vs "
          f"NTP-style {ntp_score:.4f}  ({ntp_score / opt_score:.2f}x)")

    spread_opt = realized_spread(execution.start_times(), result.corrections)
    spread_ntp = realized_spread(execution.start_times(), baseline)
    print(f"realized spread this run:        optimal {spread_opt:.4f} vs "
          f"NTP-style {spread_ntp:.4f}")

    # --- anchor to real time via the GPS clock at dc-east ---
    anchored = anchor_to_real_time(
        result, "dc-east", execution.start_time("dc-east")
    )
    errors = realized_real_time_errors(anchored, execution.start_times())
    print("\nafter anchoring to dc-east's GPS clock, real-time errors:")
    for p in topology.nodes:
        print(f"  {p:10s} {errors[p]:.4f}")


if __name__ == "__main__":
    main()
