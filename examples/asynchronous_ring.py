"""Synchronizing a fully asynchronous ring -- where worst-case theory
gives up.

Before this paper, deterministic clock synchronization theory required
upper bounds on message delay: with none, the worst-case precision of
*any* algorithm is unbounded, so worst-case-optimal algorithms simply do
not exist for this model.  The paper's per-instance optimality sidesteps
that: on each actual execution the achievable precision is finite, and
SHIFTS attains it.

This example demonstrates all three acts:

1. synchronize a no-upper-bounds ring and get a finite, certified bound;
2. show the bound degrading as the delay tail grows (so the worst case
   over executions is indeed unbounded -- no fixed bound would be valid);
3. unleash the shifting adversary to confirm the per-execution bound is
   tight: an equivalent admissible execution realizes it.

Run:  python examples/asynchronous_ring.py
"""

from repro import ClockSynchronizer, realized_spread, ring
from repro.analysis import worst_case_spread
from repro.workloads import fully_asynchronous


def main() -> None:
    topology = ring(5)

    print("=== Act 1: finite precision on an asynchronous ring ===")
    scenario = fully_asynchronous(topology, mean_delay=2.0, seed=5)
    execution = scenario.run()
    result = ClockSynchronizer(scenario.system).from_execution(execution)
    print(f"no bounds assumed, yet this execution synchronizes to "
          f"{result.precision:.4f}")
    spread = realized_spread(execution.start_times(), result.corrections)
    print(f"(realized corrected-clock spread: {spread:.4f})")

    print("\n=== Act 2: the worst case over executions is unbounded ===")
    print(f"{'mean delay':>12} {'precision this run':>20}")
    for mean_delay in (0.5, 2.0, 8.0, 32.0):
        sc = fully_asynchronous(topology, mean_delay=mean_delay, seed=9)
        res = ClockSynchronizer(sc.system).from_execution(sc.run())
        print(f"{mean_delay:>12} {res.precision:>20.4f}")
    print("precision grows with the tail: no a-priori bound exists, but")
    print("every single run still gets a finite, optimal certificate.")

    print("\n=== Act 3: the bound is tight (the shifting adversary) ===")
    worst = worst_case_spread(
        scenario.system, execution, result.corrections, gamma=1.0001
    )
    print(f"adversarial equivalent execution realizes spread "
          f"{worst:.4f} of the claimed {result.precision:.4f}")
    print("the processors cannot tell the two runs apart -- the claimed")
    print("precision is not pessimism, it is the exact attainable value.")


if __name__ == "__main__":
    main()
