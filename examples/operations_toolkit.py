"""Operating the synchronizer in the messy real world.

Three production concerns the core theory does not mention, and how this
library handles each:

1. **Streaming** -- observations arrive one message at a time; the
   :class:`OnlineSynchronizer` keeps O(1)-updatable sufficient statistics
   and recomputes corrections lazily.
2. **Misdeclared assumptions** -- a link whose delays violate its declared
   bounds would silently corrupt every correction; the diagnosis screen
   detects it (negative ``mls~`` cycles are proof), convicts the exact
   link, and resynchronizes the healthy remainder honestly.
3. **Only distributional knowledge** -- no hard bounds exist, but years of
   measurements do; quantile compilation gives corrections valid with
   chosen confidence, even for unbounded delay distributions.

Run:  python examples/operations_toolkit.py
"""

from repro import ClockSynchronizer, ring
from repro.analysis import diagnose_and_repair
from repro.core.estimates import estimated_delays
from repro.extensions import (
    ExponentialDelay,
    OnlineSynchronizer,
    probabilistic_synchronize,
)
from repro.workloads import bounded_uniform


def streaming_demo() -> None:
    print("=== 1. Streaming synchronization ===")
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, probes=4, seed=41)
    alpha = scenario.run()
    online = OnlineSynchronizer(scenario.system)

    # Interleave the edges round-robin: the realistic arrival order, and
    # it shows the precision becoming finite as soon as every link has
    # traffic both ways, then tightening with each extra probe.
    per_edge = sorted(estimated_delays(alpha.views()).items(), key=repr)
    stream = []
    for i in range(max(len(v) for _, v in per_edge)):
        for edge, values in per_edge:
            if i < len(values):
                stream.append((edge, values[i]))
    checkpoints = {1, len(stream) // 4, len(stream) // 2, len(stream)}
    for i, (edge, value) in enumerate(stream, start=1):
        online.observe(edge[0], edge[1], value)
        if i in checkpoints:
            print(f"  after {i:3d} messages: precision = "
                  f"{online.precision():.4f}")
    batch = ClockSynchronizer(scenario.system).from_execution(alpha)
    print(f"  batch pipeline on full views:   {batch.precision:.4f}  "
          f"(identical: {abs(batch.precision - online.precision()) < 1e-12})")


def diagnosis_demo() -> None:
    print("\n=== 2. Catching a lying link ===")
    from repro.delays import BoundedDelay, Constant, System, UniformDelay
    from repro.sim import NetworkSimulator, SimulationConfig
    from repro.sim.protocols import probe_automata, probe_schedule

    topo = ring(5)
    system = System.uniform(topo, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topo.links}
    rogue = topo.links[2]
    samplers[rogue] = Constant(9.0)  # the declared [1, 3] is a lie
    sim = NetworkSimulator(
        system, samplers, {p: float(p) for p in topo.nodes}, seed=2,
        config=SimulationConfig(validate=False),
    )
    alpha = sim.run(dict(probe_automata(topo, probe_schedule(3, 10.0, 3.0))))

    diagnosis, repaired = diagnose_and_repair(system, alpha.views())
    print(f"  declared [1,3] everywhere; link {rogue} actually runs at 9.0")
    print(f"  consistency screen: consistent = {diagnosis.consistent}")
    print(f"  convicted links (proof by negative 2-cycle): "
          f"{diagnosis.convicted}")
    print(f"  after excluding them: precision = {repaired.precision:.4f} "
          f"over the surviving line topology")


def probabilistic_demo() -> None:
    print("\n=== 3. Synchronizing on distributional knowledge ===")
    import random

    from repro.delays import DelaySampler, Direction, System, no_bounds
    from repro.sim import NetworkSimulator, draw_start_times
    from repro.sim.protocols import probe_automata, probe_schedule

    topo = ring(4)
    dist = ExponentialDelay(minimum=0.5, mean_extra=1.5)

    class FromDist(DelaySampler):
        def sample(self, rng: random.Random, direction: Direction):
            return dist.sample(rng)

    system = System.uniform(topo, no_bounds())
    samplers = {link: FromDist() for link in topo.links}
    starts = draw_start_times(topo.nodes, 10.0, seed=4)
    sim = NetworkSimulator(system, samplers, starts, seed=4)
    alpha = sim.run(dict(probe_automata(topo, probe_schedule(3, 11.0, 3.0))))

    for delta in (0.01, 0.2):
        result = probabilistic_synchronize(
            topo, alpha.views(),
            {link: dist for link in topo.links},
            delta=delta,
        )
        print(f"  delta = {delta:<5}: precision {result.precision:.4f} "
              f"valid with confidence {result.confidence:.2f} "
              f"(bounds held this run: {result.bounds_held(alpha)})")
    print("  exponential delays are unbounded -- the deterministic model "
          "alone\n  could never produce a finite worst-case bound here.")


if __name__ == "__main__":
    streaming_demo()
    diagnosis_demo()
    probabilistic_demo()
