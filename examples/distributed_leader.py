"""The distributed protocol of Section 7, plus periodic resync under drift.

The paper computes corrections centrally from all views and sketches the
distributed version as an open question: probe locally, ship sufficient
statistics to a leader over the network itself, route corrections back.
This example runs that protocol as real automata inside the simulator
and measures the paper's predicted caveat -- the protocol is optimal for
the probe phase, while the report/assignment messages carry timing
information it (by design) leaves on the table.

It then demonstrates the Kopetz--Ochsenreiter regime the paper's
footnote 1 delegates drift handling to: clocks drifting at 100 ppm,
resynchronized every period.

Run:  python examples/distributed_leader.py
"""

from repro import (
    BoundedDelay,
    ClockSynchronizer,
    NetworkSimulator,
    System,
    UniformDelay,
    realized_spread,
    rho_bar,
    ring,
)
from repro.extensions import (
    DriftingClocks,
    corrections_from_execution,
    leader_automata,
    periodic_resync,
)
from repro.workloads import bounded_uniform


def leader_protocol_demo() -> None:
    print("=== Leader-based distributed synchronization ===")
    scenario = bounded_uniform(ring(5), lb=1.0, ub=3.0, seed=31)
    automata = leader_automata(
        scenario.system,
        leader=0,
        probe_times=[12.0, 16.0, 20.0],
        report_time=60.0,
    )
    simulator = NetworkSimulator(
        scenario.system, scenario.samplers, scenario.start_times, seed=31
    )
    execution = simulator.run(automata)
    corrections = corrections_from_execution(execution)
    print(f"protocol ran fully in-band: "
          f"{len(execution.message_records())} messages "
          f"(probes + reports + assignments)")

    # Score the protocol's corrections with full-execution information.
    full = ClockSynchronizer(scenario.system).from_execution(execution)
    protocol_score = rho_bar(full.ms_tilde, corrections)
    print(f"protocol guaranteed precision:   {protocol_score:.4f}")
    print(f"centralized optimum (full run):  {full.precision:.4f}")
    print("the gap is the paper's Section 7 caveat: the protocol's own "
          "report/assign\nmessages carry timing information it does not "
          "circle back to exploit.")
    spread = realized_spread(execution.start_times(), corrections)
    print(f"realized corrected spread:       {spread:.4f}")


def drift_demo() -> None:
    print("\n=== Periodic resync under 100 ppm clock drift ===")
    topology = ring(4)
    system = System.uniform(topology, BoundedDelay.symmetric(1.0, 3.0))
    samplers = {link: UniformDelay(1.0, 3.0) for link in topology.links}
    clocks = DriftingClocks.draw(
        topology.nodes, max_skew=5.0, drift_bound=1e-4, seed=13
    )
    rounds = periodic_resync(
        system, samplers, clocks, period=200.0, rounds=4, seed=13
    )
    print(f"{'round':>6} {'claimed':>10} {'after sync':>12} "
          f"{'before next':>12}")
    for r in rounds:
        print(f"{r.round_index:>6} {r.claimed_precision:>10.4f} "
              f"{r.spread_after_sync:>12.4f} {r.spread_before_next:>12.4f}")
    print("drift re-accumulates between rounds (compare the last two "
          "columns);\nresynchronizing each period keeps the spread near "
          "the drift-free optimum.")


if __name__ == "__main__":
    leader_protocol_demo()
    drift_demo()
