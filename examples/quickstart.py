"""Quickstart: optimally synchronize a 5-processor ring.

Walks the full pipeline of Attiya--Herzberg--Rajsbaum (PODC 1993):

1. simulate an admissible execution (probes on every link, delays drawn
   uniformly inside known bounds [1, 3]);
2. hand the *views* -- never the real times -- to the synchronizer;
3. get back corrections, the optimal precision ``A^max``, and the
   critical-cycle certificate that nothing can do better;
4. check against ground truth that the corrected clocks really are that
   close.

Run:  python examples/quickstart.py
"""

from repro import (
    BoundedDelay,
    ClockSynchronizer,
    NetworkSimulator,
    System,
    UniformDelay,
    draw_start_times,
    probe_automata,
    probe_schedule,
    realized_spread,
    ring,
    verify_certificate,
)


def main() -> None:
    # --- the system (G, A): a ring where every link promises [1, 3] ---
    topology = ring(5)
    system = System.uniform(topology, BoundedDelay.symmetric(1.0, 3.0))

    # --- the actual network behaviour (hidden from the algorithm) ---
    samplers = {link: UniformDelay(1.0, 3.0) for link in topology.links}
    start_times = draw_start_times(topology.nodes, max_skew=10.0, seed=7)

    # --- one execution: 3 probe rounds on every link, both directions ---
    simulator = NetworkSimulator(system, samplers, start_times, seed=7)
    automata = probe_automata(topology, probe_schedule(3, 20.0, 5.0))
    execution = simulator.run(automata)
    print(f"simulated {len(execution.message_records())} messages "
          f"on {topology.name}")

    # --- synchronize from views only ---
    result = ClockSynchronizer(system).from_execution(execution)
    print(f"\noptimal precision A^max = {result.precision:.4f}")
    print("corrections (add to each local clock):")
    for p, x in sorted(result.corrections.items()):
        print(f"  processor {p}: {x:+.4f}")

    # --- the optimality certificate ---
    certificate = verify_certificate(result)
    cycle = result.components[0].critical_cycle
    print(f"\ncertified optimal: critical cycle {cycle} has mean "
          f"{certificate.cycle_mean:.4f} -- by Theorem 4.4 NO correction "
          f"function can guarantee better on this execution")

    # --- ground truth check (only the harness may peek at real times) ---
    spread = realized_spread(execution.start_times(), result.corrections)
    print(f"\nground truth: corrected clocks actually span {spread:.4f}")
    print(f"guaranteed bound:                              "
          f"{result.precision:.4f}")
    assert spread <= result.precision + 1e-9


if __name__ == "__main__":
    main()
